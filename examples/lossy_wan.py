"""A lossy wide-area path: burst cell loss meets AAL5-class reassembly.

Sends traffic across a long-haul link (5 ms propagation, Gilbert-Elliott
burst loss -- the signature of switch-buffer overflow) and shows how the
interface's CRC/length machinery converts cell loss into whole-PDU
discards, with the reassembly timer cleaning up PDUs whose tails never
arrive.

Run:  python examples/lossy_wan.py
"""

from repro import HostNetworkInterface, Simulator, aurora_oc3, connect
from repro.aal.interface import ReassemblyFailure
from repro.atm.errors import GilbertElliottLoss
from repro.workloads import GreedySource, EmpiricalInternetMix

WINDOW = 0.2
PROPAGATION = 0.005  # 5 ms: ~1000 km of fibre


def main() -> None:
    sim = Simulator()
    sender = HostNetworkInterface(sim, aurora_oc3(), name="sender")
    receiver = HostNetworkInterface(sim, aurora_oc3(), name="receiver")

    # Bursty loss: rare transitions into a BAD state that eats ~5 cells.
    loss = GilbertElliottLoss(
        p_good_to_bad=0.0004,
        p_bad_to_good=0.2,
        loss_in_bad=1.0,
    )
    connect(
        sim, sender, receiver, propagation_delay=PROPAGATION, loss_ab=loss
    )

    vc = sender.open_vc(name="wan")
    receiver.open_vc(address=vc.address)
    received = []
    receiver.on_pdu = received.append

    GreedySource(
        sim, sender, vc.address, EmpiricalInternetMix()
    ).start()
    sim.run(until=WINDOW)

    reasm = receiver.rx_engine.reassembler.stats
    link_loss = loss.dropped / loss.offered if loss.offered else 0.0
    print(f"cells offered to the wire : {loss.offered}")
    print(f"cell loss rate            : {link_loss:.3%} "
          f"(bursty, mean burst {1 / loss.p_bad_to_good:.0f} cells)")
    print()
    print(f"PDUs delivered intact     : {reasm.pdus_delivered}")
    print(f"PDUs discarded            : {reasm.pdus_discarded}")
    for failure in ReassemblyFailure:
        count = reasm.failure_count(failure)
        if count:
            print(f"    {failure.value:12s}: {count}")
    print(f"reassembly timer expiries : "
          f"{receiver.reassembly_timers.expirations.count}")
    print()
    print(f"PDU goodput               : "
          f"{sum(c.size for c in received) * 8 / WINDOW / 1e6:.1f} Mb/s")
    print()
    print("Every delivered PDU passed its CRC-32: corruption from cell")
    print("loss is detected and contained to the PDU that lost cells.")
    assert all(len(c.sdu) == c.size for c in received)


if __name__ == "__main__":
    main()
