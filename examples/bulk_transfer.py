"""Bulk transfer: the workload the 622 Mb/s testbed interface targets.

Streams large PDUs (the 9180-byte IP-over-ATM MTU) over an STS-12c link
with a greedy sender, then repeats the same transfer through the
host-software-SAR baseline -- reproducing, at example scale, the
architectural comparison of experiment T5.

Run:  python examples/bulk_transfer.py
"""

from repro import HostNetworkInterface, Simulator, aurora_oc12, connect
from repro.atm.link import STS12C_622, PhysicalLink
from repro.baselines import HostSarConfig, HostSarInterface
from repro.workloads import GreedySource

WINDOW = 0.12  # seconds of simulated transfer
SDU = 9180


def offloaded_transfer() -> None:
    sim = Simulator()
    sender = HostNetworkInterface(sim, aurora_oc12(), name="sender")
    receiver = HostNetworkInterface(sim, aurora_oc12(), name="receiver")
    connect(sim, sender, receiver)
    vc = sender.open_vc(name="bulk")
    receiver.open_vc(address=vc.address)
    received = []
    receiver.on_pdu = received.append

    GreedySource(sim, sender, vc.address, SDU).start()
    sim.run(until=WINDOW)

    stats = receiver.stats()
    steady = [c for c in received if c.delivered_at >= WINDOW / 2]
    goodput = sum(c.size for c in steady) * 8 / (WINDOW / 2) / 1e6
    print("offloaded interface (STS-12c)")
    print(f"  goodput              : {goodput:8.1f} Mb/s")
    print(f"  PDUs delivered       : {stats.pdus_received}")
    print(f"  rx engine utilization: {stats.rx_engine_utilization:.1%}")
    print(f"  host CPU utilization : {stats.host_cpu_utilization:.1%}")
    print(f"  rx FIFO overflows    : {stats.rx_fifo_overflows}")
    print(f"  PDUs lost to errors  : {stats.pdus_discarded}")


def host_sar_transfer() -> None:
    sim = Simulator()
    config = HostSarConfig(link=STS12C_622, rx_fifo_cells=1024)
    sender = HostSarInterface(sim, config, name="sw-sender")
    receiver = HostSarInterface(sim, config, name="sw-receiver")
    link = PhysicalLink(sim, config.link, sink=receiver.rx_input)
    sender.attach_tx_link(link)
    vc = sender.open_vc()
    receiver.open_vc(address=vc.address)
    sender.start()
    received = []
    receiver.on_pdu = received.append

    GreedySource(sim, sender, vc.address, SDU).start()
    sim.run(until=WINDOW)

    # Measure the second half only: the greedy source spends the first
    # tens of milliseconds filling the send queue through the slow host.
    steady = [c for c in received if c.delivered_at >= WINDOW / 2]
    goodput = sum(c.size for c in steady) * 8 / (WINDOW / 2) / 1e6
    print("host-software SAR baseline (same link, same workload)")
    print(f"  goodput              : {goodput:8.1f} Mb/s")
    print(f"  PDUs delivered       : {receiver.pdus_received.count}")
    print(f"  host CPU utilization : {receiver.cpu.utilization():.1%}")
    print(f"  interrupts (per cell): {receiver.interrupts.raised.count}")
    print(f"  cells dropped (FIFO) : {receiver.rx_fifo.overflows.count}")
    print(f"  PDUs lost to errors  : "
          f"{receiver.reassembler.stats.pdus_discarded}")


def main() -> None:
    offloaded_transfer()
    print()
    host_sar_transfer()
    print()
    print("The offloaded interface runs the link; the per-cell-interrupt")
    print("baseline saturates its host CPU and drops most of the traffic.")


if __name__ == "__main__":
    main()
