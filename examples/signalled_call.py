"""Out-of-band signalling: SETUP/CONNECT a VC, use it, RELEASE it.

ATM's signalling is out of band -- call-control messages travel on the
reserved VPI 0 / VCI 5 channel, and the user VC exists only after the
handshake installs it at both ends (with its traffic contract).  This
example places a rate-contracted call, measures the call-setup latency
(the signalling PDUs cross the real simulated data path), streams data
on the new VC (paced by the transmit engine to the contract), and
tears the call down.

Run:  python examples/signalled_call.py
"""

from repro import HostNetworkInterface, Simulator, aurora_oc3, connect
from repro.atm import SignallingAgent
from repro.workloads import GreedySource


def main() -> None:
    sim = Simulator()
    caller = HostNetworkInterface(sim, aurora_oc3(), name="caller")
    callee = HostNetworkInterface(sim, aurora_oc3(), name="callee")
    connect(sim, caller, callee)

    # Callee admits calls up to 50 Mb/s.
    def admission(setup):
        admitted = setup.peak_rate_bps <= 50_000_000
        verdict = "admit" if admitted else "REFUSE"
        print(f"[callee ] SETUP call_ref={setup.call_ref} "
              f"peak={setup.peak_rate_bps / 1e6:.0f} Mb/s -> {verdict}")
        return admitted

    sig_caller = SignallingAgent(sim, caller)
    sig_callee = SignallingAgent(sim, callee, on_setup=admission)

    received = []
    sig_callee.on_user_pdu = received.append

    def session():
        placed = sim.now
        call = sig_caller.place_call(peak_rate_bps=30e6)
        address = yield call.connected
        setup_us = (sim.now - placed) * 1e6
        print(f"[caller ] connected on VC {address} "
              f"after {setup_us:.1f} us of signalling")

        # Stream for a while on the contracted VC.
        source = GreedySource(
            sim, caller, address, 9180, total_pdus=20, name="bulk"
        )
        yield source.start()
        yield sim.timeout(0.01)

        yield sig_caller.release_call(call)
        print(f"[caller ] released at {sim.now * 1e3:.2f} ms; "
              f"VC table entries left: {len(caller.vc_table)}")

    sim.process(session())
    sim.run(until=0.2)

    nbytes = sum(c.size for c in received)
    span = received[-1].delivered_at - received[0].delivered_at
    print(f"[callee ] {len(received)} PDUs, {nbytes} bytes")
    print(f"[callee ] goodput during transfer: "
          f"{(nbytes - received[0].size) * 8 / span / 1e6:.1f} Mb/s "
          f"(contract: 30 Mb/s cell-level, ~27 Mb/s user-level)")
    print()
    print("The transmit engine paced the VC to its signalled contract;")
    print("a network-side GCRA policer would count zero violations.")


if __name__ == "__main__":
    main()
