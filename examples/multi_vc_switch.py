"""Three senders through an ATM switch into one receiver.

Builds a small switched network: three workstations each open a VC to a
server; the switch translates VPI/VCI labels and merges the streams
onto the server's STS-3c access link (finite output buffer -> possible
cell loss under contention).  The server's receive engine reassembles
the interleaved cell streams per VC -- the working-set scenario of
experiment F6, here with a real switch instead of a synthetic wire.

Run:  python examples/multi_vc_switch.py
"""

from collections import Counter

from repro import HostNetworkInterface, Simulator, aurora_oc3
from repro.atm import AtmSwitch, OutputPort, PhysicalLink, RoutingEntry, STS3C_155
from repro.atm.addressing import VcAddress
from repro.workloads import PoissonSource, UniformSize

N_SENDERS = 3
WINDOW = 0.05


def main() -> None:
    sim = Simulator()
    config = aurora_oc3()

    # The server and its access link, fed by the switch's output port.
    server = HostNetworkInterface(sim, config, name="server")
    access_link = PhysicalLink(sim, STS3C_155, sink=server.rx_input, name="access")
    access_port = OutputPort(sim, access_link, buffer_cells=2048, name="sw-out")
    switch = AtmSwitch(sim, [access_port], fabric_delay=2e-6, name="sw")

    # Three client workstations, each on its own switch input port.
    senders = []
    for i in range(N_SENDERS):
        client = HostNetworkInterface(sim, config, name=f"client{i}")
        uplink = PhysicalLink(
            sim, STS3C_155, sink=switch.input(i), name=f"uplink{i}"
        )
        client.attach_tx_link(uplink)
        client.start()

        # Client-side VC 0/40+i maps to server-side VC 0/100+i.
        client_vc = client.open_vc(address=VcAddress(0, 40 + i))
        server_vc = VcAddress(0, 100 + i)
        server.open_vc(address=server_vc)
        switch.add_route(
            i, client_vc.address, RoutingEntry(0, server_vc.vpi, server_vc.vci)
        )
        senders.append((client, client_vc.address))

    server.start()
    per_vc = Counter()
    server.on_pdu = lambda c: per_vc.update({str(c.vc): c.size})

    # Each client offers ~32 Mb/s of mixed-size PDUs; the three flows
    # sum to ~70% of the access link's capacity, so contention shows up
    # as queueing in the switch buffer rather than loss.
    sizes = UniformSize(256, 9180)
    rate = 32e6 / (sizes.mean * 8)
    for client, vc in senders:
        PoissonSource(sim, client, vc, sizes, pdus_per_second=rate).start()

    sim.run(until=WINDOW)

    print(f"switched {switch.cells_switched.count} cells, "
          f"dropped {switch.total_dropped} at the contended output port")
    print(f"access link utilization : {access_link.utilization():.1%}")
    print(f"peak switch queue       : {access_port.occupancy.maximum:.0f} cells")
    print()
    print("per-VC delivered bytes at the server:")
    for vc, nbytes in sorted(per_vc.items()):
        print(f"  VC {vc}: {nbytes:9d} bytes "
              f"({nbytes * 8 / WINDOW / 1e6:6.1f} Mb/s)")
    stats = server.stats()
    print()
    print(f"server PDUs delivered : {stats.pdus_received}")
    print(f"PDUs lost to cell loss: {stats.pdus_discarded} "
          "(three senders contend for one access link)")


if __name__ == "__main__":
    main()
