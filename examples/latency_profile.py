"""Where does a PDU's latency go?  The F4 decomposition, interactively.

Prints the unloaded end-to-end latency budget for a range of PDU sizes
on both link rates, using the closed-form model (which experiment F8
shows matches the simulator exactly on the unloaded path), and
identifies the dominant stage for each size.

Run:  python examples/latency_profile.py
"""

from repro import aurora_oc3, aurora_oc12
from repro.analysis import latency_model

SIZES = (64, 512, 1500, 9180, 65535)


def profile(config, label: str) -> None:
    print(f"--- {label} ---")
    for size in SIZES:
        breakdown = latency_model(config, size)
        total_us = breakdown.total * 1e6
        dominant = breakdown.dominant_stage()
        share = breakdown.as_dict()[dominant] / breakdown.total
        wire = breakdown.link_serialization / breakdown.total
        print(
            f"  {size:6d} B: {total_us:9.1f} us total, "
            f"dominated by {dominant:18s} ({share:.0%}; wire {wire:.0%})"
        )
    print()


def main() -> None:
    profile(aurora_oc3(), "STS-3c (155 Mb/s)")
    profile(aurora_oc12(), "STS-12c (622 Mb/s)")

    print("Observations the paper's analysis makes:")
    print(" * small PDUs never see the wire speed: fixed per-PDU software")
    print("   (OS send/receive, interrupt) dominates their latency;")
    print(" * at 155 Mb/s, large PDUs are serialization-dominated -- the")
    print("   wire is the honest bottleneck;")
    print(" * at 622 Mb/s, even the largest PDUs become software-dominated:")
    print("   the faster link exposes the host's per-byte copy as the next")
    print("   bottleneck, which is why offload alone is not the end of the")
    print("   story.")


if __name__ == "__main__":
    main()
