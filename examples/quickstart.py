"""Quickstart: two workstations with ATM host interfaces exchange PDUs.

Builds the canonical point-to-point setup -- two hosts with the paper's
offloaded NIC joined by an STS-3c link -- opens a virtual connection,
sends a handful of PDUs, and prints what the interface observed.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace quickstart-trace.json

With ``--trace``, every component is instrumented with a
``repro.obs.TraceRecorder`` and the run is exported in Chrome
``trace_event`` format: open the file at https://ui.perfetto.dev to see
each engine, FIFO, link, DMA engine and interrupt controller as its own
swimlane (the worked walkthrough is in docs/OBSERVABILITY.md).
"""

import argparse

from repro import HostNetworkInterface, Simulator, aurora_oc3, connect


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="export a Perfetto-loadable trace of the run to PATH",
    )
    # parse_known_args: stay runnable under test harnesses whose own
    # command line leaks into sys.argv.
    args, _ = parser.parse_known_args(argv)

    sim = Simulator()

    # Two workstations, each with the offloaded ATM interface.
    alice = HostNetworkInterface(sim, aurora_oc3(), name="alice")
    bob = HostNetworkInterface(sim, aurora_oc3(), name="bob")
    connect(sim, alice, bob)

    recorder = None
    if args.trace:
        from repro.obs import TraceRecorder

        recorder = TraceRecorder(sim)
        alice.attach_trace(recorder)
        bob.attach_trace(recorder)

    # Open a virtual connection (both ends must know it).
    vc = alice.open_vc(name="alice->bob")
    bob.open_vc(address=vc.address)

    # Receive callback: runs after reassembly, DMA, interrupt and the
    # OS receive path -- i.e. when user code would actually see data.
    def on_pdu(completion):
        latency_us = (completion.end_to_end_latency or 0.0) * 1e6
        print(
            f"[{sim.now * 1e3:7.3f} ms] bob got {completion.size:5d} bytes "
            f"on VC {completion.vc} in {completion.cells:3d} cells "
            f"(adaptor latency {latency_us:.1f} us)"
        )

    bob.on_pdu = on_pdu

    # Send a few PDUs of different sizes.
    for size in (64, 1500, 9180, 100, 40000):
        alice.post(vc.address, bytes(size))

    sim.run(until=0.05)

    stats = bob.stats()
    print()
    print(f"PDUs delivered       : {stats.pdus_received}")
    print(f"cells received       : {stats.cells_received}")
    print(f"rx engine utilization: {stats.rx_engine_utilization:.1%}")
    print(f"host CPU utilization : {stats.host_cpu_utilization:.1%}")
    print(f"interrupts delivered : {stats.interrupts_delivered} "
          f"(one per PDU, not per cell -- the offload dividend)")

    if recorder is not None:
        recorder.export_chrome(args.trace)
        print()
        print(f"trace: {len(recorder)} events -> {args.trace} "
              f"(open at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
