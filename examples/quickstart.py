"""Quickstart: two workstations with ATM host interfaces exchange PDUs.

Builds the canonical point-to-point setup -- two hosts with the paper's
offloaded NIC joined by an STS-3c link -- opens a virtual connection,
sends a handful of PDUs, and prints what the interface observed.

Run:  python examples/quickstart.py
"""

from repro import HostNetworkInterface, Simulator, aurora_oc3, connect


def main() -> None:
    sim = Simulator()

    # Two workstations, each with the offloaded ATM interface.
    alice = HostNetworkInterface(sim, aurora_oc3(), name="alice")
    bob = HostNetworkInterface(sim, aurora_oc3(), name="bob")
    connect(sim, alice, bob)

    # Open a virtual connection (both ends must know it).
    vc = alice.open_vc(name="alice->bob")
    bob.open_vc(address=vc.address)

    # Receive callback: runs after reassembly, DMA, interrupt and the
    # OS receive path -- i.e. when user code would actually see data.
    def on_pdu(completion):
        latency_us = (completion.end_to_end_latency or 0.0) * 1e6
        print(
            f"[{sim.now * 1e3:7.3f} ms] bob got {completion.size:5d} bytes "
            f"on VC {completion.vc} in {completion.cells:3d} cells "
            f"(adaptor latency {latency_us:.1f} us)"
        )

    bob.on_pdu = on_pdu

    # Send a few PDUs of different sizes.
    for size in (64, 1500, 9180, 100, 40000):
        alice.post(vc.address, bytes(size))

    sim.run(until=0.05)

    stats = bob.stats()
    print()
    print(f"PDUs delivered       : {stats.pdus_received}")
    print(f"cells received       : {stats.cells_received}")
    print(f"rx engine utilization: {stats.rx_engine_utilization:.1%}")
    print(f"host CPU utilization : {stats.host_cpu_utilization:.1%}")
    print(f"interrupts delivered : {stats.interrupts_delivered} "
          f"(one per PDU, not per cell -- the offload dividend)")


if __name__ == "__main__":
    main()
