"""Process semantics: suspension, return values, interrupts, conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, SimulationError, Simulator
from repro.sim.process import Process


class TestBasics:
    def test_process_runs_at_current_instant(self, sim):
        hits = []

        def body():
            hits.append(sim.now)
            yield sim.timeout(1.0)

        sim.process(body())
        sim.run()
        assert hits == [0.0]

    def test_timeout_resumes_at_right_time(self, sim):
        times = []

        def body():
            yield sim.timeout(0.5)
            times.append(sim.now)
            yield sim.timeout(0.25)
            times.append(sim.now)

        sim.process(body())
        sim.run()
        assert times == [0.5, 0.75]

    def test_return_value_becomes_event_value(self, sim):
        def body():
            yield sim.timeout(1.0)
            return 42

        proc = sim.process(body())
        sim.run()
        assert proc.value == 42

    def test_join_another_process(self, sim):
        def child():
            yield sim.timeout(2.0)
            return "done"

        results = []

        def parent():
            outcome = yield sim.process(child())
            results.append((sim.now, outcome))

        sim.process(parent())
        sim.run()
        assert results == [(2.0, "done")]

    def test_yielded_event_value_is_delivered(self, sim):
        seen = []

        def body():
            value = yield sim.timeout(1.0, value="hello")
            seen.append(value)

        sim.process(body())
        sim.run()
        assert seen == ["hello"]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)

    def test_yielding_non_event_fails_process(self, sim):
        def body():
            yield "not an event"

        proc = sim.process(body())
        sim.run()
        assert proc.triggered
        assert isinstance(proc.exception, TypeError)

    def test_exception_in_body_propagates_to_waiter(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        outcomes = []

        def waiter():
            try:
                yield sim.process(bad())
            except RuntimeError as exc:
                outcomes.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert outcomes == ["inner"]

    def test_is_alive_tracks_lifecycle(self, sim):
        def body():
            yield sim.timeout(1.0)

        proc = sim.process(body())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as stop:
                log.append((sim.now, stop.cause))

        proc = sim.process(sleeper())

        def poker():
            yield sim.timeout(1.0)
            proc.interrupt("wake-up")

        sim.process(poker())
        sim.run()
        assert log == [(1.0, "wake-up")]

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(0.1)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_unhandled_interrupt_fails_process(self, sim):
        def oblivious():
            yield sim.timeout(100.0)

        proc = sim.process(oblivious())

        def poker():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(poker())
        sim.run()
        assert proc.triggered
        assert isinstance(proc.exception, SimulationError)

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def resilient():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        proc = sim.process(resilient())

        def poker():
            yield sim.timeout(2.0)
            proc.interrupt()

        sim.process(poker())
        sim.run()
        assert log == [3.0]


class TestConditions:
    def test_all_of_waits_for_every_child(self, sim):
        done = []

        def body():
            values = yield AllOf(
                sim, [sim.timeout(1.0, "a"), sim.timeout(3.0, "b")]
            )
            done.append((sim.now, values))

        sim.process(body())
        sim.run()
        assert done == [(3.0, ["a", "b"])]

    def test_all_of_empty_triggers_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered

    def test_any_of_fires_on_first(self, sim):
        done = []

        def body():
            first = yield AnyOf(
                sim, [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
            )
            done.append((sim.now, first.value))

        sim.process(body())
        sim.run()
        assert done[0] == (1.0, "fast")

    def test_all_of_propagates_failure(self, sim):
        failing = sim.event()
        failing.fail(ValueError("child"), delay=1.0)
        caught = []

        def body():
            try:
                yield AllOf(sim, [sim.timeout(5.0), failing])
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(body())
        sim.run()
        assert caught == ["child"]
