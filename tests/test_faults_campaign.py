"""Fault plans, campaigns, and the cell-conservation audit."""

import pytest

from repro.faults import (
    BurstLossPlan,
    CamMissPlan,
    CampaignSpec,
    CellConservationAuditor,
    CellConservationError,
    CorruptionPlan,
    EngineStallPlan,
    FaultCampaign,
    InterruptStormPlan,
    TailLossPlan,
    UniformLossPlan,
)
from repro.faults.plan import PlanError
from repro.nic.config import aurora_oc3
from repro.nic.costs import I960_25MHZ
from repro.nic.engine import EngineClock
from repro.nic.rx import FrameDiscardPolicy
from repro.sim.random import RandomStreams
from repro.workloads.scenarios import build_point_to_point

FAST_SPEC = CampaignSpec(duration=0.01, n_vcs=2, sdu_size=4096, pdus_per_vc=10)


def degradation_config():
    return aurora_oc3().with_frame_discard(FrameDiscardPolicy(), quota=8)


class TestEngineStallHook:
    def test_stall_absorbed_by_next_work(self, sim):
        clock = EngineClock(sim, I960_25MHZ)
        clock.request_stall(1e-3)
        finished = []

        def firmware():
            yield clock.work(25)
            finished.append(sim.now)

        sim.process(firmware())
        sim.run()
        assert finished[0] == pytest.approx(25 / 25e6 + 1e-3)
        assert clock.stalls_taken == 1
        assert clock.stalled_time == pytest.approx(1e-3)

    def test_stalls_accumulate(self, sim):
        clock = EngineClock(sim, I960_25MHZ)
        clock.request_stall(1e-3)
        clock.request_stall(2e-3)

        def firmware():
            yield clock.work(25)

        sim.process(firmware())
        sim.run()
        assert clock.stalls_taken == 1  # absorbed together
        assert clock.stalled_time == pytest.approx(3e-3)

    def test_validation(self, sim):
        clock = EngineClock(sim, I960_25MHZ)
        with pytest.raises(ValueError):
            clock.request_stall(-1.0)

    def test_periodic_builder(self):
        plan = EngineStallPlan.periodic(0.0, 0.01, period=0.002, duration=1e-4)
        assert plan.at == (0.0, 0.002, 0.004, 0.006, 0.008)
        with pytest.raises(ValueError):
            EngineStallPlan.periodic(0.0, 1.0, period=0.0, duration=1e-4)


class TestPlanValidation:
    def test_cam_miss_requires_cam(self):
        campaign = FaultCampaign(
            aurora_oc3().without_cam(), [CamMissPlan(p=0.5)], FAST_SPEC
        )
        with pytest.raises(PlanError):
            campaign.run()

    def test_tail_loss_vc_index_bounds(self):
        campaign = FaultCampaign(
            aurora_oc3(), [TailLossPlan(vc_index=99)], FAST_SPEC
        )
        with pytest.raises(PlanError):
            campaign.run()

    def test_plan_parameter_validation(self):
        with pytest.raises(ValueError):
            EngineStallPlan(duration=0.0)
        with pytest.raises(ValueError):
            EngineStallPlan(engine="dma")
        with pytest.raises(ValueError):
            CorruptionPlan(payload_p=1.5)
        with pytest.raises(ValueError):
            InterruptStormPlan(rate_hz=0.0)
        with pytest.raises(ValueError):
            InterruptStormPlan(start=1.0, stop=0.5)


class TestFaultCampaign:
    def test_ge_loss_plus_stall_is_deterministic_and_conserved(self):
        """The acceptance campaign: bursty loss + engine stalls, twice."""
        plans = [
            BurstLossPlan(start=0.002, stop=0.006),
            EngineStallPlan.periodic(0.003, 0.008, period=0.002, duration=2e-4),
        ]

        def once():
            campaign = FaultCampaign(
                degradation_config(), plans, FAST_SPEC, seed=42
            )
            return campaign.run()

        first, second = once(), once()
        assert first.is_conserved and first.ledger.unaccounted == 0
        assert first.ledger == second.ledger
        assert first.pdus_received == second.pdus_received
        assert first.goodput_mbps == pytest.approx(second.goodput_mbps)
        # The faults actually bit: something was lost and accounted.
        assert first.ledger.link_lost > 0
        assert first.ledger.offered > 0

    def test_different_seed_different_schedule(self):
        plans = [BurstLossPlan(start=0.0, stop=0.01, p_good_to_bad=0.02)]
        a = FaultCampaign(degradation_config(), plans, FAST_SPEC, seed=1).run()
        b = FaultCampaign(degradation_config(), plans, FAST_SPEC, seed=2).run()
        assert a.ledger.link_lost != b.ledger.link_lost

    def test_tail_loss_strands_context_until_timer(self):
        """A lost EOF leaves the context for the timer wheel to reclaim."""
        spec = CampaignSpec(duration=0.01, n_vcs=1, sdu_size=4096, pdus_per_vc=3)
        campaign = FaultCampaign(
            degradation_config(),
            [TailLossPlan(vc_index=0, pdu_indices=(2,))],  # final PDU's tail
            spec,
        )
        result = campaign.run()
        assert result.is_conserved
        assert result.ledger.discarded_by.get("timeout", 0) > 0
        assert result.ledger.reassembly_open == 0  # drained

    def test_interrupt_storm_burns_host_cycles(self):
        plans = [InterruptStormPlan(start=0.0, stop=0.01, rate_hz=50e3)]
        campaign = FaultCampaign(degradation_config(), plans, FAST_SPEC)
        result = campaign.run()
        assert result.is_conserved
        assert campaign.receiver.interrupts.spurious.count > 100

    def test_corruption_feeds_crc_and_hec_buckets(self):
        plans = [CorruptionPlan(payload_p=0.01, hec_p=0.005)]
        campaign = FaultCampaign(degradation_config(), plans, FAST_SPEC)
        result = campaign.run()
        assert result.is_conserved
        assert result.ledger.hec_discarded > 0
        assert result.ledger.discarded_by.get("crc", 0) > 0

    def test_cam_miss_plan_discards_known_vc_cells(self):
        plans = [CamMissPlan(p=0.05)]
        campaign = FaultCampaign(degradation_config(), plans, FAST_SPEC)
        result = campaign.run()
        assert result.is_conserved
        assert campaign.receiver.cam.forced_misses > 0
        assert result.ledger.unknown_vc == campaign.receiver.cam.forced_misses

    def test_kitchen_sink_campaign_balances(self):
        """Every plan type at once: the books still close to zero."""
        plans = [
            UniformLossPlan(p=0.005),
            BurstLossPlan(start=0.002, stop=0.005),
            TailLossPlan(vc_index=0, pdu_indices=(1,)),
            CorruptionPlan(payload_p=0.005, hec_p=0.002),
            EngineStallPlan.periodic(0.001, 0.009, period=0.003, duration=1e-4),
            CamMissPlan(p=0.01),
            InterruptStormPlan(start=0.0, stop=0.008, rate_hz=10e3),
        ]
        result = FaultCampaign(
            degradation_config(), plans, FAST_SPEC, seed=7
        ).run()
        assert result.ledger.unaccounted == 0
        assert "unaccounted" in result.summary()

    def test_campaign_runs_once(self):
        campaign = FaultCampaign(aurora_oc3(), [], FAST_SPEC)
        campaign.run()
        with pytest.raises(RuntimeError):
            campaign.run()

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(duration=0.0)
        with pytest.raises(ValueError):
            CampaignSpec(n_vcs=0)
        with pytest.raises(ValueError):
            CampaignSpec(pdus_per_vc=0)


class TestAuditor:
    def test_detects_a_cooked_ledger(self, sim):
        """Tampering with a counter must trip the auditor."""
        scenario = build_point_to_point(sim, aurora_oc3())
        scenario.sender.post(scenario.vc, bytes(2000))
        sim.run(until=0.01)
        auditor = CellConservationAuditor(scenario.link_ab, scenario.receiver)
        auditor.assert_conserved()
        # Claim 5 cells crossed the wire that no downstream counter saw.
        scenario.link_ab.cells_delivered.increment(5)
        with pytest.raises(CellConservationError) as err:
            auditor.assert_conserved()
        assert "5 unaccounted" in str(err.value)

    def test_breakdown_covers_the_sum(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        scenario.sender.post(scenario.vc, bytes(2000))
        sim.run(until=0.01)
        ledger = CellConservationAuditor(
            scenario.link_ab, scenario.receiver
        ).snapshot()
        assert sum(ledger.breakdown().values()) == ledger.accounted
        assert ledger.offered == ledger.accounted
        assert str(ledger.offered) in ledger.format()

    def test_delivered_cells_partition(self):
        result = FaultCampaign(degradation_config(), [], FAST_SPEC).run()
        ledger = result.ledger
        assert ledger.delivered == (
            ledger.to_host + ledger.no_host_buffer + ledger.dma_in_flight
        )
        assert ledger.dma_in_flight == 0  # drained


class TestCampaignRngIsolation:
    def test_plan_streams_are_independent(self):
        campaign = FaultCampaign(aurora_oc3(), [], FAST_SPEC, seed=5)
        a = campaign.rng_for(0, BurstLossPlan())
        b = campaign.rng_for(1, BurstLossPlan())
        same = campaign.rng_for(0, BurstLossPlan())
        assert a.random() != b.random()
        expected = RandomStreams(5).stream(f"plan.0.{BurstLossPlan().label}")
        assert expected.random() == same.random()
