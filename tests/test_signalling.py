"""Signalling-lite: message codec and end-to-end call control."""

import pytest

from repro.atm import VcAddress
from repro.atm.signalling import (
    Call,
    CallRefused,
    CallState,
    MessageType,
    SIGNALLING_VC,
    SignallingAgent,
    SignallingMessage,
)
from repro.nic import HostNetworkInterface, aurora_oc3, connect


def build_pair(sim, on_setup=None):
    a = HostNetworkInterface(sim, aurora_oc3(), name="a")
    b = HostNetworkInterface(sim, aurora_oc3(), name="b")
    connect(sim, a, b)
    return a, b, SignallingAgent(sim, a), SignallingAgent(sim, b, on_setup=on_setup)


class TestCodec:
    def test_roundtrip(self):
        msg = SignallingMessage(
            MessageType.SETUP, call_ref=42, vpi=3, vci=700, peak_rate_bps=20_000_000
        )
        assert SignallingMessage.decode(msg.encode()) == msg

    def test_encoding_is_fixed_size(self):
        assert len(SignallingMessage(MessageType.RELEASE, 1).encode()) == 18

    def test_bad_magic_rejected(self):
        data = bytearray(SignallingMessage(MessageType.CONNECT, 1).encode())
        data[0] = 0x00
        with pytest.raises(ValueError):
            SignallingMessage.decode(bytes(data))

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            SignallingMessage.decode(b"\x5a\x01")


class TestCallControl:
    def test_setup_connect_opens_vc_both_ends(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        results = []

        def caller():
            call = sig_a.place_call()
            address = yield call.connected
            results.append(address)

        sim.process(caller())
        sim.run(until=0.05)
        address = results[0]
        assert a.vc_table.lookup(address) is not None
        assert b.vc_table.lookup(address) is not None
        assert sig_a.active_calls == 1
        assert sig_b.active_calls == 1

    def test_data_flows_on_signalled_vc(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        got = []
        sig_b.on_user_pdu = got.append

        def caller():
            call = sig_a.place_call()
            address = yield call.connected
            yield a.send(address, b"payload over a signalled VC")

        sim.process(caller())
        sim.run(until=0.05)
        assert [c.sdu for c in got] == [b"payload over a signalled VC"]

    def test_peak_rate_propagates_to_both_ends(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        results = []

        def caller():
            call = sig_a.place_call(peak_rate_bps=25e6)
            results.append((yield call.connected))

        sim.process(caller())
        sim.run(until=0.05)
        address = results[0]
        assert a.vc_table.lookup(address).peak_rate_bps == 25e6
        assert b.vc_table.lookup(address).peak_rate_bps == 25e6

    def test_release_closes_both_ends(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        results = []

        def caller():
            call = sig_a.place_call()
            address = yield call.connected
            yield sig_a.release_call(call)
            results.append(address)

        sim.process(caller())
        sim.run(until=0.05)
        address = results[0]
        assert a.vc_table.lookup(address) is None
        assert b.vc_table.lookup(address) is None
        assert sig_a.active_calls == 0
        assert sig_b.active_calls == 0

    def test_refusal_fails_connected_event(self, sim):
        a, b, sig_a, sig_b = build_pair(sim, on_setup=lambda m: False)
        outcomes = []

        def caller():
            call = sig_a.place_call()
            try:
                yield call.connected
            except CallRefused:
                outcomes.append("refused")

        sim.process(caller())
        sim.run(until=0.05)
        assert outcomes == ["refused"]
        assert sig_b.calls_refused.count == 1
        assert sig_a.active_calls == 0

    def test_admission_policy_sees_peak_rate(self, sim):
        seen = []

        def policy(message):
            seen.append(message.peak_rate_bps)
            return message.peak_rate_bps <= 50_000_000

        a, b, sig_a, sig_b = build_pair(sim, on_setup=policy)
        outcomes = []

        def caller():
            ok = sig_a.place_call(peak_rate_bps=40e6)
            yield ok.connected
            outcomes.append("accepted")
            too_big = sig_a.place_call(peak_rate_bps=90e6)
            try:
                yield too_big.connected
            except CallRefused:
                outcomes.append("refused")

        sim.process(caller())
        sim.run(until=0.05)
        assert outcomes == ["accepted", "refused"]
        assert seen == [40_000_000, 90_000_000]

    def test_multiple_concurrent_calls_get_distinct_vcs(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        addresses = []

        def caller():
            calls = [sig_a.place_call() for _ in range(3)]
            for call in calls:
                addresses.append((yield call.connected))

        sim.process(caller())
        sim.run(until=0.05)
        assert len(set(addresses)) == 3

    def test_release_of_inactive_call_rejected(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        call = Call(call_ref=99, state=CallState.IDLE, is_caller=True)
        with pytest.raises(ValueError):
            sig_a.release_call(call)

    def test_signalling_channel_is_reserved_vc(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        assert SIGNALLING_VC.is_signalling
        assert a.vc_table.lookup(SIGNALLING_VC) is not None

    def test_setup_latency_is_a_round_trip(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        times = []

        def caller():
            start = sim.now
            call = sig_a.place_call()
            yield call.connected
            times.append(sim.now - start)

        sim.process(caller())
        sim.run(until=0.05)
        # Two 18-byte PDUs + processing: order 100-400 us on this path.
        assert 50e-6 < times[0] < 1e-3

    def test_call_for_lookup(self, sim):
        a, b, sig_a, sig_b = build_pair(sim)
        call = sig_a.place_call()
        assert sig_a.call_for(call.call_ref) is call
        assert sig_a.call_for(12345) is None
