"""Reassembly timer wheel."""

import pytest

from repro.aal import ReassemblyTimerWheel


class TestTimerWheel:
    def test_expires_stale_key(self, sim):
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.5, tick=0.1, on_expire=expired.append
        )
        wheel.arm("vc-1")
        wheel.start()
        sim.run(until=1.0)
        wheel.stop()
        assert expired == ["vc-1"]
        assert wheel.expirations.count == 1

    def test_disarm_prevents_expiry(self, sim):
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.5, tick=0.1, on_expire=expired.append
        )
        wheel.arm("vc-1")
        assert wheel.disarm("vc-1")
        wheel.start()
        sim.run(until=1.0)
        wheel.stop()
        assert expired == []

    def test_disarm_unknown_returns_false(self, sim):
        wheel = ReassemblyTimerWheel(sim, 0.5, 0.1, on_expire=lambda k: None)
        assert not wheel.disarm("nope")

    def test_touch_slides_deadline(self, sim):
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.5, tick=0.05, on_expire=expired.append
        )
        wheel.arm("vc-1")
        wheel.start()

        def toucher():
            for _ in range(10):
                yield sim.timeout(0.2)
                wheel.touch("vc-1")

        sim.process(toucher())
        sim.run(until=1.5)
        assert expired == []  # kept alive past its original deadline
        sim.run(until=3.5)
        wheel.stop()
        assert expired == ["vc-1"]  # expires once touching stops

    def test_expiry_fires_exactly_once_per_stranded_context(self, sim):
        """A stranded key fires once, then stays gone through later sweeps."""
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.3, tick=0.05, on_expire=expired.append
        )
        keys = [f"vc-{i}" for i in range(5)]
        for key in keys:
            wheel.arm(key)
        wheel.start()
        sim.run(until=5.0)  # dozens of sweeps past every deadline
        wheel.stop()
        assert sorted(expired) == sorted(keys)
        assert wheel.expirations.count == len(keys)
        assert len(wheel) == 0

    def test_touch_slides_only_the_touched_key(self, sim):
        """touch() is per-key: the sibling still expires exactly once."""
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.5, tick=0.05, on_expire=expired.append
        )
        wheel.arm("busy")
        wheel.arm("stranded")
        wheel.start()

        def toucher():
            for _ in range(20):
                yield sim.timeout(0.2)
                wheel.touch("busy")

        sim.process(toucher())
        sim.run(until=3.0)
        assert expired == ["stranded"]
        sim.run(until=6.0)
        wheel.stop()
        assert expired == ["stranded", "busy"]

    def test_expiry_precision_is_one_tick(self, sim):
        expired_at = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.5, tick=0.1, on_expire=lambda k: expired_at.append(sim.now)
        )
        wheel.arm("k")
        wheel.start()
        sim.run(until=2.0)
        wheel.stop()
        assert 0.5 <= expired_at[0] <= 0.6 + 1e-9

    def test_rearm_from_callback_is_safe(self, sim):
        count = []

        def expire(key):
            count.append(key)
            if len(count) < 3:
                wheel.arm(key)

        wheel = ReassemblyTimerWheel(sim, timeout=0.2, tick=0.05, on_expire=expire)
        wheel.arm("k")
        wheel.start()
        sim.run(until=2.0)
        wheel.stop()
        assert count == ["k", "k", "k"]

    def test_manual_sweep(self, sim):
        expired = []
        wheel = ReassemblyTimerWheel(
            sim, timeout=0.1, tick=10.0, on_expire=expired.append
        )
        wheel.arm("a")
        sim.timeout(0.2)
        sim.run()
        assert wheel.sweep() == 1
        assert expired == ["a"]

    def test_len_tracks_armed_keys(self, sim):
        wheel = ReassemblyTimerWheel(sim, 0.5, 0.1, on_expire=lambda k: None)
        wheel.arm("a")
        wheel.arm("b")
        assert len(wheel) == 2
        wheel.disarm("a")
        assert len(wheel) == 1

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            ReassemblyTimerWheel(sim, timeout=0.0, tick=0.1, on_expire=lambda k: None)
        with pytest.raises(ValueError):
            ReassemblyTimerWheel(sim, timeout=1.0, tick=0.0, on_expire=lambda k: None)
