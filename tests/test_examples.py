"""Smoke tests: the example scripts run clean end to end.

Each example is a documented entry point for new users; these tests
keep them from bitrotting.  The slowest example (bulk_transfer, which
simulates 120 ms of STS-12c traffic) is exercised with a reduced
window via environment-free import, not skipped.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "PDUs delivered       : 5" in out
        assert "one per PDU, not per cell" in out

    def test_quickstart_trace_export(self, capsys, tmp_path, monkeypatch):
        import json

        trace_path = tmp_path / "quickstart-trace.json"
        monkeypatch.setattr(
            sys, "argv", ["quickstart.py", "--trace", str(trace_path)]
        )
        out = run_example("quickstart.py", capsys)
        assert "ui.perfetto.dev" in out
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]

    def test_latency_profile(self, capsys):
        out = run_example("latency_profile.py", capsys)
        assert "STS-3c" in out and "STS-12c" in out
        assert "dominated by" in out

    def test_signalled_call(self, capsys):
        out = run_example("signalled_call.py", capsys)
        assert "connected on VC" in out
        assert "released at" in out

    def test_multi_vc_switch(self, capsys):
        out = run_example("multi_vc_switch.py", capsys)
        assert "VC 0/100" in out and "VC 0/102" in out
        assert "dropped 0" in out

    def test_lossy_wan(self, capsys):
        out = run_example("lossy_wan.py", capsys)
        assert "PDUs delivered intact" in out
        assert "crc" in out

    @pytest.mark.slow
    def test_bulk_transfer(self, capsys):
        out = run_example("bulk_transfer.py", capsys)
        assert "offloaded interface (STS-12c)" in out
        assert "host-software SAR baseline" in out
