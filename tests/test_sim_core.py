"""Kernel semantics: clock, event lifecycle, scheduling order."""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.core import all_processed


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_until_advances_exactly_to_until(self, sim):
        sim.timeout(0.25)
        sim.run(until=1.0)
        assert sim.now == 1.0

    def test_run_until_past_is_rejected(self, sim):
        sim.timeout(5.0)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_without_until_drains_queue(self, sim):
        sim.timeout(3.0)
        sim.run()
        assert sim.now == 3.0
        assert sim.pending_events() == 0

    def test_events_beyond_until_stay_queued(self, sim):
        sim.timeout(5.0)
        sim.run(until=1.0)
        assert sim.pending_events() == 1
        assert sim.peek() == 5.0

    def test_peek_empty_queue_is_inf(self, sim):
        assert sim.peek() == float("inf")


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_trigger_then_run_processes(self, sim):
        ev = sim.event()
        ev.trigger("payload")
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed
        assert ev.value == "payload"

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_fail_then_value_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_reflects_success(self, sim):
        good, bad = sim.event(), sim.event()
        good.trigger(1)
        bad.fail(RuntimeError())
        assert good.ok
        assert not bad.ok

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.trigger(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_delayed_trigger(self, sim):
        ev = sim.event()
        ev.trigger("late", delay=2.5)
        times = []
        ev.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.5]


class TestOrdering:
    def test_fifo_among_equal_times(self, sim):
        order = []
        for label in "abc":
            sim.schedule_call(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_order_respected(self, sim):
        order = []
        sim.schedule_call(2.0, order.append, "late")
        sim.schedule_call(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_call(-0.1, lambda: None)

    def test_timeout_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_step_processes_one_event(self, sim):
        hits = []
        sim.schedule_call(1.0, hits.append, 1)
        sim.schedule_call(2.0, hits.append, 2)
        sim.step()
        assert hits == [1]
        assert sim.now == 1.0


class TestRunGuards:
    def test_run_until_idle_counts_events(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        assert sim.run_until_idle() == 5

    def test_run_until_idle_guard_trips(self, sim):
        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=50)

    def test_all_processed_helper(self, sim):
        events = [sim.timeout(1.0), sim.timeout(2.0)]
        assert not all_processed(events)
        sim.run()
        assert all_processed(events)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []

            def proc(name, period):
                while sim.now < 1.0:
                    yield sim.timeout(period)
                    log.append((round(sim.now, 9), name))

            sim.process(proc("a", 0.13))
            sim.process(proc("b", 0.07))
            sim.run(until=1.0)
            return log

        assert trace() == trace()
