"""Kernel semantics: clock, event lifecycle, scheduling order."""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.core import all_processed


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_run_until_advances_exactly_to_until(self, sim):
        sim.timeout(0.25)
        sim.run(until=1.0)
        assert sim.now == 1.0

    def test_run_until_past_is_rejected(self, sim):
        sim.timeout(5.0)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_without_until_drains_queue(self, sim):
        sim.timeout(3.0)
        sim.run()
        assert sim.now == 3.0
        assert sim.pending_events() == 0

    def test_events_beyond_until_stay_queued(self, sim):
        sim.timeout(5.0)
        sim.run(until=1.0)
        assert sim.pending_events() == 1
        assert sim.peek() == 5.0

    def test_peek_empty_queue_is_inf(self, sim):
        assert sim.peek() == float("inf")


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_trigger_then_run_processes(self, sim):
        ev = sim.event()
        ev.trigger("payload")
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed
        assert ev.value == "payload"

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_fail_then_value_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError, match="boom"):
            _ = ev.value

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_reflects_success(self, sim):
        good, bad = sim.event(), sim.event()
        good.trigger(1)
        bad.fail(RuntimeError())
        assert good.ok
        assert not bad.ok

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.trigger(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_delayed_trigger(self, sim):
        ev = sim.event()
        ev.trigger("late", delay=2.5)
        times = []
        ev.add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.5]


class TestOrdering:
    def test_fifo_among_equal_times(self, sim):
        order = []
        for label in "abc":
            sim.schedule_call(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_order_respected(self, sim):
        order = []
        sim.schedule_call(2.0, order.append, "late")
        sim.schedule_call(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_call(-0.1, lambda: None)

    def test_timeout_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_step_processes_one_event(self, sim):
        hits = []
        sim.schedule_call(1.0, hits.append, 1)
        sim.schedule_call(2.0, hits.append, 2)
        sim.step()
        assert hits == [1]
        assert sim.now == 1.0


class TestRunGuards:
    def test_run_until_idle_counts_events(self, sim):
        for _ in range(5):
            sim.timeout(1.0)
        assert sim.run_until_idle() == 5

    def test_run_until_idle_guard_trips(self, sim):
        def forever():
            while True:
                yield sim.timeout(1.0)

        sim.process(forever())
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=50)

    def test_all_processed_helper(self, sim):
        events = [sim.timeout(1.0), sim.timeout(2.0)]
        assert not all_processed(events)
        sim.run()
        assert all_processed(events)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace():
            sim = Simulator()
            log = []

            def proc(name, period):
                while sim.now < 1.0:
                    yield sim.timeout(period)
                    log.append((round(sim.now, 9), name))

            sim.process(proc("a", 0.13))
            sim.process(proc("b", 0.07))
            sim.run(until=1.0)
            return log

        assert trace() == trace()


class TestCalendarScheduler:
    """The calendar backend must reproduce the heap's exact total order."""

    @staticmethod
    def _pop_order(scheduler, times, **knobs):
        from repro.sim.core import SimConfig

        sim = Simulator(SimConfig(scheduler=scheduler, **knobs))
        order = []
        for label, t in enumerate(times):
            sim.schedule_call(t, order.append, (t, label))
        sim.run()
        return order

    def test_same_timestamp_fifo_matches_heap(self):
        times = [1.0, 1.0, 0.5, 1.0, 0.5, 2.0, 1.0]
        assert self._pop_order("calendar", times) == self._pop_order(
            "heap", times
        )

    def test_far_future_events_overflow_and_rebase(self):
        # Far beyond the wheel window (width * buckets), through several
        # rebase generations, mixed with near-term events.
        times = [1e-6, 5.0, 1e-6, 12_000.0, 3.0, 5.0, 0.0, 7e5, 12_000.0]
        assert self._pop_order(
            "calendar", times, calendar_bucket_width=1e-6, calendar_buckets=4
        ) == self._pop_order("heap", times)

    def test_degenerate_single_bucket_wheel(self):
        times = [0.3, 0.1, 0.2, 0.1, 0.4]
        assert self._pop_order(
            "calendar", times, calendar_bucket_width=1e-9, calendar_buckets=1
        ) == self._pop_order("heap", times)

    def test_overflow_due_while_window_busy_is_not_stranded(self):
        # Regression: an overflow event can come due while near events
        # keep landing inside the wheel's window (dense self-scheduling
        # workloads -- exactly S1's churn shape).  The wheel only
        # rebases on empty-window scans, so the overflow top must be
        # compared lazily on every peek/pop, not just after a rebase;
        # the original code stranded it until the wheel went idle,
        # running events out of order.  Upfront schedules (the tests
        # above) never trip this: it needs events scheduled *from
        # running callbacks* that keep the window occupied past the
        # overflow event's deadline.
        from repro.sim.core import SimConfig

        def run(scheduler):
            sim = Simulator(
                SimConfig(
                    scheduler=scheduler,
                    calendar_bucket_width=1e-3,
                    calendar_buckets=8,  # window = 8 ms
                )
            )
            log = []

            def tick(n):
                log.append(("tick", round(sim.now, 9)))
                if n:
                    # Stay inside the window, forever occupying it...
                    sim.schedule_call(2e-3, tick, n - 1)
                if n == 18:
                    # ...then lob one event far past the window; it
                    # comes due at 25 ms, mid-stream of the ticks.
                    sim.schedule_call(21e-3, log.append, ("far", 1))

            sim.schedule_call(0.0, tick, 20)
            sim.run()
            return log, sim.now, sim.events_processed

        assert run("calendar") == run("heap")

    def test_run_until_leaves_future_events_queued(self):
        from repro.sim.core import SimConfig

        sim = Simulator(SimConfig(scheduler="calendar"))
        hits = []
        sim.schedule_call(1.0, hits.append, "near")
        sim.schedule_call(100.0, hits.append, "far")
        sim.run(until=2.0)
        assert hits == ["near"]
        assert sim.now == 2.0
        assert sim.pending_events() == 1


class TestCancellation:
    def test_cancelled_timeout_never_fires(self, sim):
        hits = []
        doomed = sim.timeout(1.0)
        doomed.add_callback(lambda ev: hits.append("doomed"))
        sim.schedule_call(2.0, hits.append, "kept")
        doomed.cancel()
        sim.run()
        assert hits == ["kept"]
        assert doomed.cancelled and not doomed.processed

    def test_cancelled_entry_does_not_advance_clock_or_count(self, sim):
        sim.timeout(5.0).cancel()
        sim.schedule_call(1.0, lambda: None)
        assert sim.run_until_idle() == 1
        assert sim.now == 1.0
        assert sim.events_processed == 1

    def test_cancel_is_idempotent_but_processed_is_final(self, sim):
        ev = sim.timeout(1.0)
        ev.cancel()
        ev.cancel()  # no-op
        done = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            done.cancel()

    def test_cancelled_event_rejects_trigger_and_fail(self, sim):
        from repro.sim.core import Event

        ev = Event(sim)
        ev.cancel()
        assert not ev.triggered
        with pytest.raises(SimulationError):
            ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_cancellation_identical_across_backends(self):
        from repro.sim.core import SimConfig

        def run(scheduler):
            sim = Simulator(SimConfig(scheduler=scheduler))
            log = []
            victims = [sim.timeout(t) for t in (0.2, 0.4, 0.4, 0.9)]
            for t in (0.1, 0.4, 0.5, 0.9):
                sim.schedule_call(t, log.append, t)
            for victim in victims:
                victim.cancel()
            sim.run()
            return log, sim.now, sim.events_processed

        assert run("heap") == run("calendar")
