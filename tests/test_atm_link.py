"""Physical link timing, utilization, and loss injection."""

import pytest

from repro.atm import (
    AtmCell,
    DS3_45,
    LinkSpec,
    NoLoss,
    PhysicalLink,
    STS3C_155,
    STS12C_622,
    TAXI_100,
    UniformLoss,
)

PAYLOAD = bytes(48)


def cell(vci=100):
    return AtmCell(vpi=0, vci=vci, payload=PAYLOAD)


class TestLinkSpec:
    def test_preset_cell_times(self):
        # 424 bits at the payload rate.
        assert STS3C_155.cell_time == pytest.approx(424 / 149.76e6)
        assert STS12C_622.cell_time == pytest.approx(424 / 599.04e6)
        assert TAXI_100.cell_time == pytest.approx(424 / 100e6)

    def test_cell_rate_inverse_of_cell_time(self):
        for spec in (STS3C_155, STS12C_622, TAXI_100, DS3_45):
            assert spec.cell_rate == pytest.approx(1.0 / spec.cell_time)

    def test_effective_user_rate_is_48_of_53(self):
        assert STS3C_155.effective_user_rate_bps == pytest.approx(
            149.76e6 * 48 / 53
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec("bad", 1e6, 0.0)
        with pytest.raises(ValueError):
            LinkSpec("bad", 1e6, 2e6)


class TestSerialization:
    def test_back_to_back_cells_are_slot_spaced(self, sim):
        arrivals = []
        link = PhysicalLink(sim, STS3C_155, sink=lambda c: arrivals.append(sim.now))
        for _ in range(3):
            link.send(cell())
        sim.run()
        slot = STS3C_155.cell_time
        assert arrivals == pytest.approx([slot, 2 * slot, 3 * slot])

    def test_idle_gap_restarts_immediately(self, sim):
        arrivals = []
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: arrivals.append(sim.now))

        def sender():
            link.send(cell())
            yield sim.timeout(1.0)
            link.send(cell())

        sim.process(sender())
        sim.run()
        assert arrivals[1] == pytest.approx(1.0 + TAXI_100.cell_time)

    def test_propagation_delay_added(self, sim):
        arrivals = []
        link = PhysicalLink(
            sim,
            TAXI_100,
            sink=lambda c: arrivals.append(sim.now),
            propagation_delay=0.005,
        )
        link.send(cell())
        sim.run()
        assert arrivals[0] == pytest.approx(TAXI_100.cell_time + 0.005)

    def test_send_event_fires_at_wire_out_not_delivery(self, sim):
        link = PhysicalLink(
            sim, TAXI_100, sink=lambda c: None, propagation_delay=1.0
        )
        times = []

        def sender():
            yield link.send(cell())
            times.append(sim.now)

        sim.process(sender())
        sim.run(until=0.5)
        assert times == [pytest.approx(TAXI_100.cell_time)]

    def test_utilization(self, sim):
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: None)
        for _ in range(10):
            link.send(cell())
        sim.run()
        elapsed = sim.now
        assert link.utilization(elapsed) == pytest.approx(1.0)
        assert link.utilization(2 * elapsed) == pytest.approx(0.5)

    def test_backlog_time(self, sim):
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: None)
        for _ in range(5):
            link.send(cell())
        assert link.backlog_time == pytest.approx(5 * TAXI_100.cell_time)

    def test_no_sink_raises_on_delivery(self, sim):
        link = PhysicalLink(sim, TAXI_100)
        link.send(cell())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_connect_replaces_sink(self, sim):
        got = []
        link = PhysicalLink(sim, TAXI_100)
        link.connect(lambda c: got.append(c))
        link.send(cell())
        sim.run()
        assert len(got) == 1

    def test_negative_propagation_rejected(self, sim):
        with pytest.raises(ValueError):
            PhysicalLink(sim, TAXI_100, propagation_delay=-1.0)


class TestLossInjection:
    def test_no_loss_default(self, sim):
        got = []
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: got.append(c))
        for _ in range(20):
            link.send(cell())
        sim.run()
        assert len(got) == 20
        assert link.cells_lost.count == 0

    def test_uniform_loss_drops_fraction(self, sim, rng):
        got = []
        loss = UniformLoss(0.5, rng)
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: got.append(c), loss_model=loss)
        n = 2000
        for _ in range(n):
            link.send(cell())
        sim.run()
        assert link.cells_lost.count + len(got) == n
        assert link.cells_lost.count / n == pytest.approx(0.5, abs=0.05)

    def test_total_loss(self, sim, rng):
        got = []
        link = PhysicalLink(
            sim, TAXI_100, sink=lambda c: got.append(c), loss_model=UniformLoss(1.0, rng)
        )
        for _ in range(10):
            link.send(cell())
        sim.run()
        assert got == []

    def test_lost_cells_still_occupy_wire_time(self, sim, rng):
        # Loss happens at the far end; serialization time is spent anyway.
        link = PhysicalLink(
            sim, TAXI_100, sink=lambda c: None, loss_model=UniformLoss(1.0, rng)
        )
        for _ in range(4):
            link.send(cell())
        sim.run()
        assert sim.now == pytest.approx(4 * TAXI_100.cell_time)

    def test_no_loss_model_is_reusable(self):
        model = NoLoss()
        assert not model.should_drop(cell(), 0.0)
