"""Extension features: the AAL3/4 data path and per-VC transmit pacing."""

import pytest

from repro.atm import Gcra, PhysicalLink, STS3C_155
from repro.nic import HostNetworkInterface, aurora_oc3, connect
from repro.nic.sarglue import Aal5Glue, Aal34Glue, glue_for
from repro.workloads import GreedySource
from repro.workloads.generators import make_payload


class TestSarGlue:
    def test_factory(self):
        assert isinstance(glue_for("aal5"), Aal5Glue)
        assert isinstance(glue_for("aal3/4"), Aal34Glue)
        assert isinstance(glue_for("aal34"), Aal34Glue)
        with pytest.raises(ValueError):
            glue_for("aal2")

    def test_cell_counts_reflect_overhead(self):
        aal5, aal34 = Aal5Glue(), Aal34Glue()
        # 9180-byte SDU: 192 cells at 48 B/cell vs 209 at 44 B/cell.
        assert aal5.cells_for(9180) == 192
        assert aal34.cells_for(9180) == 209
        # The ratio approaches 48/44 for large SDUs.
        assert aal34.cells_for(65000) / aal5.cells_for(65000) == pytest.approx(
            48 / 44, rel=0.01
        )

    def test_aal34_engine_tax_nonzero(self):
        assert Aal34Glue().tx_extra_cycles > 0
        assert Aal34Glue().rx_extra_cycles > 0
        assert Aal5Glue().tx_extra_cycles == 0


class TestAal34DataPath:
    def build(self, sim):
        config = aurora_oc3().with_aal34()
        a = HostNetworkInterface(sim, config, name="a")
        b = HostNetworkInterface(sim, config, name="b")
        connect(sim, a, b)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        received = []
        b.on_pdu = received.append
        return a, b, vc.address, received

    def test_transfer_roundtrip(self, sim):
        a, b, vc, received = self.build(sim)
        payload = make_payload(5000)
        a.post(vc, payload)
        sim.run(until=0.02)
        assert [c.sdu for c in received] == [payload]

    def test_more_cells_than_aal5(self, sim):
        a, b, vc, received = self.build(sim)
        a.post(vc, make_payload(9180))
        sim.run(until=0.02)
        assert received[0].cells == 209

    def test_many_pdus(self, sim):
        a, b, vc, received = self.build(sim)
        GreedySource(sim, a, vc, 1500, total_pdus=10).start()
        sim.run(until=0.05)
        assert len(received) == 10
        assert b.stats().pdus_discarded == 0

    def test_reassembly_timeout_reclaims_aal34_context(self, sim):
        from repro.aal.aal34 import Aal34Segmenter

        config = aurora_oc3().with_aal34()
        nic = HostNetworkInterface(sim, config, name="rx")
        from repro.atm import VcAddress

        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        cells = Aal34Segmenter(vc.address, mid=0).segment(b"x" * 500)
        for cell in cells[:-1]:
            nic.rx_engine.receive_cell(cell)
        sim.run(until=1.0)
        assert not nic.rx_engine.reassembler.has_context(vc.address, 0)
        assert nic.buffer_memory.used_cells == 0

    def test_goodput_lower_than_aal5_at_link_rate(self, sim):
        from repro.results.experiments import lab_host, steady_goodput_mbps
        from repro.workloads.scenarios import build_point_to_point

        results = {}
        for label, config in (
            ("aal5", lab_host(aurora_oc3())),
            ("aal34", lab_host(aurora_oc3().with_aal34())),
        ):
            local_sim = type(sim)()
            scenario = build_point_to_point(local_sim, config)
            GreedySource(local_sim, scenario.sender, scenario.vc, 9180).start()
            local_sim.run(until=0.03)
            results[label] = steady_goodput_mbps(scenario.received)
        # The 4-bytes-per-cell tax: AAL3/4 delivers ~44/48 of AAL5.
        assert results["aal34"] < results["aal5"]
        assert results["aal34"] / results["aal5"] == pytest.approx(
            44 / 48, rel=0.05
        )


class TestPacing:
    def test_paced_vc_conforms_to_gcra(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        arrivals = []
        link = PhysicalLink(sim, STS3C_155, sink=lambda c: arrivals.append(sim.now))
        nic.attach_tx_link(link)
        vc = nic.open_vc(peak_rate_bps=20e6)
        GreedySource(sim, nic, vc.address, 9180, total_pdus=2).start()
        sim.run(until=0.1)
        gcra = Gcra.for_rate(20e6 / 424, tolerance=STS3C_155.cell_time + 1e-9)
        assert arrivals
        assert all(gcra.conforms(t) for t in arrivals)
        assert nic.tx_engine.pacing_stalls.count > 0

    def test_paced_rate_matches_contract(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        arrivals = []
        link = PhysicalLink(sim, STS3C_155, sink=lambda c: arrivals.append(sim.now))
        nic.attach_tx_link(link)
        vc = nic.open_vc(peak_rate_bps=30e6)
        GreedySource(sim, nic, vc.address, 9180, total_pdus=3).start()
        sim.run(until=0.2)
        span = arrivals[-1] - arrivals[0]
        observed = (len(arrivals) - 1) * 424 / span
        # Pacing is a ceiling: per-PDU machinery (descriptor, DMA) adds
        # gaps on top, so the long-run rate lands just under the contract.
        assert observed <= 30e6 * 1.001
        assert observed >= 30e6 * 0.95

    def test_unpaced_vc_runs_at_link_rate(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        arrivals = []
        link = PhysicalLink(sim, STS3C_155, sink=lambda c: arrivals.append(sim.now))
        nic.attach_tx_link(link)
        vc = nic.open_vc()  # no contract
        GreedySource(sim, nic, vc.address, 9180, total_pdus=2).start()
        sim.run(until=0.1)
        assert nic.tx_engine.pacing_stalls.count == 0
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # Within a PDU, cells are back to back at the link slot.
        assert min(gaps) == pytest.approx(STS3C_155.cell_time, rel=0.01)

    def test_pacing_survives_idle_gaps(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        arrivals = []
        link = PhysicalLink(sim, STS3C_155, sink=lambda c: arrivals.append(sim.now))
        nic.attach_tx_link(link)
        vc = nic.open_vc(peak_rate_bps=50e6)

        def bursty():
            yield nic.send(vc.address, make_payload(1500))
            yield sim.timeout(0.01)
            yield nic.send(vc.address, make_payload(1500))

        sim.process(bursty())
        sim.run(until=0.1)
        gcra = Gcra.for_rate(50e6 / 424, tolerance=STS3C_155.cell_time + 1e-9)
        assert all(gcra.conforms(t) for t in arrivals)
