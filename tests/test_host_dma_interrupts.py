"""DMA engine and interrupt controller."""

import pytest

from repro.host import (
    DmaEngine,
    DmaSpec,
    HostCpu,
    InterruptController,
    InterruptSpec,
    R3000_25MHZ,
    SystemBus,
    TURBOCHANNEL,
)


class TestDma:
    def test_transfer_time_is_setup_plus_bus_plus_completion(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        spec = DmaSpec(setup_time=1e-6, completion_time=0.5e-6)
        dma = DmaEngine(sim, bus, spec)
        done = []

        def master():
            yield dma.transfer(512)
            done.append(sim.now)

        sim.process(master())
        sim.run()
        expected = 1e-6 + TURBOCHANNEL.transfer_time(512) + 0.5e-6
        assert done[0] == pytest.approx(expected)

    def test_transfers_serialize_per_engine(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        dma = DmaEngine(sim, bus, DmaSpec(setup_time=1e-6, completion_time=0.0))
        done = []

        def master():
            yield dma.transfer(512)
            done.append(sim.now)

        sim.process(master())
        sim.process(master())
        sim.run()
        single = 1e-6 + TURBOCHANNEL.transfer_time(512)
        assert done[1] == pytest.approx(2 * single)

    def test_statistics(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        dma = DmaEngine(sim, bus)

        def master():
            yield dma.transfer(100)
            yield dma.transfer(200)

        sim.process(master())
        sim.run()
        assert dma.transfers.count == 2
        assert dma.bytes_moved.count == 300
        assert dma.latency.n == 2

    def test_two_engines_contend_on_one_bus(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        a = DmaEngine(sim, bus, DmaSpec(0.0, 0.0), name="a")
        b = DmaEngine(sim, bus, DmaSpec(0.0, 0.0), name="b")
        done = {}

        def master(engine, name):
            yield engine.transfer(4096)
            done[name] = sim.now

        sim.process(master(a, "a"))
        sim.process(master(b, "b"))
        sim.run()
        solo = TURBOCHANNEL.transfer_time(4096)
        # Interleaved at burst granularity: both finish ~2x solo time.
        assert done["a"] > solo
        assert done["b"] == pytest.approx(2 * solo, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            DmaSpec(setup_time=-1.0)


class TestInterrupts:
    def test_cost_charged_to_cpu(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        intc = InterruptController(
            sim, cpu, InterruptSpec(entry_cycles=200, exit_cycles=100)
        )
        ran = []
        intc.raise_interrupt(50, handler=lambda: ran.append(sim.now))
        sim.run()
        assert ran
        assert cpu.cycles_for("interrupt") == 350

    def test_completion_event(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        intc = InterruptController(sim, cpu)
        done = []

        def waiter():
            yield intc.raise_interrupt(100)
            done.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert done and done[0] > 0

    def test_handler_runs_after_entry_cost(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        spec = InterruptSpec(entry_cycles=250, exit_cycles=0)
        intc = InterruptController(sim, cpu, spec)
        ran = []
        intc.raise_interrupt(0, handler=lambda: ran.append(sim.now))
        sim.run()
        assert ran[0] >= 250 / 25e6

    def test_coalescing_merges_raises(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        intc = InterruptController(
            sim, cpu, InterruptSpec(coalesce_window=1e-3)
        )
        for _ in range(5):
            intc.raise_interrupt(10)
        sim.run()
        assert intc.raised.count == 5
        assert intc.delivered.count == 1
        assert intc.coalescing_ratio == pytest.approx(5.0)
        # One entry/exit pair, five handler bodies.
        assert cpu.cycles_for("interrupt") == 200 + 150 + 50

    def test_no_coalescing_by_default(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        intc = InterruptController(sim, cpu)

        def raiser():
            for _ in range(3):
                yield intc.raise_interrupt(10)

        sim.process(raiser())
        sim.run()
        assert intc.delivered.count == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            InterruptSpec(entry_cycles=-1)
        with pytest.raises(ValueError):
            InterruptSpec(coalesce_window=-1.0)
