"""CRC engines: table vs bit-serial agreement, residues, known vectors."""

import pytest
from hypothesis import given, strategies as st

from repro.aal.crc import CRC32_AAL5, CrcAlgorithm, crc10


class TestCrc32:
    def test_known_vector_123456789(self):
        # The check value of the CRC-32/BZIP2 parameterisation (MSB-first,
        # init all-ones, final complement) for "123456789".
        assert CRC32_AAL5.compute(b"123456789") == 0xFC891918

    def test_table_matches_bit_serial(self):
        data = b"the quick brown fox jumps over the lazy dog"
        assert CRC32_AAL5.compute(data) == CRC32_AAL5.bitwise_reference(data)

    @given(st.binary(max_size=200))
    def test_table_matches_bit_serial_property(self, data):
        assert CRC32_AAL5.compute(data) == CRC32_AAL5.bitwise_reference(data)

    @given(st.binary(max_size=200))
    def test_append_then_verify(self, data):
        assert CRC32_AAL5.residue_ok(CRC32_AAL5.append(data))

    @given(st.binary(min_size=1, max_size=100), st.integers(0, 7))
    def test_single_bit_flip_detected(self, data, bit):
        message = CRC32_AAL5.append(data)
        corrupted = bytearray(message)
        corrupted[0] ^= 0x80 >> bit
        assert not CRC32_AAL5.residue_ok(bytes(corrupted))

    def test_incremental_equals_one_shot(self):
        data = b"abcdefghij" * 20
        state = CRC32_AAL5.start()
        for i in range(0, len(data), 7):
            state = CRC32_AAL5.update(state, data[i : i + 7])
        assert CRC32_AAL5.finish(state) == CRC32_AAL5.compute(data)

    def test_short_message_residue_fails(self):
        assert not CRC32_AAL5.residue_ok(b"ab")

    def test_width_validation(self):
        with pytest.raises(ValueError):
            CrcAlgorithm("bad", 4, 0x3, 0, 0)


class TestCrc10:
    def test_zero_message_zero_residue(self):
        assert crc10(bytes(10)) == 0

    def test_residue_zero_after_embedding(self):
        # Emulate the SAR convention: body with zeroed 10-bit CRC field,
        # compute, OR in, verify residue 0.
        body = bytearray(b"\x12\x34" + bytes(44) + b"\x00\x00")
        body[-2] |= 0xB0 >> 4 << 4  # some LI bits in the top of the field
        remainder = crc10(bytes(body))
        trailer = int.from_bytes(body[-2:], "big") | remainder
        full = bytes(body[:-2]) + trailer.to_bytes(2, "big")
        assert crc10(full) == 0

    def test_detects_corruption(self):
        body = b"\x10\x05" + bytes(44) + b"\x00\x00"
        remainder = crc10(body)
        full = body[:-2] + remainder.to_bytes(2, "big")
        corrupted = bytearray(full)
        corrupted[10] ^= 0x40
        assert crc10(bytes(corrupted)) != 0

    @given(st.binary(min_size=2, max_size=64))
    def test_embedding_property(self, body):
        # Zero the last 10 bits, embed the residue, check residue 0.
        data = bytearray(body)
        trailer = int.from_bytes(data[-2:], "big") & 0xFC00
        data[-2:] = trailer.to_bytes(2, "big")
        remainder = crc10(bytes(data))
        data[-2:] = (trailer | remainder).to_bytes(2, "big")
        assert crc10(bytes(data)) == 0

    def test_result_is_ten_bits(self):
        for payload in (b"", b"\xff" * 48, b"\x00\x01\x02"):
            assert 0 <= crc10(payload) <= 0x3FF
