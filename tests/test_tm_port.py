"""OutputPort congestion behaviours: EFCI, CLP-first discard, per-VC books.

Also covers the tagging UPC (GCRA tag mode) feeding a CLP-threshold
port, and the conservation auditor balancing the new drop buckets.
"""

import pytest

from repro.atm import AtmCell, Gcra, VcAddress
from repro.atm.link import LinkSpec, PhysicalLink
from repro.atm.mux import OutputPort
from repro.atm.switch import AtmSwitch, RoutingEntry
from repro.faults.audit import CellConservationAuditor
from repro.nic import HostNetworkInterface, aurora_oc3
from repro.workloads.generators import GreedySource

VC = VcAddress(0, 60)
OTHER = VcAddress(0, 61)


def cell(vc=VC, clp=0, pti=0):
    return AtmCell(vpi=vc.vpi, vci=vc.vci, payload=bytes(48), clp=clp, pti=pti)


def slow_port(sim, **kwargs):
    """A port draining at 1 cell/s so tests control the backlog exactly."""
    spec = LinkSpec("crawl", 424.0, 424.0)
    link = PhysicalLink(sim, spec, sink=lambda c: None, name="crawl")
    return OutputPort(sim, link, **kwargs)


class TestEfciMarking:
    def test_marks_user_cells_at_threshold(self, sim):
        port = slow_port(sim, efci_threshold=2, name="p")
        # First offer drains into serialization; the next two queue.
        for _ in range(3):
            assert port.offer(cell())
        assert port.efci_marked.count == 0
        port.offer(cell())  # queue is at the threshold now
        assert port.efci_marked.count == 1

    def test_management_cells_never_marked(self, sim):
        port = slow_port(sim, efci_threshold=0, name="p")
        port.offer(cell(pti=0b110))  # RM cell
        assert port.efci_marked.count == 0

    def test_already_marked_cells_not_double_counted(self, sim):
        port = slow_port(sim, efci_threshold=0, name="p")
        port.offer(cell(pti=0b010))
        assert port.efci_marked.count == 0

    def test_no_threshold_no_marking(self, sim):
        port = slow_port(sim, name="p")
        for _ in range(10):
            port.offer(cell())
        assert port.efci_marked.count == 0


class TestClpDiscard:
    def test_tagged_cells_die_first_at_threshold(self, sim):
        port = slow_port(sim, buffer_cells=10, clp_threshold=3, name="p")
        # Four offers: one drains into serialization, three sit queued.
        for _ in range(4):
            assert port.offer(cell())
        assert port.backlog == 3
        assert not port.offer(cell(clp=1))
        assert port.offer(cell())  # committed traffic still admitted
        assert port.dropped_clp.count == 1
        assert port.dropped_full.count == 0

    def test_tagged_cells_admitted_below_threshold(self, sim):
        port = slow_port(sim, buffer_cells=10, clp_threshold=3, name="p")
        assert port.offer(cell(clp=1))
        assert port.dropped_clp.count == 0

    def test_full_buffer_drops_everything(self, sim):
        port = slow_port(sim, buffer_cells=2, name="p")
        port.offer(cell())  # drains straight into serialization
        port.offer(cell())
        port.offer(cell())
        assert not port.offer(cell())
        assert not port.offer(cell(clp=1))
        assert port.dropped_full.count == 1
        assert port.dropped_clp.count == 1
        assert port.dropped.count == 2

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            slow_port(sim, clp_threshold=0)
        with pytest.raises(ValueError):
            slow_port(sim, buffer_cells=0)
        with pytest.raises(ValueError):
            slow_port(sim, efci_threshold=-1)


class TestPerVcBooks:
    def test_occupancy_and_loss_itemised_by_vc(self, sim):
        port = slow_port(sim, buffer_cells=2, name="p")
        port.offer(cell(VC))  # drains straight into serialization
        port.offer(cell(VC))
        port.offer(cell(OTHER))
        port.offer(cell(OTHER))  # dropped: buffer full
        # One VC cell is already draining (popped from the queue).
        assert port.occupancy_of(VC) + port.occupancy_of(OTHER) == port.backlog
        assert port.occupancy_by_vc() == {VC: 1, OTHER: 1}
        ratios = port.loss_ratio_by_vc()
        assert ratios[VC] == 0.0
        assert ratios[OTHER] == pytest.approx(0.5)
        assert port.loss_ratio == pytest.approx(0.25)

    def test_books_empty_on_idle_port(self, sim):
        port = slow_port(sim, name="p")
        assert port.occupancy_by_vc() == {}
        assert port.loss_ratio_by_vc() == {}
        assert port.loss_ratio == 0.0


class TestGcraTagMode:
    def test_police_tags_instead_of_dropping(self):
        gcra = Gcra.for_rate(1000.0, tag_nonconforming=True)
        first = gcra.police(cell(), 0.0)
        assert first is not None and not first.clp
        tagged = gcra.police(cell(), 0.1e-3)
        assert tagged is not None and tagged.clp == 1
        assert gcra.tagged == 1
        assert gcra.violating == 1

    def test_drop_mode_returns_none(self):
        gcra = Gcra.for_rate(1000.0)
        assert gcra.police(cell(), 0.0) is not None
        assert gcra.police(cell(), 0.1e-3) is None
        assert gcra.tagged == 0

    def test_tagging_preserves_already_tagged_cells(self):
        gcra = Gcra.for_rate(1000.0, tag_nonconforming=True)
        gcra.police(cell(), 0.0)
        already = cell(clp=1)
        assert gcra.police(already, 0.1e-3) is already


class TestConservationWithPorts:
    def test_tagging_upc_and_clp_port_keep_the_ledger_balanced(self, sim):
        """NIC -> tagging GCRA -> switch -> CLP-threshold port -> NIC."""
        cfg = aurora_oc3()
        a = HostNetworkInterface(sim, cfg, name="a")
        b = HostNetworkInterface(sim, cfg, name="b")
        vc = VcAddress(0, 77)
        # Contract at 1/4 of the link: an unshaped greedy source
        # violates constantly and every violation gets CLP-tagged.
        gcra = Gcra.for_rate(
            cfg.link.cell_rate / 4.0, tag_nonconforming=True
        )
        # The egress wire runs at half rate, so the port backlog grows
        # and the CLP threshold engages.
        half = LinkSpec("half", cfg.link.payload_rate_bps / 2,
                        cfg.link.payload_rate_bps / 2)
        to_b = PhysicalLink(sim, half, sink=b.rx_input, name="p->b")
        port = OutputPort(
            sim, to_b, buffer_cells=64, clp_threshold=8, name="p"
        )
        switch = AtmSwitch(sim, [port], name="sw")
        switch.add_route(0, vc, RoutingEntry(0, vc.vpi, vc.vci))
        adapter = switch.input(0)

        def police_in(incoming):
            adapter.receive_cell(gcra.police(incoming, sim.now))

        link = PhysicalLink(sim, cfg.link, sink=police_in, name="a->sw")
        a.attach_tx_link(link)
        a.open_vc(address=vc)
        b.open_vc(address=vc)
        GreedySource(sim, a, vc, 4096).start()
        a.start()
        b.start()
        auditor = CellConservationAuditor(
            link, b, switches=[switch], ports=[port], extra_links=[to_b]
        )
        sim.run(until=0.01)

        ledger = auditor.assert_conserved()
        assert gcra.tagged > 0
        assert ledger.clp_discarded > 0
        assert ledger.clp_discarded == port.dropped_clp.count
        # Cells that survived the CLP gauntlet did reach the receiver
        # (the holes they left discard whole frames at reassembly).
        assert to_b.cells_delivered.count > 0
        # Committed (CLP=0) traffic kept the whole buffer: no tail drops.
        assert ledger.port_full_discarded == 0

    def test_abr_rm_cells_stay_in_the_oam_bucket(self, sim):
        """The RM interleave must not unbalance the receive-side books."""
        from repro.nic import connect
        from repro.tm import AbrAgent, AbrParams

        cfg = aurora_oc3()
        a = HostNetworkInterface(sim, cfg, name="a")
        b = HostNetworkInterface(sim, cfg, name="b")
        link_ab, _ = connect(sim, a, b)
        vc = VcAddress(0, 32)
        a.open_vc(address=vc)
        b.open_vc(address=vc)
        src = AbrAgent(sim, a)
        AbrAgent(sim, b)
        src.add_vc(
            vc,
            AbrParams(pcr=cfg.link.cell_rate, icr=cfg.link.cell_rate / 8),
        )
        GreedySource(sim, a, vc, 1528).start()
        a.start()
        b.start()
        auditor = CellConservationAuditor(link_ab, b)
        sim.run(until=0.005)

        ledger = auditor.assert_conserved()
        assert src.rm_sent.count > 0
        assert ledger.oam_cells >= src.rm_sent.count
        assert ledger.delivered > 0
