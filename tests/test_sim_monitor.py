"""Statistics accumulators: numerical behaviour and edge cases."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    Counter,
    Histogram,
    SeriesRecorder,
    Simulator,
    ThroughputMeter,
    TimeWeightedStat,
    WelfordStat,
)
from repro.sim.monitor import summarize


class TestCounter:
    def test_increment(self):
        c = Counter("x")
        c.increment()
        c.increment(4)
        assert c.count == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestWelford:
    def test_mean_and_variance_match_direct_formulas(self):
        data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stat = summarize(data)
        mean = sum(data) / len(data)
        var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert stat.mean == pytest.approx(mean)
        assert stat.variance == pytest.approx(var)
        assert stat.minimum == 2.0
        assert stat.maximum == 9.0

    def test_empty_stat_is_safe(self):
        stat = WelfordStat()
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    def test_single_sample(self):
        stat = summarize([3.0])
        assert stat.mean == 3.0
        assert stat.variance == 0.0

    def test_merge_equals_single_pass(self):
        a_data = [1.0, 2.0, 3.0]
        b_data = [10.0, 20.0]
        merged = summarize(a_data).merge(summarize(b_data))
        direct = summarize(a_data + b_data)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean)
        assert merged.variance == pytest.approx(direct.variance)

    def test_merge_with_empty(self):
        stat = summarize([1.0, 2.0]).merge(WelfordStat())
        assert stat.n == 2
        assert stat.mean == pytest.approx(1.5)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_bounded_by_extremes(self, xs):
        stat = summarize(xs)
        assert min(xs) - 1e-6 <= stat.mean <= max(xs) + 1e-6

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=30),
    )
    def test_merge_commutes_on_count_and_mean(self, xs, ys):
        ab = summarize(xs).merge(summarize(ys))
        ba = summarize(ys).merge(summarize(xs))
        assert ab.n == ba.n
        assert ab.mean == pytest.approx(ba.mean, abs=1e-6)


class TestTimeWeighted:
    def test_piecewise_constant_mean(self):
        stat = TimeWeightedStat(0.0, 0.0)
        stat.record(2.0, 10.0)  # level 0 for 2s
        stat.record(4.0, 0.0)  # level 10 for 2s
        assert stat.mean(4.0) == pytest.approx(5.0)

    def test_mean_extends_last_level(self):
        stat = TimeWeightedStat(0.0, 4.0)
        assert stat.mean(10.0) == pytest.approx(4.0)

    def test_maximum_tracked(self):
        stat = TimeWeightedStat()
        stat.record(1.0, 7.0)
        stat.record(2.0, 3.0)
        assert stat.maximum == 7.0

    def test_time_backwards_rejected(self):
        stat = TimeWeightedStat()
        stat.record(5.0, 1.0)
        with pytest.raises(ValueError):
            stat.record(4.0, 2.0)

    def test_zero_span_returns_current(self):
        stat = TimeWeightedStat(1.0, 9.0)
        assert stat.mean(1.0) == 9.0


class TestHistogram:
    def test_binning(self):
        h = Histogram([0.0, 1.0, 2.0, 3.0])
        for x in (0.5, 1.5, 1.6, 2.9):
            h.add(x)
        assert h.counts == [1, 2, 1]

    def test_under_and_overflow(self):
        h = Histogram([0.0, 1.0])
        h.add(-5.0)
        h.add(10.0)
        h.add(1.0)  # right edge is exclusive -> overflow
        assert h.underflow == 1
        assert h.overflow == 2

    def test_linear_constructor(self):
        h = Histogram.linear(0.0, 10.0, 5)
        assert len(h.edges) == 6
        assert h.edges[1] == pytest.approx(2.0)

    def test_quantile(self):
        h = Histogram.linear(0.0, 100.0, 100)
        for i in range(100):
            h.add(i + 0.5)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=1.5)
        assert h.quantile(0.99) == pytest.approx(99.0, abs=1.5)

    def test_quantile_empty_is_nan(self):
        h = Histogram([0.0, 1.0])
        assert math.isnan(h.quantile(0.5))

    def test_quantile_range_validation(self):
        h = Histogram([0.0, 1.0])
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_edge_validation(self):
        with pytest.raises(ValueError):
            Histogram([1.0])
        with pytest.raises(ValueError):
            Histogram([0.0, 0.0, 1.0])

    def test_nonzero_bins(self):
        h = Histogram([0.0, 1.0, 2.0])
        h.add(1.5)
        assert h.nonzero_bins() == [(1.0, 2.0, 1)]


class TestThroughputMeter:
    def test_rate_computation(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)
        meter.account(1000)
        sim.timeout(2.0)
        sim.run()
        assert meter.bits_per_second() == pytest.approx(4000.0)
        assert meter.megabits_per_second() == pytest.approx(0.004)
        assert meter.units_per_second() == pytest.approx(0.5)

    def test_zero_span_is_zero_rate(self):
        meter = ThroughputMeter(Simulator())
        meter.account(100)
        assert meter.bits_per_second() == 0.0

    def test_negative_bytes_rejected(self):
        meter = ThroughputMeter(Simulator())
        with pytest.raises(ValueError):
            meter.account(-1)


class TestSeriesRecorder:
    def test_record_and_query(self):
        s = SeriesRecorder("occupancy")
        s.record(0.0, 1.0)
        s.record(1.0, 5.0)
        s.record(2.0, 3.0)
        assert len(s) == 3
        assert s.last() == (2.0, 3.0)
        assert s.max_value() == 5.0
        assert s.mean_value() == pytest.approx(3.0)

    def test_time_must_not_decrease(self):
        s = SeriesRecorder()
        s.record(1.0, 0.0)
        with pytest.raises(ValueError):
            s.record(0.5, 0.0)

    def test_empty_series(self):
        s = SeriesRecorder()
        with pytest.raises(IndexError):
            s.last()
        assert math.isnan(s.max_value())
