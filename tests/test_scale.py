"""The scale plane: Testbed declarations, session churn, S1's contract.

Three layers of coverage:

- :class:`TestTestbed` exercises the declarative builder on its own --
  naming, validation errors, dynamic route install/teardown;
- :class:`TestSessionChurn` runs a shrunk churn history through the
  full S1 machinery (signalling, CAC, LRU CAM, ledger) and checks the
  observables hang together, including scalar/fast-path parity;
- :class:`TestMigrationByteIdentity` pins the Testbed migrations of C1
  and R2 against canonical-JSON fixtures captured from the hand-wired
  wiring, and :class:`TestUniformContract` introspects every registered
  ``run_*`` for the ``(config=None, *, seeds=None, fast_path=False)``
  signature shape (see EXPERIMENTS.md).
"""

import inspect
import json
import pathlib

import pytest

from repro.atm.addressing import VcAddress
from repro.net import Testbed as TopologyBuilder
from repro.nic.config import aurora_oc3
from repro.resilience.experiment import run_r2
from repro.results.perf import canonical_result_json
from repro.runner.registry import REGISTRY, SWEEP_IDS
from repro.scale.experiment import _churn_run
from repro.sim.core import SimConfig, Simulator
from repro.tm.experiment import run_c1

DATA = pathlib.Path(__file__).parent / "data"


def _small_churn(seed=1, fast_path=False, **overrides):
    """A churn history small enough for a unit test (~2k sessions/s)."""
    params = dict(
        duration=0.3,
        arrival_rate=400.0,
        holding_time=0.03,
        peak_rate_bps=64000.0,
        pdus_per_session=2,
        sdu_size=256,
        cam_entries=64,
        reassembly_quota=64,
    )
    params.update(overrides)
    return _churn_run(seed, fast_path=fast_path, **params)


class TestTestbed:
    def _two_switch(self):
        tb = TopologyBuilder(default_config=aurora_oc3())
        tb.add_host("a").add_host("b")
        tb.add_switch("sw1").add_switch("sw2")
        tb.link("a", "sw1")
        tb.link("sw1", "sw2", buffer_cells=64, port_name="mid")
        tb.link("sw2", "b", port_name="egress")
        return tb

    def test_build_names_everything(self):
        net = self._two_switch().build(Simulator(SimConfig()))
        assert set(net.hosts) == {"a", "b"}
        assert set(net.switches) == {"sw1", "sw2"}
        assert set(net.links) == {"a->sw1", "sw1->sw2", "sw2->b"}
        assert set(net.ports) == {"mid", "egress"}
        assert net.ports["mid"].buffer_cells == 64

    def test_vc_opens_endpoints_and_routes(self):
        tb = self._two_switch()
        addr = VcAddress(0, 40)
        tb.vc(addr, ["a", "sw1", "sw2", "b"], peak_rate_bps=1e6)
        net = tb.build(Simulator(SimConfig()))
        assert net.hosts["a"].vc_table.lookup(addr) is not None
        assert net.hosts["b"].vc_table.lookup(addr) is not None
        # One route per switch hop, keyed by the resolved input index.
        assert len(net.switches["sw1"]._routes) == 1
        assert len(net.switches["sw2"]._routes) == 1

    def test_dynamic_route_install_and_teardown(self):
        net = self._two_switch().build(Simulator(SimConfig()))
        addr = VcAddress(0, 50)
        path = ["a", "sw1", "sw2", "b"]
        net.add_route(addr, path)
        assert net.switches["sw1"].route_for(0, addr)
        net.remove_route(addr, path)
        assert net.switches["sw1"].route_for(0, addr) is None

    def test_undeclared_hop_raises_at_route_time(self):
        net = self._two_switch().build(Simulator(SimConfig()))
        # No b->sw2 link was declared, so the reverse path has no
        # input index for sw2 and the route helper must say which hop.
        with pytest.raises(KeyError, match="sw2"):
            net.add_route(VcAddress(0, 51), ["b", "sw2", "sw1", "a"])

    def test_duplicate_node_name_rejected(self):
        tb = TopologyBuilder()
        tb.add_host("x")
        with pytest.raises(ValueError, match="duplicate"):
            tb.add_switch("x")

    def test_unknown_node_in_link_rejected(self):
        tb = TopologyBuilder()
        tb.add_host("a")
        with pytest.raises(ValueError, match="unknown node"):
            tb.link("a", "ghost")

    def test_host_double_transmit_link_rejected(self):
        tb = self._two_switch()
        with pytest.raises(ValueError, match="transmit link"):
            tb.link("a", "sw1")

    def test_vc_endpoints_must_be_hosts(self):
        tb = self._two_switch()
        with pytest.raises(ValueError, match="must start and end at hosts"):
            tb.vc(VcAddress(0, 60), ["a", "sw1", "sw2"])

    def test_path_hop_without_link_rejected(self):
        tb = self._two_switch()
        with pytest.raises(ValueError, match="has no link"):
            tb.route(VcAddress(0, 61), ["b", "sw2"])


class TestSessionChurn:
    def test_churn_accounting_hangs_together(self):
        obs = _small_churn()
        assert obs["conserved"] == 1.0
        assert obs["placed"] > 50
        assert obs["released"] > 0
        assert obs["connected"] <= obs["placed"]
        assert (
            obs["connected"] + obs["refused"] + obs["failed"]
            <= obs["placed"]
        )
        assert obs["peak_active"] >= 1

    def test_small_cam_churns_and_accounts_misses(self):
        obs = _small_churn(cam_entries=16)
        roomy = _small_churn(cam_entries=4096)
        assert obs["cam_evictions"] > 0
        assert obs["cam_capacity_misses"] > 0
        assert roomy["cam_evictions"] == 0.0
        assert roomy["cam_capacity_misses"] == 0.0

    def test_registry_cardinality_bounded(self):
        # Hundreds of sessions, O(top-K) metric families: the bound is
        # the point, the constant just needs to be far below the VC
        # population.
        obs = _small_churn()
        assert obs["placed"] > 100
        assert obs["registry_metrics"] < 150

    def test_fast_path_parity_small_scale(self):
        slow = _small_churn(seed=3)
        fast = _small_churn(seed=3, fast_path=True)
        slow.pop("peak_queue_occupancy")
        fast.pop("peak_queue_occupancy")
        assert json.dumps(slow, sort_keys=True) == json.dumps(
            fast, sort_keys=True
        )

    def test_seeds_decorrelate_histories(self):
        a = _small_churn(seed=1)
        b = _small_churn(seed=2)
        assert a != b


class TestMigrationByteIdentity:
    """C1 and R2 on Testbed must reproduce their hand-wired results.

    The fixtures are ``json.loads(canonical_result_json(...))`` captured
    from the pre-migration wiring at the bench-gate parameters; the
    comparison is canonical-JSON equality, i.e. every reported float is
    bit-identical.
    """

    def test_c1_matches_premigration_fixture(self):
        expected = json.loads((DATA / "c1_premigration.json").read_text())
        result = run_c1(seeds=[1, 2], duration=0.06, warmup=0.02)
        assert json.loads(canonical_result_json(result)) == expected

    def test_r2_matches_premigration_fixture(self):
        expected = json.loads((DATA / "r2_premigration.json").read_text())
        result = run_r2(seeds=[1, 2])
        assert json.loads(canonical_result_json(result)) == expected


class TestUniformContract:
    """Every registered run_* honours the uniform experiment contract."""

    @pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
    def test_signature_shape(self, experiment_id):
        sig = inspect.signature(REGISTRY[experiment_id].run)
        params = list(sig.parameters.values())
        first = params[0]
        assert first.name == "config"
        assert first.default is None
        assert first.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.POSITIONAL_ONLY,
        )
        by_name = sig.parameters
        for name in ("seeds", "fast_path"):
            assert name in by_name, f"{experiment_id} lacks {name}"
            assert by_name[name].kind is inspect.Parameter.KEYWORD_ONLY
        assert by_name["seeds"].default is None
        assert by_name["fast_path"].default is False
        # Everything after config is keyword-only with a default, so
        # any experiment can be invoked as run(config) or run().
        for param in params[1:]:
            assert param.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"{experiment_id}: {param.name} is not keyword-only"
            )
            assert param.default is not inspect.Parameter.empty

    @pytest.mark.parametrize("experiment_id", sorted(SWEEP_IDS))
    def test_sweep_ids_take_runner_knobs(self, experiment_id):
        sig = inspect.signature(REGISTRY[experiment_id].run)
        for name in ("workers", "store", "log"):
            assert name in sig.parameters, (
                f"sweep experiment {experiment_id} lacks {name}"
            )
