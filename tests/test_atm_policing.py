"""GCRA policing and leaky-bucket shaping."""

import pytest

from repro.atm import AtmCell, Gcra, LeakyBucketShaper

PAYLOAD = bytes(48)


def cell():
    return AtmCell(vpi=0, vci=100, payload=PAYLOAD)


class TestGcra:
    def test_conforming_stream_at_rate(self):
        gcra = Gcra.for_rate(1000.0)  # T = 1 ms
        for i in range(10):
            assert gcra.conforms(i * 1e-3)
        assert gcra.violating == 0

    def test_early_cell_violates_without_tolerance(self):
        gcra = Gcra.for_rate(1000.0)
        assert gcra.conforms(0.0)
        assert not gcra.conforms(0.5e-3)

    def test_tolerance_admits_bounded_burst(self):
        # tau of 2T admits cells up to two increments early.
        gcra = Gcra(increment=1e-3, tolerance=2e-3)
        assert gcra.conforms(0.0)
        assert gcra.conforms(0.0)  # TAT=1ms, arrival >= TAT - 2ms
        assert gcra.conforms(0.0)  # TAT=2ms
        assert not gcra.conforms(0.0)  # TAT=3ms, 0 < 3ms - 2ms

    def test_violating_cell_does_not_advance_tat(self):
        gcra = Gcra.for_rate(1000.0)
        gcra.conforms(0.0)
        assert not gcra.conforms(0.1e-3)
        # Had the violation advanced TAT, this would fail too.
        assert gcra.conforms(1.0e-3)

    def test_idle_restart(self):
        gcra = Gcra.for_rate(1000.0)
        gcra.conforms(0.0)
        assert gcra.conforms(10.0)  # long idle: TAT reset to arrival

    def test_violation_ratio(self):
        gcra = Gcra.for_rate(1000.0)
        gcra.conforms(0.0)
        gcra.conforms(0.0001)
        assert gcra.violation_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gcra(increment=0.0)
        with pytest.raises(ValueError):
            Gcra(increment=1.0, tolerance=-1.0)
        with pytest.raises(ValueError):
            Gcra.for_rate(0.0)


class TestShaper:
    def test_output_is_gcra_conformant(self, sim):
        releases = []
        shaper = LeakyBucketShaper(
            sim, cells_per_second=10_000.0, sink=lambda c: releases.append(sim.now)
        )
        for _ in range(20):
            shaper.offer(cell())
        sim.run()
        gcra = Gcra.for_rate(10_000.0, tolerance=1e-12)
        assert all(gcra.conforms(t) for t in releases)
        assert len(releases) == 20

    def test_spacing_equals_increment(self, sim):
        releases = []
        shaper = LeakyBucketShaper(
            sim, cells_per_second=1000.0, sink=lambda c: releases.append(sim.now)
        )
        for _ in range(4):
            shaper.offer(cell())
        sim.run()
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert gaps == pytest.approx([1e-3, 1e-3, 1e-3])

    def test_queue_overflow_drops(self, sim):
        shaper = LeakyBucketShaper(
            sim, cells_per_second=1000.0, sink=lambda c: None, queue_cells=3
        )
        results = [shaper.offer(cell()) for _ in range(10)]
        assert results.count(False) == 7
        assert shaper.dropped.count == 7

    def test_idle_then_burst_restarts_clean(self, sim):
        releases = []
        shaper = LeakyBucketShaper(
            sim, cells_per_second=1000.0, sink=lambda c: releases.append(sim.now)
        )

        def driver():
            shaper.offer(cell())
            yield sim.timeout(0.5)
            shaper.offer(cell())

        sim.process(driver())
        sim.run()
        assert releases[1] == pytest.approx(0.5)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            LeakyBucketShaper(sim, cells_per_second=0.0, sink=lambda c: None)
        with pytest.raises(ValueError):
            LeakyBucketShaper(
                sim, cells_per_second=1.0, sink=lambda c: None, queue_cells=0
            )
