"""SL2 fixtures: magic cycle literals at charge and profiler sites."""


def burn(clock, costs, profiler):
    """Charge sites with literals (flagged) and named fields (clean)."""
    clock.work(16, tag="tx.header")  # SL201: magic literal
    clock.charge(costs.tx_header + 4, tag="tx.header")  # SL201: literal term
    clock.work(costs.tx_header, tag="tx.header")  # clean: named field

    profiler.record_ops("tx", {"header": 21.0})  # SL202: literal op cost
    profiler.record_ops("tx", {"header": costs.tx_header})  # clean

    # simlint: disable=SL201 -- fixture shows a reasoned cost-site waiver
    clock.work(2, tag="tx.slack")
