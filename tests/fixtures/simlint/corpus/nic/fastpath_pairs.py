"""SL7 fixtures: scalar/burst pairs that drift, waive, and match.

The ToyEngine pair drifts in every effect kind (SL701, SL702 twice,
SL703 -- all anchored at the burst def); WaivedEngine carries a
reasoned SL7 waiver; one registry entry names a function that does not
exist (SL704 at the declaration); ``drain_burst`` is an unpaired
fast-path entry point (SL704 at its def) with a waived twin below;
``charge_off_table`` books a cost field missing from the toy budget
table (SL204 direction B), with a waived twin below.  The AdmitEngine
pair at the bottom is the clean reference and must stay LAST in this
file: the deletion tests remove single effect lines from
``admit_burst`` and expect exactly one new SL7 finding, with every
other corpus finding's line number unmoved.
"""

PATH_PAIRS = [
    {
        "scalar": "ToyEngine.consume_cell",
        "burst": "ToyEngine.consume_burst",
        "why": "drifted pair: the burst lane lost a stat, a drop and a charge",
    },
    {
        "scalar": "WaivedEngine.emit_cell",
        "burst": "WaivedEngine.emit_burst",
        "why": "drifted pair carrying a reasoned waiver at the burst def",
    },
    {
        "scalar": "ToyEngine.ghost_cell",
        "burst": "ToyEngine.consume_burst",
        "why": "registry rot: the scalar side does not exist (SL704)",
    },
    {
        "scalar": "AdmitEngine.admit_cell",
        "burst": "AdmitEngine.admit_burst",
        "why": "the clean reference pair: effect sets match exactly",
    },
]


class ToyEngine:
    """Scalar/burst pair drifted in every effect kind."""

    def __init__(self, clock, trace, costs: ToyCostModel) -> None:
        self.clock = clock
        self.trace = trace
        self.costs = costs
        self.name = "toy"

    def consume_cell(self, cell):
        """Scalar reference lane: count, drop-account, charge both words."""
        self.cells_seen.increment()
        self.cells_counted.increment()  # SL701: the burst lane never counts
        self.trace.emit("x.test.event", actor=self.name, cell=cell)
        self.trace.emit(  # SL702 twice: drop event and reason are one-sided
            "cell.drop", actor=self.name, cell=cell, reason="stray_alpha"
        )
        self.clock.charge(
            self.costs.header_word + self.costs.trailer_word, tag="toy.cell"
        )  # SL703: the burst lane forgot trailer_word

    def consume_burst(self, burst):
        """Burst lane: drifted -- missing a stat, the drop, and a charge."""
        for cell in burst.cells:
            self.cells_seen.increment()
            self.trace.emit("x.test.event", actor=self.name, cell=cell)
            self.clock.charge(self.costs.header_word, tag="toy.cell")


class WaivedEngine:
    """The same drift shape as ToyEngine, carrying a reasoned waiver."""

    def __init__(self, clock, trace) -> None:
        self.clock = clock
        self.trace = trace

    def emit_cell(self, cell):
        """Scalar lane: books a stat its burst twin never mirrors."""
        self.events_out.increment()
        self.waived_stat.increment()
        self.trace.emit("x.test.event", actor="waived", cell=cell)

    # simlint: disable=SL7 -- fixture shows a reasoned dual-path waiver
    def emit_burst(self, burst):
        """Burst lane: the missing waived_stat is suppressed above."""
        for cell in burst.cells:
            self.events_out.increment()
            self.trace.emit("x.test.event", actor="waived", cell=cell)


def drain_burst(fifo, trace):
    """An undeclared burst handler: no pair, not reachable from one."""
    while fifo.try_get() is not None:
        trace.emit("x.test.event", actor="drain")


# simlint: disable=SL704 -- fixture shows a reasoned unpaired-handler waiver
def flush_burst(fifo):
    """An undeclared burst handler carrying a reasoned waiver."""
    while fifo.try_get() is not None:
        pass


def charge_off_table(clock, costs):
    """Books a cost field the toy budget table never lists (SL204)."""
    clock.charge(costs.secret_op, tag="toy.secret")


def charge_waived(clock, costs):
    """The same budget drift, carrying a reasoned SL204 waiver."""
    # simlint: disable=SL204 -- fixture shows a reasoned budget-drift waiver
    clock.charge(costs.hidden_op, tag="toy.hidden")


class AdmitEngine:
    """The clean reference pair: both lanes reach identical effect sets."""

    def __init__(self, clock, trace, costs: ToyCostModel) -> None:
        self.clock = clock
        self.trace = trace
        self.costs = costs

    def admit_cell(self, cell):
        """Scalar admission: one stat, one event, one charge per cell."""
        self.cells_admitted.increment()
        self.trace.emit("x.test.event", actor="admit", cell=cell)
        self.clock.charge_at(self.costs.header_word, "toy.admit", 0.0)

    def admit_burst(self, burst):
        """Burst admission: replays the scalar accounting per cell."""
        for cell in burst.cells:
            self.cells_admitted.increment()
            self.trace.emit("x.test.event", actor="admit", cell=cell)
            self.clock.charge_at(self.costs.header_word, "toy.admit", 0.0)
