"""Corpus-local cost model: the SL204 cross-check target.

``ghost_op`` sits in the breakdown table but is charged nowhere (the
direction-A finding lands on ``breakdown``); ``secret_op`` and
``hidden_op`` are charged in ``fastpath_pairs.py`` but have no table
row (direction B lands on the charge sites).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ToyCostModel:
    """Per-operation cycle budgets for the toy engines."""

    header_word: int = 4
    trailer_word: int = 9
    secret_op: int = 7
    ghost_op: int = 5
    hidden_op: int = 3

    def breakdown(self):
        """The toy T1 table: ``ghost_op`` is a dead budget row (SL204)."""
        return {
            "header_word": self.header_word,
            "trailer_word": self.trailer_word,
            "ghost_op": self.ghost_op,
        }
