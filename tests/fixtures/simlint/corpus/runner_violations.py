"""SL6 fixtures: worker identity leaking into sweep execution."""

import os
from multiprocessing import current_process

from sim.random import RandomStreams


def identity_reads():
    """SL601: reading the worker's identity inside a kernel."""
    who = os.getpid()
    name = current_process().name
    return who, name


def seeded_from_pid():
    """SL602 (and SL601): folding the pid into an RNG seed."""
    return RandomStreams(os.getpid() * 1000)


def seeded_from_pool_slot(worker_id):
    """SL602: seeding from the pool slot the executor assigned."""
    return RandomStreams(seed=worker_id)


def sanctioned_diagnostic():
    """A reviewed exception, silenced with a reasoned suppression."""
    # simlint: disable=SL601 -- fixture demonstrates a reasoned waiver
    return os.getpid()
