"""SL1 fixtures: unsanctioned entropy, plus sanctioned suppressions."""

import os
import random
import time
from datetime import datetime


def fresh_generator():
    """SL101: a private random.Random outside sim/random.py."""
    return random.Random(42)


def module_level_draw():
    """SL102: drawing from the shared module-level generator."""
    return random.random()


def wall_clock_stamp():
    """SL103: wall-clock and entropy reads."""
    stamp = time.time()
    noise = os.urandom(4)
    born = datetime.now()
    return stamp, noise, born


def measured_generator():
    """A reviewed exception, silenced with a reasoned suppression."""
    # simlint: disable=SL101 -- fixture demonstrates a reasoned line suppression
    rng = random.Random(7)
    return rng.randint(0, 9)


def stale_waiver():
    """SL001: the suppression below matches no finding and is reported."""
    # simlint: disable=SL103 -- deliberately unused, to exercise SL001
    return 0


def perf_timing():
    """time.perf_counter is explicitly allowed (it never enters sim state)."""
    return time.perf_counter()
