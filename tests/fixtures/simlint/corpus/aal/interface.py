"""Corpus-local reassembly-failure taxonomy for the SL303 cross-check."""

import enum


class ReassemblyFailure(enum.Enum):
    """Why a corpus PDU was discarded."""

    BAD_CRC = "bad_crc"
