"""A clean recovery-plane emitter: every event is in the taxonomy.

SL301 cross-checks ``trace.emit`` names against the corpus
``EVENT_TAXONOMY``; this file emits only declared ``oam.*`` /
``link.*`` / ``sig.*`` names, so it must produce zero findings --
the green half of the SL3 fixtures for the fault-management family.
"""

from obs.trace import TraceRecorder


class CorpusSupervisor:
    """Emits the declared recovery-plane events and nothing else."""

    def __init__(self):
        self.trace = TraceRecorder()

    def declare_loc(self):
        self.trace.emit("oam.cc.loc", actor="sup", silence=7e-4)
        self.trace.emit("oam.alarm.raised", actor="sup", kind="rdi")

    def transition(self, old, new):
        self.trace.emit(
            "link.supervisor.state",
            actor="sup",
            from_state=old,
            to_state=new,
        )

    def retransmit(self, call_ref, attempt):
        self.trace.emit(
            "sig.retransmit",
            actor="sig",
            call_ref=call_ref,
            attempt=attempt,
        )
