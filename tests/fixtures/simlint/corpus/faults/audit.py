"""Corpus-local conservation ledger: the SL303 cross-check target.

``stray_alpha`` has a field here (so that drop reason is fully
accounted); ``cosmic_ray`` deliberately has none.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ConservationLedger:
    """A two-bucket toy ledger."""

    offered: int
    stray_alpha: int
    delivered: int
