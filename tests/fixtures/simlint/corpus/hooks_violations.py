"""SL5 fixtures: hook call sites checked against the installed shapes."""


def observe(trace, profiler, cell, ops):
    """Hook sites: wrong shapes flagged, conforming ones clean."""
    trace.emit("x.test.event", actor="fixture", cell=cell)  # clean
    trace.snapshot(cell)  # SL501: TraceRecorder has no such method

    profiler.record_cell("tx", "header", ops)  # clean
    profiler.record_cell("tx", "header", ops, ops, "extra")  # SL502: too many positional
    profiler.record_pdu("tx", ops, stage="sar")  # SL502: unknown keyword
    profiler.record_oam()  # SL502: missing required 'ops'

    # simlint: disable=SL501 -- prototype hook not yet in TraceRecorder
    trace.replay_window(10)
