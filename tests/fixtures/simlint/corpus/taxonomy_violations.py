"""SL3 fixtures: events and drop reasons checked against corpus tables."""


def narrate(trace, recorder, cell):
    """Emit sites: unknown names flagged, declared names clean."""
    trace.emit("x.test.event", actor="fixture")  # clean: declared
    trace.emit("x.test.mystery", actor="fixture")  # SL301: not in taxonomy

    recorder.emit("cell.drop", reason="stray_alpha", cell=cell)  # clean
    recorder.emit("cell.drop", cell=cell)  # SL302: drop without a reason
    recorder.emit("cell.drop", reason="gremlins", cell=cell)  # SL302: undeclared
    recorder.emit("pdu.drop", reason="cosmic_ray")  # SL303: no ledger bucket

    # simlint: disable=SL301 -- experimental event pending taxonomy entry
    trace.emit("x.test.prototype", actor="fixture")
