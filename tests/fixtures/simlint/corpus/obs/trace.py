"""Corpus-local taxonomy tables: a deliberately small universe.

The linter extracts its conformance tables from the tree being
scanned, so this corpus ships its own ``obs/trace.py``.  The tables
are chosen to exercise every SL3 verdict: ``x.test.event`` exists,
``cell.drop``/``pdu.drop`` exist, ``stray_alpha`` is a declared drop
reason *with* a ledger bucket, and ``cosmic_ray`` is a declared drop
reason *without* one (the SL303 case).
"""

EVENT_TAXONOMY = {
    "x.test.event": "an event the corpus pipeline may emit",
    "cell.drop": "a cell died; 'reason' names the cause",
    "pdu.drop": "a PDU died; 'reason' names the cause",
    # Recovery-plane mirror: the corpus twin of the real taxonomy's
    # oam.*/link.*/sig.* family, exercised by resilience_events.py.
    "oam.cc.loc": "continuity-check silence window elapsed",
    "oam.alarm.raised": "a defect started repeating alarm cells",
    "link.supervisor.state": "the supervised link changed state",
    "sig.retransmit": "a signalling message was re-sent on backoff",
    # Traffic-management mirror: the corpus twin of the real taxonomy's
    # rm.*/abr.*/port.*/cac.* family, exercised by tm_events.py.
    "rm.cell.sent": "an ABR source emitted a forward RM cell",
    "rm.cell.marked": "a switch stamped an explicit rate in transit",
    "rm.cell.turnaround": "a destination reflected a forward RM cell",
    "abr.rate.update": "an ABR source moved its allowed cell rate",
    "port.efci": "an output port set EFCI under queue pressure",
    "cac.reject": "call admission refused a traffic contract",
}

DROP_REASONS = {
    "stray_alpha": "mirrored by the corpus ledger",
    "cosmic_ray": "declared here but absent from the corpus ledger",
    "bad_crc": "a reassembly verdict of the corpus taxonomy",
}


class TraceRecorder:
    """Shape-compatible stand-in for repro.obs.trace.TraceRecorder."""

    def emit(
        self,
        name,
        actor="",
        cell=None,
        cell_id=None,
        pdu_id=None,
        vc=None,
        **args,
    ):
        """Record one event."""

    def tag_cell(self, cell):
        """Assign the cell's trace identity."""
