"""SL503 fixtures: the instrument() dispatch table must cover every
top-level ``_instrument_*`` defined next to it."""


def _instrument_widget(registry, obj, prefix=""):
    """Dispatched: listed in INSTRUMENT_DISPATCH below."""


def _instrument_orphan(registry, obj, prefix=""):  # SL503: not dispatched
    """Defined but unreachable through instrument()."""


# simlint: disable=SL503 -- staged instrumenter, wired in a later change
def _instrument_staged(registry, obj, prefix=""):
    """Suppressed: intentionally not yet in the table."""


INSTRUMENT_DISPATCH = {
    "Widget": _instrument_widget,
}


def instrument(registry, obj, prefix=""):
    """Corpus twin of repro.obs.metrics.instrument."""
    target = INSTRUMENT_DISPATCH.get(type(obj).__name__)
    if target is None:
        raise TypeError(type(obj).__name__)
    target(registry, obj, prefix=prefix)
