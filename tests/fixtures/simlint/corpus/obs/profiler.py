"""Corpus-local profiler: the canonical hook shapes for SL5 checks."""


class CycleProfiler:
    """Shape-compatible stand-in for repro.obs.profiler.CycleProfiler."""

    def record_cell(self, engine, position, ops, extra=0.0):
        """One cell executed."""

    def record_pdu(self, engine, ops):
        """Once-per-PDU overhead executed."""

    def record_ops(self, engine, ops):
        """Cycles outside any cell/PDU budget."""

    def record_oam(self, ops):
        """One management cell handled."""
