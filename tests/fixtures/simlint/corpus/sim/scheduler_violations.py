"""SL104/SL4 fixtures: nondeterministic iteration and sim-time hygiene."""

import time


def drain(ready):
    """SL104: iterating a bare set decides event order by hash seed."""
    out = []
    for actor in {"tx", "rx", "host"}:
        out.append(actor)
    for waiter in ready:  # a list parameter: not flagged
        out.append(waiter)
    return out


def deadline_hit(event, now):
    """SL401: exact float equality on simulated timestamps."""
    return event.ts == now


def deadline_hit_tolerant(event, now, eps=1e-9):
    """The sanctioned comparison: an epsilon window, not equality."""
    return abs(event.ts - now) <= eps


def pace(delay):
    """SL402: a wall-clock sleep inside the simulated world."""
    time.sleep(delay)


def pinned_order(ready):
    """Suppressed SL104: a reviewed singleton set."""
    # simlint: disable=SL104 -- singleton set, order cannot vary
    for only in {"arbiter"}:
        return only
    return None
