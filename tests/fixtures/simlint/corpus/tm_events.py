"""A clean traffic-management emitter: every event is in the taxonomy.

SL301 cross-checks ``trace.emit`` names against the corpus
``EVENT_TAXONOMY``; this file emits only declared ``rm.*`` / ``abr.*``
/ ``port.*`` / ``cac.*`` names, so it must produce zero findings --
the green half of the SL3 fixtures for the traffic-management family.
"""

from obs.trace import TraceRecorder


class CorpusAbrLoop:
    """Emits the declared traffic-management events and nothing else."""

    def __init__(self):
        self.trace = TraceRecorder()

    def send_rm(self, cell, ccr):
        self.trace.emit("rm.cell.sent", actor="abr", cell=cell, ccr=ccr)

    def stamp(self, cell, er):
        self.trace.emit("rm.cell.marked", actor="sw", cell=cell, er=er)

    def turn_around(self, cell, ci):
        self.trace.emit(
            "rm.cell.turnaround",
            actor="abr",
            cell=cell,
            ci=ci,
        )
        self.trace.emit("abr.rate.update", actor="abr", acr=1000.0)

    def mark_efci(self, cell, backlog):
        self.trace.emit("port.efci", actor="port", cell=cell, queue=backlog)

    def refuse(self, call_ref, cause):
        self.trace.emit(
            "cac.reject",
            actor="cac",
            call_ref=call_ref,
            cause=cause,
        )
