"""AAL3/4 SAR and CPCS: framing, MID interleaving, error procedures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aal import Aal34Reassembler, Aal34Segmenter, SarSegmentType
from repro.aal.aal34 import (
    CpcsFormatError,
    CpcsTagError,
    SarCrcError,
    build_cpcs_pdu_34,
    decode_sar_pdu,
    encode_sar_pdu,
    parse_cpcs_pdu_34,
)
from repro.aal.interface import AalError, ReassemblyFailure
from repro.atm import AtmCell, VcAddress

VC = VcAddress(0, 100)


class TestSarPdu:
    def test_roundtrip(self):
        pdu = encode_sar_pdu(SarSegmentType.BOM, 3, 512, b"payload")
        st_, sn, mid, payload = decode_sar_pdu(pdu)
        assert (st_, sn, mid, payload) == (SarSegmentType.BOM, 3, 512, b"payload")

    def test_always_48_bytes(self):
        for size in (0, 1, 44):
            assert len(encode_sar_pdu(SarSegmentType.COM, 0, 0, b"x" * size)) == 48

    def test_crc_detects_any_flip(self):
        pdu = bytearray(encode_sar_pdu(SarSegmentType.EOM, 1, 2, b"data"))
        pdu[20] ^= 0x10
        with pytest.raises(SarCrcError):
            decode_sar_pdu(bytes(pdu))

    def test_field_ranges(self):
        with pytest.raises(AalError):
            encode_sar_pdu(SarSegmentType.BOM, 16, 0, b"")
        with pytest.raises(AalError):
            encode_sar_pdu(SarSegmentType.BOM, 0, 1024, b"")
        with pytest.raises(AalError):
            encode_sar_pdu(SarSegmentType.BOM, 0, 0, b"x" * 45)

    def test_decode_wrong_length(self):
        with pytest.raises(AalError):
            decode_sar_pdu(b"\x00" * 47)

    @given(
        st.sampled_from(list(SarSegmentType)),
        st.integers(0, 15),
        st.integers(0, 1023),
        st.binary(max_size=44),
    )
    def test_roundtrip_property(self, st_, sn, mid, payload):
        decoded = decode_sar_pdu(encode_sar_pdu(st_, sn, mid, payload))
        assert decoded == (st_, sn, mid, payload)


class TestCpcs34:
    def test_roundtrip(self):
        assert parse_cpcs_pdu_34(build_cpcs_pdu_34(b"hello", 7)) == b"hello"

    def test_four_byte_alignment(self):
        for size in range(0, 9):
            assert len(build_cpcs_pdu_34(b"x" * size, 0)) % 4 == 0

    def test_tag_mismatch_detected(self):
        pdu = bytearray(build_cpcs_pdu_34(b"data", 5))
        pdu[-3] ^= 0xFF  # ETag
        with pytest.raises(CpcsTagError):
            parse_cpcs_pdu_34(bytes(pdu))

    def test_length_mismatch_detected(self):
        pdu = bytearray(build_cpcs_pdu_34(b"data", 5))
        pdu[-1] ^= 0x01  # Length low byte
        with pytest.raises(CpcsFormatError):
            parse_cpcs_pdu_34(bytes(pdu))

    def test_malformed_length(self):
        with pytest.raises(CpcsFormatError):
            parse_cpcs_pdu_34(b"\x00" * 7)


class TestSegmentation:
    def test_single_cell_uses_ssm(self):
        cells = Aal34Segmenter(VC).segment(b"tiny")
        assert len(cells) == 1
        st_, _sn, _mid, _p = decode_sar_pdu(cells[0].payload)
        assert st_ is SarSegmentType.SSM

    def test_multi_cell_structure(self):
        cells = Aal34Segmenter(VC).segment(b"x" * 200)
        types = [decode_sar_pdu(c.payload)[0] for c in cells]
        assert types[0] is SarSegmentType.BOM
        assert types[-1] is SarSegmentType.EOM
        assert all(t is SarSegmentType.COM for t in types[1:-1])

    def test_sequence_numbers_increment_mod_16(self):
        cells = Aal34Segmenter(VC).segment(b"x" * 44 * 20)
        sns = [decode_sar_pdu(c.payload)[1] for c in cells]
        assert sns == [i % 16 for i in range(len(sns))]

    def test_btag_increments_per_pdu(self):
        seg = Aal34Segmenter(VC)
        first = seg.segment(b"a" * 100)
        second = seg.segment(b"b" * 100)
        cpcs1 = b"".join(decode_sar_pdu(c.payload)[3] for c in first)
        cpcs2 = b"".join(decode_sar_pdu(c.payload)[3] for c in second)
        assert cpcs2[1] == (cpcs1[1] + 1) % 256

    def test_mid_validation(self):
        with pytest.raises(AalError):
            Aal34Segmenter(VC, mid=2000)


class TestReassembly:
    @pytest.mark.parametrize("size", [0, 1, 43, 44, 45, 88, 500, 9180])
    def test_roundtrip(self, size):
        seg, ras = Aal34Segmenter(VC, mid=3), Aal34Reassembler()
        sdu = bytes(i % 250 for i in range(size))
        out = None
        for cell in seg.segment(sdu):
            out = ras.receive_cell(cell)
        assert out is not None
        assert out.sdu == sdu
        assert out.mid == 3

    def test_mid_interleaving_on_one_vc(self):
        seg_a = Aal34Segmenter(VC, mid=1)
        seg_b = Aal34Segmenter(VC, mid=2)
        ras = Aal34Reassembler()
        cells_a = seg_a.segment(b"A" * 400)
        cells_b = seg_b.segment(b"B" * 300)
        interleaved = []
        for i in range(max(len(cells_a), len(cells_b))):
            if i < len(cells_a):
                interleaved.append(cells_a[i])
            if i < len(cells_b):
                interleaved.append(cells_b[i])
        results = {}
        for cell in interleaved:
            out = ras.receive_cell(cell)
            if out:
                results[out.mid] = out.sdu
        assert results == {1: b"A" * 400, 2: b"B" * 300}

    def test_lost_com_poisons_until_eom(self):
        seg, ras = Aal34Segmenter(VC), Aal34Reassembler()
        cells = seg.segment(b"x" * 400)
        for cell in cells[:3] + cells[4:]:
            assert ras.receive_cell(cell) is None
        assert ras.stats.failure_count(ReassemblyFailure.SEQUENCE) == 1
        # Next PDU is clean.
        out = None
        for cell in seg.segment(b"clean"):
            out = ras.receive_cell(cell)
        assert out is not None and out.sdu == b"clean"

    def test_lost_bom_orphans_segments(self):
        seg, ras = Aal34Segmenter(VC), Aal34Reassembler()
        cells = seg.segment(b"x" * 200)
        for cell in cells[1:]:
            assert ras.receive_cell(cell) is None
        assert ras.stats.cells_orphaned == len(cells) - 1

    def test_lost_eom_then_new_bom_discards_old(self):
        seg, ras = Aal34Segmenter(VC), Aal34Reassembler()
        first = seg.segment(b"a" * 200)[:-1]
        for cell in first:
            ras.receive_cell(cell)
        out = None
        for cell in seg.segment(b"b" * 100):
            out = ras.receive_cell(cell)
        assert out is not None and out.sdu == b"b" * 100
        assert ras.stats.failure_count(ReassemblyFailure.PROTOCOL) == 1

    def test_corrupted_cell_is_orphaned(self):
        seg, ras = Aal34Segmenter(VC), Aal34Reassembler()
        cells = seg.segment(b"x" * 300)
        bad = bytearray(cells[2].payload)
        bad[10] ^= 0x04
        cells[2] = AtmCell(vpi=VC.vpi, vci=VC.vci, payload=bytes(bad))
        for cell in cells:
            ras.receive_cell(cell)
        assert ras.stats.cells_orphaned == 1
        # The stream notices the hole via the SN when the next cell lands.
        assert ras.stats.failure_count(ReassemblyFailure.SEQUENCE) == 1

    def test_abort_context(self):
        seg, ras = Aal34Segmenter(VC, mid=5), Aal34Reassembler()
        for cell in seg.segment(b"x" * 200)[:-1]:
            ras.receive_cell(cell)
        assert ras.active_contexts() == 1
        assert ras.abort_context(VC, 5, ReassemblyFailure.TIMEOUT)
        assert ras.active_contexts() == 0

    def test_per_cell_overhead_is_four_bytes(self):
        # 44 payload bytes per 48-byte cell: the efficiency cost vs AAL5.
        seg = Aal34Segmenter(VC)
        cells = seg.segment(b"x" * 440)
        # 440 + 8 CPCS = 448 -> ceil(448/44) = 11 cells (AAL5 would use 10).
        assert len(cells) == 11

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=1500), st.integers(0, 1023))
    def test_roundtrip_property(self, sdu, mid):
        seg, ras = Aal34Segmenter(VC, mid=mid), Aal34Reassembler()
        out = None
        for cell in seg.segment(sdu):
            out = ras.receive_cell(cell)
        assert out is not None and out.sdu == sdu and out.mid == mid
