"""Random stream discipline: reproducibility and independence."""

import pytest

from repro.sim import RandomStreams


class TestStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RandomStreams(seed=7).stream("traffic")
        b = RandomStreams(seed=7).stream("traffic")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams()
        assert streams.stream("x") is streams.stream("x")

    def test_adding_consumer_does_not_perturb_existing(self):
        first = RandomStreams(seed=3)
        seq_before = [first.stream("loss").random() for _ in range(3)]

        second = RandomStreams(seed=3)
        second.stream("new-consumer").random()  # extra consumer
        seq_after = [second.stream("loss").random() for _ in range(3)]
        assert seq_before == seq_after


class TestDraws:
    def test_exponential_positive_and_mean(self):
        streams = RandomStreams(seed=1)
        draws = [streams.exponential("e", 2.0) for _ in range(4000)]
        assert all(d >= 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)

    def test_exponential_mean_validation(self):
        with pytest.raises(ValueError):
            RandomStreams().exponential("e", 0.0)

    def test_bernoulli_extremes(self):
        streams = RandomStreams()
        assert not streams.bernoulli("b", 0.0)
        assert streams.bernoulli("b", 1.0)
        with pytest.raises(ValueError):
            streams.bernoulli("b", 1.5)

    def test_bernoulli_rate(self):
        streams = RandomStreams(seed=5)
        hits = sum(streams.bernoulli("b", 0.25) for _ in range(8000))
        assert hits / 8000 == pytest.approx(0.25, abs=0.03)

    def test_choice_validation(self):
        with pytest.raises(ValueError):
            RandomStreams().choice("c", [])

    def test_weighted_choice(self):
        streams = RandomStreams(seed=9)
        draws = [
            streams.weighted_choice("w", ["a", "b"], [0.9, 0.1])
            for _ in range(2000)
        ]
        assert draws.count("a") > draws.count("b")

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            RandomStreams().weighted_choice("w", ["a"], [1.0, 2.0])

    def test_shuffled_returns_permutation(self):
        streams = RandomStreams(seed=2)
        items = list(range(20))
        shuffled = streams.shuffled("s", items)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely with 20 items

    def test_fork_is_independent_and_deterministic(self):
        parent = RandomStreams(seed=4)
        child1 = parent.fork("worker")
        child2 = RandomStreams(seed=4).fork("worker")
        assert child1.stream("x").random() == child2.stream("x").random()
        assert (
            parent.stream("x").random()
            != RandomStreams(seed=4).fork("worker").stream("x").random()
        )
