"""Fault-management plane: alarms, supervision, timers, restoration."""

import pytest

from repro.atm import AtmCell, VcAddress
from repro.atm.errors import ScheduledLoss, UniformLoss
from repro.atm.oam import (
    AIS,
    RDI,
    AlarmCell,
    ContinuityCell,
    ContinuityCheckSink,
    ContinuityCheckSource,
    LoopbackCell,
    OamFormatError,
    decode_oam,
)
from repro.atm.signalling import (
    CallRefused,
    CallState,
    CallTimeout,
    SignallingAgent,
    SignallingTimers,
    backoff_schedule,
)
from repro.faults import FaultCampaign, CampaignSpec, LinkFlapPlan, PLAN_PRESETS
from repro.nic import HostNetworkInterface, OamPingTimeout, aurora_oc3, connect
from repro.resilience import (
    OAM_MGMT_VC,
    CallRestorer,
    LinkState,
    LinkSupervisor,
    SupervisorConfig,
)
from repro.sim.random import RandomStreams


# -- OAM alarm / continuity codecs ------------------------------------------


class TestAlarmCodec:
    @pytest.mark.parametrize("kind", [AIS, RDI])
    def test_roundtrip(self, kind):
        original = AlarmCell(
            vc=VcAddress(0, 44), kind=kind, source_id=b"workstation1"
        )
        cell = original.encode()
        assert not cell.is_user_cell
        assert AlarmCell.decode(cell) == original

    def test_cc_roundtrip(self):
        original = ContinuityCell(
            vc=VcAddress(0, 4), sequence=12345, source_id=b"supervisor-a"
        )
        assert ContinuityCell.decode(original.encode()) == original

    def test_decode_oam_dispatch(self):
        loop = LoopbackCell(VcAddress(0, 1), 7, True).encode()
        alarm = AlarmCell(VcAddress(0, 1), RDI).encode()
        cc = ContinuityCell(VcAddress(0, 1), 3).encode()
        assert isinstance(decode_oam(loop), LoopbackCell)
        assert isinstance(decode_oam(alarm), AlarmCell)
        assert isinstance(decode_oam(cc), ContinuityCell)

    def test_decode_oam_rejects_unknown_type(self):
        cell = AlarmCell(VcAddress(0, 1), AIS).encode()
        payload = bytearray(cell.payload)
        payload[0] = 0x3F  # not a fault-management type byte
        bad = AtmCell(
            vpi=cell.vpi, vci=cell.vci, payload=bytes(payload), pti=cell.pti
        )
        with pytest.raises(OamFormatError):
            decode_oam(bad)

    def test_crc_protects_alarm_payload(self):
        cell = AlarmCell(VcAddress(0, 1), RDI).encode()
        payload = bytearray(cell.payload)
        payload[8] ^= 0x40
        bad = AtmCell(
            vpi=cell.vpi, vci=cell.vci, payload=bytes(payload), pti=cell.pti
        )
        with pytest.raises(OamFormatError):
            AlarmCell.decode(bad)


# -- continuity check timing ------------------------------------------------


class TestContinuityCheck:
    def test_loc_declared_one_silence_window_after_last_cell(self, sim):
        events = []
        sink = ContinuityCheckSink(
            sim,
            silence=7e-4,
            on_loc=lambda now: events.append(("loc", now)),
            on_resume=lambda now: events.append(("resume", now)),
        )
        sink.start()

        def feed():
            for _ in range(5):
                sink.observe(ContinuityCell(VcAddress(0, 4), 0))
                yield sim.timeout(2e-4)

        sim.process(feed())
        sim.run(until=5e-3)
        assert [kind for kind, _ in events] == ["loc"]
        # Last heartbeat lands at t=8e-4; LOC exactly one window later.
        assert events[0][1] == pytest.approx(8e-4 + 7e-4)

    def test_resume_after_loc(self, sim):
        events = []
        sink = ContinuityCheckSink(
            sim,
            silence=5e-4,
            on_loc=lambda now: events.append("loc"),
            on_resume=lambda now: events.append("resume"),
        )
        sink.start()

        def feed():
            sink.observe(ContinuityCell(VcAddress(0, 4), 0))
            yield sim.timeout(2e-3)  # well past the window
            while sim.now < 4e-3:  # steady heartbeats after the gap
                sink.observe(ContinuityCell(VcAddress(0, 4), 1))
                yield sim.timeout(2e-4)

        sim.process(feed())
        sim.run(until=4e-3)
        assert events == ["loc", "resume"]
        assert sink.loc_events == 1
        assert sink.resumptions == 1

    def test_source_paces_and_wraps_sequence(self, sim):
        sent = []
        source = ContinuityCheckSource(
            sim, inject=sent.append, vc=OAM_MGMT_VC, period=1e-4
        )
        source.start()
        sim.run(until=1.05e-3)
        source.stop()
        assert len(sent) == 11  # t=0 inclusive, every 100 us
        decoded = [ContinuityCell.decode(c) for c in sent]
        assert [c.sequence for c in decoded] == list(range(11))
        assert all(c.vc == OAM_MGMT_VC for c in decoded)


# -- signalling timers ------------------------------------------------------


class TestBackoffSchedule:
    def test_deterministic_from_stream_seed(self):
        timers = SignallingTimers()
        one = backoff_schedule(
            timers, timers.t303, RandomStreams(7).stream("sig.backoff")
        )
        two = backoff_schedule(
            timers, timers.t303, RandomStreams(7).stream("sig.backoff")
        )
        other = backoff_schedule(
            timers, timers.t303, RandomStreams(8).stream("sig.backoff")
        )
        assert one == two
        assert one != other

    def test_no_jitter_schedule_is_exact(self):
        timers = SignallingTimers(
            t303=1e-3, backoff=2.0, cap=8e-3, max_retries=4, jitter=0.0
        )
        schedule = backoff_schedule(timers, timers.t303)
        assert schedule == (1e-3, 2e-3, 4e-3, 8e-3, 8e-3)  # capped tail

    def test_jitter_stays_within_band(self):
        timers = SignallingTimers(jitter=0.1)
        for seed in range(10):
            rng = RandomStreams(seed).stream("sig.backoff")
            for n, delay in enumerate(
                backoff_schedule(timers, timers.t303, rng)
            ):
                nominal = min(timers.t303 * timers.backoff**n, timers.cap)
                assert 0.9 * nominal <= delay <= 1.1 * nominal

    def test_worst_case_total_bounds_any_schedule(self):
        timers = SignallingTimers()
        for seed in range(10):
            rng = RandomStreams(seed).stream("sig.backoff")
            total = sum(backoff_schedule(timers, timers.t303, rng))
            assert total <= timers.worst_case_total()

    def test_validation(self):
        with pytest.raises(ValueError):
            SignallingTimers(t303=0.0)
        with pytest.raises(ValueError):
            SignallingTimers(backoff=0.5)
        with pytest.raises(ValueError):
            SignallingTimers(max_retries=-1)
        with pytest.raises(ValueError):
            SignallingTimers(jitter=1.0)


def _signalling_pair(sim, timers, loss_ab=None, loss_ba=None):
    a = HostNetworkInterface(sim, aurora_oc3(), name="a")
    b = HostNetworkInterface(sim, aurora_oc3(), name="b")
    connect(sim, a, b, loss_ab=loss_ab, loss_ba=loss_ba)
    sig_a = SignallingAgent(sim, a, timers=timers, streams=RandomStreams(3))
    sig_b = SignallingAgent(sim, b, timers=timers, streams=RandomStreams(3))
    return a, b, sig_a, sig_b


class TestRetransmission:
    TIMERS = SignallingTimers(
        t303=1e-3, t308=1e-3, backoff=2.0, cap=4e-3, max_retries=2, jitter=0.0
    )

    def outcome_of(self, sim, loss_ab=None, loss_ba=None):
        a, b, sig_a, sig_b = _signalling_pair(
            sim, self.TIMERS, loss_ab=loss_ab, loss_ba=loss_ba
        )
        outcome = {}

        def caller():
            call = sig_a.place_call()
            outcome["call"] = call
            try:
                outcome["address"] = yield call.connected
            except CallRefused as exc:
                outcome["error"] = exc

        sim.process(caller())
        sim.run(until=0.05)
        return outcome, sig_a, sig_b

    def test_lost_setup_retransmitted_and_connects(self, sim):
        # The first SETUP (sent at t=0) dies; the t303 retransmission
        # at ~1 ms crosses a healed link and the call still completes.
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=0.0,
            stop=5e-4,
        )
        outcome, sig_a, _ = self.outcome_of(sim, loss_ab=flap)
        assert outcome["call"].state is CallState.ACTIVE
        assert outcome["address"] == outcome["call"].address
        assert sig_a.setup_retransmits.count == 1
        assert outcome["call"].retries == 1

    def test_lost_connect_answered_by_duplicate_setup(self, sim):
        # CONNECT (b->a) dies instead: the caller's retransmitted SETUP
        # hits the callee's duplicate path, which repeats the CONNECT
        # for the *same* VC rather than opening a second one.
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=0.0,
            stop=9e-4,
        )
        outcome, sig_a, sig_b = self.outcome_of(sim, loss_ba=flap)
        assert outcome["call"].state is CallState.ACTIVE
        assert sig_b.setup_duplicates.count == 1
        user_vcs = [
            vc for vc in sig_b.interface.vc_table if not vc.address.is_reserved
        ]
        assert len(user_vcs) == 1

    def test_retry_exhaustion_is_terminal(self, sim):
        dead = UniformLoss(1.0, rng=RandomStreams(1).stream("flap"))
        outcome, sig_a, _ = self.outcome_of(sim, loss_ab=dead)
        assert isinstance(outcome["error"], CallTimeout)
        assert isinstance(outcome["error"], CallRefused)  # same except arm
        call = outcome["call"]
        assert call.state is CallState.FAILED
        assert call.state.terminal
        assert call.retries == self.TIMERS.max_retries
        assert sig_a.calls_timed_out.count == 1
        assert sig_a.unresolved_calls == []

    def test_lossless_path_needs_no_retransmission(self, sim):
        outcome, sig_a, sig_b = self.outcome_of(sim)
        assert outcome["call"].state is CallState.ACTIVE
        assert sig_a.setup_retransmits.count == 0
        assert sig_a.calls_timed_out.count == 0

    def test_unconfirmed_release_clears_locally(self, sim):
        # Connect cleanly, then the link dies before RELEASE crosses:
        # T308 retries, then the forced local clear closes the VC.
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=2e-3,
            stop=1.0,
        )
        a, b, sig_a, sig_b = _signalling_pair(sim, self.TIMERS, loss_ab=flap)
        states = []

        def caller():
            call = sig_a.place_call()
            yield call.connected
            yield sim.timeout(3e-3)  # release once the link is dark
            yield sig_a.release_call(call)
            states.append(call.state)

        sim.process(caller())
        sim.run(until=0.05)
        assert states == [CallState.RELEASED]
        assert sig_a.release_retransmits.count == self.TIMERS.max_retries
        assert sig_a.unresolved_calls == []
        assert [vc for vc in a.vc_table if not vc.address.is_reserved] == []


# -- oam ping watchdog ------------------------------------------------------


class TestPingWatchdog:
    def build(self, sim, loss_ab=None):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b, loss_ab=loss_ab)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        return a, b, vc.address

    def test_unanswered_ping_reaped_not_leaked(self, sim):
        dead = UniformLoss(1.0, rng=RandomStreams(1).stream("flap"))
        a, b, vc = self.build(sim, loss_ab=dead)
        errors = []

        def pinger():
            try:
                yield a.oam_ping(vc, timeout=1e-3)
            except OamPingTimeout as exc:
                errors.append(exc)

        sim.process(pinger())
        sim.run(until=0.01)
        assert len(errors) == 1
        assert a.stats().oam_ping_timeouts == 1
        assert a._oam_pending == {}

    def test_retry_rides_out_a_short_outage(self, sim):
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=0.0,
            stop=5e-4,
        )
        a, b, vc = self.build(sim, loss_ab=flap)
        rtts = []

        def pinger():
            rtts.append((yield a.oam_ping(vc, timeout=1e-3, retries=2)))

        sim.process(pinger())
        sim.run(until=0.01)
        assert len(rtts) == 1
        # The retry re-arms the clock: the RTT is the retry's own trip,
        # not time-since-first-probe.
        assert rtts[0] < 1e-3
        assert a.stats().oam_ping_retries == 1
        assert a.stats().oam_ping_timeouts == 0

    def test_timeout_must_be_positive(self, sim):
        a, b, vc = self.build(sim)
        with pytest.raises(ValueError):
            a.oam_ping(vc, timeout=0.0)


# -- link supervision --------------------------------------------------------


SUPERVISION = SupervisorConfig(
    cc_period=2e-4,
    cc_silence=7e-4,
    alarm_repeat=2e-4,
    alarm_silence=7e-4,
    recovery_hold=5e-4,
)


def _supervised_pair(sim, flap_start=2e-3, flap_down=2e-3):
    a = HostNetworkInterface(sim, aurora_oc3(), name="a")
    b = HostNetworkInterface(sim, aurora_oc3(), name="b")
    flap = ScheduledLoss(
        UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
        start=flap_start,
        stop=flap_start + flap_down,
    )
    connect(sim, a, b, loss_ab=flap)
    sup_a = LinkSupervisor(sim, a, config=SUPERVISION)
    sup_b = LinkSupervisor(sim, b, config=SUPERVISION)
    return a, b, sup_a, sup_b


class TestLinkSupervisor:
    def test_flap_drives_both_ends_down_and_back_up(self, sim):
        a, b, sup_a, sup_b = _supervised_pair(sim)
        history = {"a": [], "b": []}
        sup_a.on_state_change = lambda old, new: history["a"].append(new)
        sup_b.on_state_change = lambda old, new: history["b"].append(new)
        sup_a.start()
        sup_b.start()
        sim.run(until=0.012)
        # b loses the inbound CC flow (local LOC); a only learns via RDI.
        assert sup_b.loc_events >= 1
        assert sup_a.alarms_received >= 1
        assert sup_b.rdi_cells_sent >= 1
        for side in ("a", "b"):
            assert history[side][0] is LinkState.DOWN
            assert history[side][-1] is LinkState.UP
            assert LinkState.RECOVERING in history[side]
        assert sup_a.state is LinkState.UP
        assert sup_b.state is LinkState.UP

    def test_loc_detected_within_window_plus_period(self, sim):
        a, b, sup_a, sup_b = _supervised_pair(sim, flap_start=2e-3)
        down_at = []
        sup_b.on_state_change = lambda old, new: down_at.append(
            (new, sim.now)
        )
        sup_a.start()
        sup_b.start()
        sim.run(until=0.01)
        downs = [t for state, t in down_at if state is LinkState.DOWN]
        assert downs
        # Last heartbeat crosses just before the flap at 2 ms; LOC (and
        # DOWN) must land within one silence window + one CC period.
        assert downs[0] <= 2e-3 + SUPERVISION.cc_silence + SUPERVISION.cc_period

    def test_protected_vc_alarmed_and_reported_on_recovery(self, sim):
        a, b, sup_a, sup_b = _supervised_pair(sim)
        user_vc = VcAddress(0, 150)
        sup_b.protect(user_vc)
        alarmed_seen = []
        recovered = []
        sup_a.on_vc_alarm = lambda vc, kind: alarmed_seen.append((vc, kind))
        sup_a.on_recovered = recovered.append
        sup_a.start()
        sup_b.start()
        sim.run(until=0.012)
        # b's repeater sends RDI on the protected VC; a records it.
        assert (user_vc, RDI) in alarmed_seen
        assert recovered and user_vc in recovered[0]
        assert sup_a.alarmed_vcs == set()  # cleared on UP

    def test_ais_is_answered_with_rdi(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b)
        sup_b = LinkSupervisor(sim, b, config=SUPERVISION)
        sup_b.start()
        # Simulate an upstream mux relaying AIS into b's receive path.
        b.rx_engine.receive_cell(AlarmCell(OAM_MGMT_VC, AIS).encode())
        b.start()
        sim.run(until=2e-3)
        assert b.stats().oam_ais_received == 1
        assert sup_b.rdi_cells_sent >= 1
        assert a.stats().oam_rdi_received >= 1

    def test_loss_rate_evidence_degrades_without_downing(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        sup = LinkSupervisor(sim, a, config=SUPERVISION)
        sup.report_loss_rate(0.2)
        assert sup.state is LinkState.DEGRADED
        sup.report_loss_rate(0.0)
        assert sup.state is LinkState.UP
        sup.note_ping_timeout()
        assert sup.state is LinkState.DEGRADED
        assert sup.ping_timeouts_noted == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(cc_period=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(recovery_hold=-1e-3)


# -- call restoration --------------------------------------------------------


class TestCallRestorer:
    def test_tracks_caller_side_only(self, sim):
        a, b, sig_a, sig_b = _signalling_pair(sim, timers=None)
        sup_a = LinkSupervisor(sim, a, config=SUPERVISION)
        restorer = CallRestorer(sim, sig_a, sup_a)
        call = sig_a.place_call()
        assert restorer.track(call) is call
        sim.run(until=5e-3)
        callee_call = sig_b.call_log[0]
        with pytest.raises(ValueError):
            restorer.track(callee_call)

    def test_failed_call_replaced_on_recovery(self, sim):
        timers = SignallingTimers(
            t303=5e-4, backoff=2.0, cap=2e-3, max_retries=2, jitter=0.0
        )
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=0.0,
            stop=6e-3,
        )
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b, loss_ab=flap)
        sig_a = SignallingAgent(sim, a, timers=timers, streams=RandomStreams(3))
        SignallingAgent(sim, b, timers=timers, streams=RandomStreams(3))
        sup_a = LinkSupervisor(sim, a, config=SUPERVISION)
        sup_b = LinkSupervisor(sim, b, config=SUPERVISION)
        sup_a.start()
        sup_b.start()
        restored = []
        restorer = CallRestorer(
            sim, sig_a, sup_a, on_restored=lambda old, new: restored.append(
                (old, new)
            )
        )
        call = restorer.track(sig_a.place_call())
        sim.run(until=0.02)
        assert call.state is CallState.FAILED  # budget spent in the dark
        assert restored, "recovery should have re-placed the failed call"
        old, new = restored[0]
        assert old is call
        assert new.state is CallState.ACTIVE
        assert restorer.tracked == [new]
        assert restorer.calls_restored == 1
        assert sig_a.calls_restored.count == 1
        assert sig_a.unresolved_calls == []

    def test_alarmed_active_call_released_and_replaced(self, sim):
        a, b, sig_a, sig_b = _signalling_pair(sim, timers=None)
        sup_a = LinkSupervisor(sim, a, config=SUPERVISION)
        restorer = CallRestorer(sim, sig_a, sup_a)
        call = restorer.track(sig_a.place_call())
        sim.run(until=5e-3)
        assert call.state is CallState.ACTIVE
        # Hand the restorer the recovery report directly: the call's VC
        # was alarmed during the episode.
        restorer.restore(frozenset({call.address}))
        sim.run(until=0.01)
        assert call.state is CallState.RELEASED
        replacement = restorer.tracked[0]
        assert replacement is not call
        assert replacement.state is CallState.ACTIVE
        assert replacement.address != call.address

    def test_untouched_calls_left_alone(self, sim):
        a, b, sig_a, sig_b = _signalling_pair(sim, timers=None)
        sup_a = LinkSupervisor(sim, a, config=SUPERVISION)
        restorer = CallRestorer(sim, sig_a, sup_a)
        call = restorer.track(sig_a.place_call())
        sim.run(until=5e-3)
        restorer.restore(frozenset())  # nothing alarmed, nothing failed
        sim.run(until=0.01)
        assert restorer.tracked == [call]
        assert restorer.calls_restored == 0


# -- reassembly state across an outage --------------------------------------


class TestAlarmedVcReassembly:
    def test_stranded_contexts_expire_rather_than_leak(self, sim):
        from dataclasses import replace

        from repro.aal.interface import ReassemblyFailure

        cfg = replace(aurora_oc3(), reassembly_timeout=2e-3, reassembly_tick=5e-4)
        a = HostNetworkInterface(sim, cfg, name="a")
        b = HostNetworkInterface(sim, cfg, name="b")
        # The flap opens mid-frame and never closes: the PDU's tail is
        # lost and the partial context is stranded at b.
        flap = ScheduledLoss(
            UniformLoss(1.0, rng=RandomStreams(1).stream("flap")),
            start=3e-4,
            stop=1.0,
        )
        connect(sim, a, b, loss_ab=flap)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        received = []
        b.on_pdu = received.append

        def sender():
            yield a.send(vc.address, bytes(4096))

        sim.process(sender())
        sim.run(until=0.02)
        assert received == []
        reasm = b.rx_engine.reassembler
        assert reasm.open_cells() == 0, "partial context must not leak"
        assert reasm.stats.failures.get(ReassemblyFailure.TIMEOUT, 0) == 1
        assert b.stats().pdus_discarded == 1


# -- link-flap fault plan ----------------------------------------------------


class TestLinkFlapPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFlapPlan(down_for=0.0)
        with pytest.raises(ValueError):
            LinkFlapPlan(repeats=0)
        with pytest.raises(ValueError):
            LinkFlapPlan(repeats=2, period=1e-3, down_for=2e-3)

    def test_presets_registered(self):
        assert "link-flap" in PLAN_PRESETS
        assert "link-flap-recurring" in PLAN_PRESETS

    def test_campaign_with_flap_conserves_cells(self):
        campaign = FaultCampaign(
            aurora_oc3(),
            plans=[LinkFlapPlan(start=2e-3, down_for=2e-3)],
            spec=CampaignSpec(duration=0.01, sdu_size=4096),
            seed=11,
        )
        result = campaign.run()
        assert result.ledger.is_conserved
        assert result.ledger.link_lost > 0  # the outage really dropped cells

    def test_recurring_flap_windows(self):
        campaign = FaultCampaign(
            aurora_oc3(),
            plans=[
                LinkFlapPlan(
                    start=1e-3, down_for=1e-3, period=3e-3, repeats=2
                )
            ],
            spec=CampaignSpec(duration=0.01, sdu_size=4096),
            seed=11,
        )
        result = campaign.run()
        assert result.ledger.is_conserved


# -- R2 end-to-end invariants ------------------------------------------------


class TestR2Experiment:
    def test_recovery_arm_beats_baseline_and_keeps_the_books(self, tmp_path):
        from repro.resilience.experiment import run_r2

        result = run_r2(seeds=(1,))
        assert result.metrics["min_recovery_gain_mbps"] > 0
        assert result.metrics["stuck_calls_on"] == 0
        assert result.metrics["all_conserved"] == 1.0
        assert result.metrics["calls_restored_total"] >= 1
        series = result.series
        assert series.column("on_oam_cells")[0] > 0  # CC/alarms itemised
        assert series.column("on_conserved") == [1.0]
        assert series.column("off_conserved") == [1.0]
