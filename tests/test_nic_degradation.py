"""Graceful degradation in the receive path: EPD/PPD, quotas, HEC.

These tests drive the admission-side frame filter and the reassembly
context quota directly, through a real interface (no engine shortcuts),
and pin the itemised accounting each mechanism must produce.
"""

from dataclasses import replace

import pytest

from repro.aal.aal5 import Aal5Segmenter
from repro.aal.interface import ReassemblyFailure
from repro.atm.addressing import VcAddress
from repro.atm.cell import PTI_USER_SDU0, AtmCell
from repro.nic.config import aurora_oc3
from repro.nic.nic import HostNetworkInterface
from repro.nic.rx import FrameDiscardPolicy

PAYLOAD = bytes(48)


def mid_cell(vci):
    return AtmCell(vpi=0, vci=vci, payload=PAYLOAD, pti=PTI_USER_SDU0)


def frame_cells(vci, sdu_size=200):
    return Aal5Segmenter(VcAddress(0, vci)).segment(bytes(sdu_size))


def make_receiver(sim, **overrides):
    config = replace(aurora_oc3(), **overrides)
    nic = HostNetworkInterface(sim, config, name="rx-degr")
    for vci in range(100, 110):
        nic.open_vc(address=VcAddress(0, vci))
    return nic


class TestFrameDiscardPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameDiscardPolicy(fifo_threshold=0.0)
        with pytest.raises(ValueError):
            FrameDiscardPolicy(fifo_threshold=1.5)
        with pytest.raises(ValueError):
            FrameDiscardPolicy(bufmem_reserve_cells=-1)

    def test_quota_requires_capable_reassembler(self, sim):
        config = replace(aurora_oc3().with_aal34(), reassembly_quota=4)
        with pytest.raises(ValueError):
            HostNetworkInterface(sim, config, name="bad")


class TestHecDiscard:
    def test_marked_cell_dies_before_the_fifo(self, sim):
        nic = make_receiver(sim)
        cell = mid_cell(100)
        cell.meta["hec_error"] = True
        nic.rx_input.receive_cell(cell)
        assert nic.rx_engine.cells_hec_discarded.count == 1
        assert len(nic.rx_fifo) == 0

    def test_clean_cell_admitted(self, sim):
        nic = make_receiver(sim)
        nic.rx_input.receive_cell(mid_cell(100))
        assert nic.rx_engine.cells_hec_discarded.count == 0
        assert len(nic.rx_fifo) == 1


class TestEarlyPacketDiscard:
    def test_refuses_whole_frame_under_pressure(self, sim):
        """Past the threshold, a new frame is refused in full -- EOF too."""
        nic = make_receiver(
            sim, frame_discard=FrameDiscardPolicy(fifo_threshold=0.5)
        )
        rx = nic.rx_engine
        # Engine not started: admitted cells pile up in the FIFO.
        for _ in range(40):  # 40/64 > 0.5: pressure
            nic.rx_input.receive_cell(mid_cell(100))
        frame = frame_cells(101)
        for cell in frame:
            nic.rx_input.receive_cell(cell)
        assert rx.frames_discarded_early.count == 1
        assert rx.cells_epd_discarded.count == len(frame)
        assert len(nic.rx_fifo) == 40  # nothing of the frame admitted
        assert rx.fifo.overflows.count == 0  # refused, not overflowed

    def test_single_cell_frame_leaves_no_state(self, sim):
        nic = make_receiver(
            sim, frame_discard=FrameDiscardPolicy(fifo_threshold=0.1)
        )
        for _ in range(10):
            nic.rx_input.receive_cell(mid_cell(100))
        (only_cell,) = frame_cells(101, sdu_size=20)[:1]
        nic.rx_input.receive_cell(only_cell)
        # The next frame on the VC is judged fresh, not mid-discard.
        assert not nic.rx_engine._discarding

    def test_mid_frame_vc_is_exempt(self, sim):
        """EPD only gates *new* frames; an accepted frame finishes."""
        nic = make_receiver(
            sim, frame_discard=FrameDiscardPolicy(fifo_threshold=0.5)
        )
        frame = frame_cells(101)
        nic.rx_input.receive_cell(frame[0])  # admitted before pressure
        for _ in range(40):
            nic.rx_input.receive_cell(mid_cell(100))
        for cell in frame[1:]:
            nic.rx_input.receive_cell(cell)
        assert nic.rx_engine.frames_discarded_early.count == 0
        assert nic.rx_engine.cells_epd_discarded.count == 0

    def test_disabled_policy_never_engages(self, sim):
        nic = make_receiver(
            sim, frame_discard=FrameDiscardPolicy(epd=False, fifo_threshold=0.1)
        )
        for _ in range(30):
            nic.rx_input.receive_cell(mid_cell(100))
        for cell in frame_cells(101):
            nic.rx_input.receive_cell(cell)
        assert nic.rx_engine.frames_discarded_early.count == 0

    def test_bufmem_reserve_triggers_epd(self, sim):
        nic = make_receiver(
            sim,
            frame_discard=FrameDiscardPolicy(
                fifo_threshold=1.0, bufmem_reserve_cells=8
            ),
        )
        nic.buffer_memory.allocate("hog", nic.buffer_memory.spec.capacity_cells - 4)
        for cell in frame_cells(101):
            nic.rx_input.receive_cell(cell)
        assert nic.rx_engine.frames_discarded_early.count == 1


class TestPartialPacketDiscard:
    def test_overflow_truncates_rest_but_admits_eof(self, sim):
        nic = make_receiver(
            sim,
            rx_fifo_cells=4,
            frame_discard=FrameDiscardPolicy(epd=False, ppd=True),
        )
        rx = nic.rx_engine
        frame = frame_cells(101, sdu_size=500)  # 11 cells
        assert len(frame) > 6
        for cell in frame[:-1]:
            nic.rx_input.receive_cell(cell)
        # 4 admitted, 1 overflowed (counted by the FIFO), rest PPD.
        assert rx.fifo.overflows.count == 1
        assert rx.frames_truncated.count == 1
        assert rx.cells_ppd_discarded.count == len(frame) - 1 - 4 - 1
        # Make room so the EOF can delineate the truncated frame.
        rx.fifo.try_get()
        nic.rx_input.receive_cell(frame[-1])
        assert len(nic.rx_fifo) == 4  # EOF admitted
        assert not rx._discarding and not rx._mid_frame

    def test_first_cell_overflow_discards_eof_too(self, sim):
        """Nothing admitted means the frame can vanish without a trace."""
        nic = make_receiver(
            sim,
            rx_fifo_cells=4,
            frame_discard=FrameDiscardPolicy(epd=False, ppd=True),
        )
        rx = nic.rx_engine
        for _ in range(4):
            nic.rx_input.receive_cell(mid_cell(100))  # fill the FIFO
        frame = frame_cells(101)
        for cell in frame:
            nic.rx_input.receive_cell(cell)
        assert rx.fifo.overflows.count == 1  # only the first cell
        assert rx.cells_epd_discarded.count == len(frame) - 1  # EOF included
        assert not rx._discarding

    def test_ppd_off_drops_cell_by_cell(self, sim):
        nic = make_receiver(
            sim,
            rx_fifo_cells=4,
            frame_discard=FrameDiscardPolicy(epd=False, ppd=False),
        )
        frame = frame_cells(101, sdu_size=500)
        for cell in frame:
            nic.rx_input.receive_cell(cell)
        assert nic.rx_engine.frames_truncated.count == 0
        assert nic.rx_engine.fifo.overflows.count == len(frame) - 4


class TestContextQuota:
    def test_oldest_context_evicted_and_reclaimed(self, sim):
        nic = make_receiver(sim, reassembly_quota=2)
        nic.start()
        rx = nic.rx_engine

        def feed():
            for vci in (100, 101, 102):  # three opens against quota 2
                nic.rx_input.receive_cell(mid_cell(vci))
                yield sim.timeout(1e-5)

        sim.process(feed())
        sim.run(until=1e-3)
        stats = rx.reassembler.stats
        assert rx.reassembler.active_contexts() == 2
        assert stats.failure_count(ReassemblyFailure.QUOTA) == 1
        assert stats.cells_discarded_by[ReassemblyFailure.QUOTA] == 1
        # Oldest (vci 100) was the victim; its buffer cell was reclaimed.
        assert not rx.reassembler.has_context(VcAddress(0, 100))
        assert nic.buffer_memory.held_by(("rx", VcAddress(0, 100))) == 0
        # Its reassembly timer went with it.
        assert nic.reassembly_timers.deadline_of(VcAddress(0, 100)) is None

    def test_quota_never_exceeded_under_sweep(self, sim):
        nic = make_receiver(sim, reassembly_quota=3)
        nic.start()

        def feed():
            for vci in range(100, 110):
                nic.rx_input.receive_cell(mid_cell(vci))
                yield sim.timeout(1e-5)

        sim.process(feed())
        sim.run(until=1e-3)
        assert nic.rx_engine.reassembler.active_contexts() <= 3
        assert (
            nic.rx_engine.reassembler.stats.failure_count(ReassemblyFailure.QUOTA)
            == 7
        )
