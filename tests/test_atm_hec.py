"""HEC generation/checking/correction and cell delineation."""

import pytest
from hypothesis import given, strategies as st

from repro.atm.hec import (
    CellDelineation,
    DelineationState,
    check_hec,
    compute_hec,
    correct_header,
)


def make_header(prefix: bytes) -> bytes:
    return prefix + bytes((compute_hec(prefix),))


HEADER4 = st.binary(min_size=4, max_size=4)


class TestComputation:
    def test_consistency(self):
        header = make_header(b"\x01\x02\x03\x04")
        assert check_hec(header)

    def test_wrong_hec_detected(self):
        header = bytearray(make_header(b"\x01\x02\x03\x04"))
        header[4] ^= 0x01
        assert not check_hec(bytes(header))

    def test_length_validation(self):
        with pytest.raises(ValueError):
            compute_hec(b"\x00" * 3)
        with pytest.raises(ValueError):
            check_hec(b"\x00" * 4)

    def test_coset_nonzero_for_zero_header(self):
        # The 0x55 coset means an all-zero header has a non-zero HEC --
        # the property that makes idle-line delineation work.
        assert compute_hec(b"\x00\x00\x00\x00") == 0x55

    @given(HEADER4)
    def test_generated_hec_always_checks(self, prefix):
        assert check_hec(make_header(prefix))

    @given(HEADER4, st.integers(0, 39))
    def test_any_single_bit_error_detected(self, prefix, bit):
        header = bytearray(make_header(prefix))
        header[bit // 8] ^= 0x80 >> (bit % 8)
        assert not check_hec(bytes(header))


class TestCorrection:
    @given(HEADER4, st.integers(0, 39))
    def test_single_bit_error_corrected(self, prefix, bit):
        good = make_header(prefix)
        corrupted = bytearray(good)
        corrupted[bit // 8] ^= 0x80 >> (bit % 8)
        assert correct_header(bytes(corrupted)) == good

    def test_clean_header_returned_unchanged(self):
        good = make_header(b"\xde\xad\xbe\xef")
        assert correct_header(good) == good

    def test_double_bit_error_not_miscorrected_to_original(self):
        good = make_header(b"\x12\x34\x56\x78")
        corrupted = bytearray(good)
        corrupted[0] ^= 0x81  # two bits in one byte
        result = correct_header(bytes(corrupted))
        # Either uncorrectable (None) or a (wrong) single-bit "fix";
        # it must never equal the true original.
        assert result != good


class TestDelineation:
    def test_acquires_sync_after_delta_good(self):
        dl = CellDelineation()
        good = make_header(b"\x00\x00\x00\x20")
        assert dl.observe(good) is DelineationState.PRESYNC
        for _ in range(CellDelineation.DELTA - 1):
            dl.observe(good)
        assert dl.in_sync
        assert dl.sync_acquisitions == 1

    def test_bad_header_in_presync_restarts_hunt(self):
        dl = CellDelineation()
        good = make_header(b"\x00\x00\x00\x20")
        dl.observe(good)
        dl.observe(b"\x00" * 5)
        assert dl.state is DelineationState.HUNT

    def test_sync_tolerates_up_to_alpha_minus_one_bad(self):
        dl = CellDelineation()
        good = make_header(b"\x00\x00\x00\x20")
        for _ in range(CellDelineation.DELTA):
            dl.observe(good)
        for _ in range(CellDelineation.ALPHA - 1):
            dl.observe(b"\x00" * 5)
        assert dl.in_sync
        dl.observe(good)  # a good header resets the bad run
        for _ in range(CellDelineation.ALPHA - 1):
            dl.observe(b"\x00" * 5)
        assert dl.in_sync

    def test_alpha_consecutive_bad_loses_sync(self):
        dl = CellDelineation()
        good = make_header(b"\x00\x00\x00\x20")
        for _ in range(CellDelineation.DELTA):
            dl.observe(good)
        for _ in range(CellDelineation.ALPHA):
            dl.observe(b"\x00" * 5)
        assert dl.state is DelineationState.HUNT
        assert dl.sync_losses == 1

    def test_reacquisition_counts(self):
        dl = CellDelineation()
        good = make_header(b"\x00\x00\x00\x20")
        for _ in range(CellDelineation.DELTA):
            dl.observe(good)
        for _ in range(CellDelineation.ALPHA):
            dl.observe(b"\x00" * 5)
        for _ in range(CellDelineation.DELTA + 1):
            dl.observe(good)
        assert dl.in_sync
        assert dl.sync_acquisitions == 2
