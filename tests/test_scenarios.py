"""Scenario builders and experiment-harness helpers."""

import pytest

from repro.atm import STS3C_155, UniformLoss, VcAddress
from repro.nic import HostNetworkInterface, aurora_oc3
from repro.results.experiments import _window_for, lab_host
from repro.sim import Simulator
from repro.workloads import GreedySource, InterleavedCellSource
from repro.workloads.scenarios import build_point_to_point


class TestPointToPoint:
    def test_builder_opens_matching_vcs(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3(), n_vcs=2)
        for vc in scenario.vcs:
            assert scenario.sender.vc_table.lookup(vc) is not None
            assert scenario.receiver.vc_table.lookup(vc) is not None

    def test_vc_property_is_first(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3(), n_vcs=3)
        assert scenario.vc == scenario.vcs[0]

    def test_received_bytes_and_goodput(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        GreedySource(sim, scenario.sender, scenario.vc, 1000, total_pdus=4).start()
        sim.run(until=0.01)
        assert scenario.received_bytes() == 4000
        assert scenario.goodput_mbps(0.01) == pytest.approx(4000 * 8 / 0.01 / 1e6)

    def test_loss_model_attaches_to_forward_link(self, sim, rng):
        loss = UniformLoss(1.0, rng)
        scenario = build_point_to_point(sim, aurora_oc3(), loss_ab=loss)
        scenario.sender.post(scenario.vc, b"doomed" * 10)
        sim.run(until=0.01)
        assert scenario.received == []
        assert loss.dropped > 0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            build_point_to_point(sim, aurora_oc3(), n_vcs=0)


class TestInterleavedCellSource:
    def test_round_robin_interleaving(self, sim):
        seen = []
        source = InterleavedCellSource(
            sim, lambda c: seen.append(c.vci), STS3C_155, n_vcs=3, sdu_size=1000
        )
        source.start()
        sim.run(until=30 * STS3C_155.cell_time)
        # Strict rotation across the three VCIs.
        assert seen[:6] == [100, 101, 102, 100, 101, 102]

    def test_emits_at_link_rate(self, sim):
        times = []
        source = InterleavedCellSource(
            sim, lambda c: times.append(sim.now), STS3C_155, n_vcs=1, sdu_size=500
        )
        source.start()
        sim.run(until=20 * STS3C_155.cell_time)
        gaps = {round(b - a, 12) for a, b in zip(times, times[1:])}
        assert gaps == {round(STS3C_155.cell_time, 12)}

    def test_streams_reassemble_at_a_nic(self, sim):
        config = lab_host(aurora_oc3())
        nic = HostNetworkInterface(sim, config, name="rx")
        received = []
        nic.on_pdu = received.append
        source = InterleavedCellSource(
            sim, nic.rx_engine, STS3C_155, n_vcs=4, sdu_size=480
        )
        for address in source.vcs:
            nic.open_vc(address=address)
        nic.start()
        source.start()
        sim.run(until=0.005)
        assert len(received) >= 4
        assert {c.vc for c in received} == set(source.vcs)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            InterleavedCellSource(sim, lambda c: None, STS3C_155, 0, 100)
        with pytest.raises(ValueError):
            InterleavedCellSource(sim, lambda c: None, STS3C_155, 1, 0)


class TestHarnessHelpers:
    def test_window_scales_with_pdu_size(self):
        small = _window_for(64, 0.01, STS3C_155)
        huge = _window_for(65535, 0.01, STS3C_155)
        assert small == 0.01  # base window suffices
        assert huge > 0.01  # stretched to cover ~40 PDUs

    def test_lab_host_preserves_identity_of_adaptor(self):
        base = aurora_oc3()
        stripped = lab_host(base)
        assert stripped.rx_costs == base.rx_costs
        assert stripped.link == base.link
        assert stripped.os_costs.send_path_cycles(1000) == 0


class TestNicMisc:
    def test_send_autostarts_pipelines(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        # connect() starts them; a fresh NIC must self-start on send.
        fresh = HostNetworkInterface(sim, aurora_oc3(), name="fresh")
        from repro.atm import PhysicalLink

        fresh.attach_tx_link(PhysicalLink(sim, STS3C_155, sink=lambda c: None))
        vc = fresh.open_vc()
        fresh.post(vc.address, b"auto")
        sim.run(until=0.01)
        assert fresh.tx_engine.pdus_sent.count == 1

    def test_close_vc_aborts_partial_reassembly(self, sim):
        from repro.aal.aal5 import Aal5Segmenter

        nic = HostNetworkInterface(sim, aurora_oc3(), name="rx")
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        for cell in Aal5Segmenter(vc.address).segment(b"x" * 500)[:-1]:
            nic.rx_engine.receive_cell(cell)
        sim.run(until=0.005)
        assert nic.rx_engine.reassembler.has_context(vc.address)
        nic.close_vc(vc.address)
        assert not nic.rx_engine.reassembler.has_context(vc.address)
        assert nic.buffer_memory.used_cells == 0

    def test_cam_entry_removed_on_close(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="n")
        vc = nic.open_vc()
        assert nic.cam.lookup(vc.address) is not None
        nic.close_vc(vc.address)
        assert nic.cam.lookup(vc.address) is None
