"""Workloads: size distributions and traffic sources."""

import pytest

from repro.aal.aal5 import AAL5_MAX_SDU
from repro.nic import aurora_oc3
from repro.workloads import (
    BimodalSize,
    ConstantSize,
    EmpiricalInternetMix,
    GreedySource,
    OnOffSource,
    PoissonSource,
    UniformSize,
)
from repro.workloads.generators import make_payload
from repro.workloads.scenarios import build_point_to_point


class TestDistributions:
    def test_constant(self, rng):
        dist = ConstantSize(1500)
        assert dist.sample(rng) == 1500
        assert dist.mean == 1500

    def test_constant_range_validation(self):
        with pytest.raises(ValueError):
            ConstantSize(0)
        with pytest.raises(ValueError):
            ConstantSize(AAL5_MAX_SDU + 1)

    def test_uniform_bounds_and_mean(self, rng):
        dist = UniformSize(100, 200)
        draws = [dist.sample(rng) for _ in range(2000)]
        assert all(100 <= d <= 200 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(dist.mean, rel=0.05)

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformSize(200, 100)

    def test_bimodal_mixes(self, rng):
        dist = BimodalSize(small=64, large=9000, p_small=0.75)
        draws = [dist.sample(rng) for _ in range(4000)]
        assert set(draws) == {64, 9000}
        small_frac = draws.count(64) / len(draws)
        assert small_frac == pytest.approx(0.75, abs=0.03)
        assert dist.mean == pytest.approx(0.75 * 64 + 0.25 * 9000)

    def test_bimodal_validation(self):
        with pytest.raises(ValueError):
            BimodalSize(p_small=1.5)

    def test_empirical_mix_mean_and_support(self, rng):
        dist = EmpiricalInternetMix()
        draws = {dist.sample(rng) for _ in range(3000)}
        assert draws <= set(dist.sizes)
        assert sum(dist.sizes[i] * dist.weights[i] for i in range(5)) / sum(
            dist.weights
        ) == pytest.approx(dist.mean)

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            EmpiricalInternetMix(sizes=[64], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            EmpiricalInternetMix(sizes=[64], weights=[0.0])


class TestMakePayload:
    def test_exact_size(self):
        for size in (0, 1, 255, 256, 70000):
            assert len(make_payload(size)) == size

    def test_deterministic(self):
        assert make_payload(1000) == make_payload(1000)

    def test_not_all_zero(self):
        assert any(make_payload(100))


class TestSources:
    def test_greedy_bounded_count(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        source = GreedySource(
            sim, scenario.sender, scenario.vc, 1500, total_pdus=7
        )
        source.start()
        sim.run(until=0.05)
        assert source.pdus_offered.count == 7
        assert len(scenario.received) == 7

    def test_greedy_accepts_int_size(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        source = GreedySource(sim, scenario.sender, scenario.vc, 64, total_pdus=2)
        source.start()
        sim.run(until=0.05)
        assert source.bytes_offered.count == 128

    def test_greedy_start_idempotent(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        source = GreedySource(
            sim, scenario.sender, scenario.vc, 64, total_pdus=3
        )
        assert source.start() is source.start()
        sim.run(until=0.05)
        assert source.pdus_offered.count == 3

    def test_poisson_rate(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        source = PoissonSource(
            sim, scenario.sender, scenario.vc, 64, pdus_per_second=2000.0
        )
        source.start()
        sim.run(until=0.5)
        assert source.pdus_offered.count == pytest.approx(1000, rel=0.15)

    def test_poisson_validation(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        with pytest.raises(ValueError):
            PoissonSource(
                sim, scenario.sender, scenario.vc, 64, pdus_per_second=0.0
            )

    def test_onoff_produces_bursts(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        source = OnOffSource(
            sim,
            scenario.sender,
            scenario.vc,
            64,
            mean_burst_pdus=5.0,
            mean_off_time=1e-3,
        )
        source.start()
        sim.run(until=0.1)
        assert source.bursts.count > 1
        assert source.pdus_offered.count >= source.bursts.count

    def test_onoff_validation(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        with pytest.raises(ValueError):
            OnOffSource(
                sim, scenario.sender, scenario.vc, 64, mean_burst_pdus=0.5
            )
