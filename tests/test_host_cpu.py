"""Host CPU cycle accounting and serialization."""

import pytest

from repro.host import CpuSpec, HostCpu, R3000_25MHZ


class TestCpuSpec:
    def test_cycle_time(self):
        spec = CpuSpec("test", clock_hz=25e6)
        assert spec.cycle_time == pytest.approx(40e-9)

    def test_mips_accounts_for_ipc(self):
        assert R3000_25MHZ.mips == pytest.approx(25 * 0.8)

    def test_seconds_for(self):
        spec = CpuSpec("test", clock_hz=10e6)
        assert spec.seconds_for(100) == pytest.approx(10e-6)
        with pytest.raises(ValueError):
            spec.seconds_for(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuSpec("bad", clock_hz=0)
        with pytest.raises(ValueError):
            CpuSpec("bad", clock_hz=1e6, instructions_per_cycle=0)


class TestExecution:
    def test_work_takes_cycle_time(self, sim):
        cpu = HostCpu(sim, CpuSpec("t", clock_hz=1e6))
        done = []

        def body():
            yield cpu.execute(500, tag="work")
            done.append(sim.now)

        sim.process(body())
        sim.run()
        assert done == [pytest.approx(500e-6)]

    def test_work_is_serialized(self, sim):
        cpu = HostCpu(sim, CpuSpec("t", clock_hz=1e6))
        finish = []

        def worker(cycles):
            yield cpu.execute(cycles)
            finish.append(sim.now)

        sim.process(worker(100))
        sim.process(worker(100))
        sim.run()
        assert finish == [pytest.approx(100e-6), pytest.approx(200e-6)]

    def test_cycles_booked_by_tag(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)

        def body():
            yield cpu.execute(100, tag="driver")
            yield cpu.execute(50, tag="driver")
            yield cpu.execute(30, tag="app")

        sim.process(body())
        sim.run()
        assert cpu.cycles_for("driver") == 150
        assert cpu.cycles_for("app") == 30
        assert cpu.total_cycles == 180

    def test_utilization(self, sim):
        cpu = HostCpu(sim, CpuSpec("t", clock_hz=1e6))

        def body():
            yield cpu.execute(500)

        sim.process(body())
        sim.run(until=1e-3)
        assert cpu.utilization() == pytest.approx(0.5)

    def test_charge_accounting_only(self, sim):
        cpu = HostCpu(sim, CpuSpec("t", clock_hz=1e6))
        seconds = cpu.charge(200, tag="analysis")
        assert seconds == pytest.approx(200e-6)
        assert cpu.total_cycles == 200
        assert sim.now == 0.0  # no simulated time passed

    def test_negative_cycles_rejected(self, sim):
        cpu = HostCpu(sim, R3000_25MHZ)
        with pytest.raises(ValueError):
            cpu.charge(-5)

    def test_queue_length_visible(self, sim):
        cpu = HostCpu(sim, CpuSpec("t", clock_hz=1e3))  # slow

        def worker():
            yield cpu.execute(1000)

        for _ in range(3):
            sim.process(worker())
        sim.run(until=0.1)
        assert cpu.queue_length == 2
