"""Shared fixtures for the test suite."""

import random

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator per test."""
    return Simulator()


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(12345)
