"""Closed-form models: internal consistency and paper-shape claims."""

import pytest

from repro.analysis import (
    LatencyBreakdown,
    Series,
    end_to_end_throughput_model_mbps,
    host_cycles_per_pdu_hostsar,
    host_cycles_per_pdu_offloaded,
    latency_model,
    offload_advantage,
    rx_saturation_mbps,
    rx_throughput_model_mbps,
    saturating_pdu_size,
    sweep,
    tx_saturation_mbps,
    tx_throughput_model_mbps,
)
from repro.baselines.host_sar import HostSarConfig
from repro.nic import aurora_oc3, aurora_oc12


class TestThroughputModel:
    def test_monotone_in_pdu_size_until_saturation(self):
        config = aurora_oc3()
        values = [
            tx_throughput_model_mbps(config, s) for s in (64, 256, 1024, 4096)
        ]
        assert values == sorted(values)

    def test_bounded_by_link_user_rate(self):
        config = aurora_oc3()
        ceiling = config.link.effective_user_rate_bps / 1e6
        for size in (40, 1500, 9180, 65535):
            assert tx_throughput_model_mbps(config, size) <= ceiling + 1e-9
            assert rx_throughput_model_mbps(config, size) <= ceiling + 1e-9

    def test_both_knees_exist_at_oc3(self):
        # At STS-3c both directions reach link rate beyond a modest size.
        config = aurora_oc3()
        assert 0 < saturating_pdu_size(config, "rx") < 1000
        assert 0 < saturating_pdu_size(config, "tx") < 1000

    def test_tx_knee_right_of_rx_knee_at_oc3(self):
        # Transmit stages its PDU over a *serial* DMA, so it carries more
        # per-PDU overhead; receive overlaps its completion DMA.  Hence
        # the TX knee sits right of the RX knee -- even though RX has the
        # larger per-cell budget (visible at OC-12 instead, where RX is
        # the direction that cannot reach link rate).
        config = aurora_oc3()
        assert saturating_pdu_size(config, "tx") > saturating_pdu_size(
            config, "rx"
        )

    def test_no_knee_when_engine_cannot_keep_up(self):
        config = aurora_oc12()  # 25 MHz RX cannot clear the OC-12 slot
        assert saturating_pdu_size(config, "rx") == -1

    def test_saturation_at_oc3_is_link_limited(self):
        config = aurora_oc3()
        ceiling = config.link.effective_user_rate_bps / 1e6
        assert tx_saturation_mbps(config) == pytest.approx(ceiling)
        assert rx_saturation_mbps(config) == pytest.approx(ceiling)

    def test_rx_saturation_at_oc12_is_engine_limited(self):
        config = aurora_oc12()
        ceiling = config.link.effective_user_rate_bps / 1e6
        assert rx_saturation_mbps(config) < ceiling

    def test_cam_removal_lowers_rx_saturation_at_oc12(self):
        assert rx_saturation_mbps(
            aurora_oc12().without_cam()
        ) < rx_saturation_mbps(aurora_oc12())

    def test_end_to_end_below_interface_model(self):
        config = aurora_oc3()
        for size in (64, 1500, 9180):
            assert end_to_end_throughput_model_mbps(
                config, size
            ) <= tx_throughput_model_mbps(config, size) + 1e-9

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            saturating_pdu_size(aurora_oc3(), "sideways")


class TestLatencyModel:
    def test_total_is_sum_of_stages(self):
        breakdown = latency_model(aurora_oc3(), 1500)
        assert breakdown.total == pytest.approx(
            sum(breakdown.as_dict().values())
        )

    def test_monotone_in_size(self):
        config = aurora_oc3()
        totals = [latency_model(config, s).total for s in (64, 1024, 9180)]
        assert totals == sorted(totals)

    def test_small_pdu_software_dominated(self):
        breakdown = latency_model(aurora_oc3(), 64)
        assert breakdown.dominant_stage() != "link_serialization"

    def test_large_pdu_wire_dominated_at_oc3(self):
        breakdown = latency_model(aurora_oc3(), 65535)
        assert breakdown.dominant_stage() == "link_serialization"

    def test_propagation_passes_through(self):
        with_prop = latency_model(aurora_oc3(), 100, propagation_delay=0.01)
        without = latency_model(aurora_oc3(), 100)
        assert with_prop.total - without.total == pytest.approx(0.01)

    def test_faster_link_cuts_large_pdu_latency(self):
        slow = latency_model(aurora_oc3(), 65535).total
        fast = latency_model(aurora_oc12(), 65535).total
        assert fast < slow


class TestUtilizationModel:
    def test_offloaded_cost_weakly_grows_with_size(self):
        config = aurora_oc3()
        small = host_cycles_per_pdu_offloaded(config, 64)
        large = host_cycles_per_pdu_offloaded(config, 9180)
        assert large > small  # copies still scale with bytes

    def test_hostsar_cost_scales_with_cells(self):
        config = HostSarConfig()
        ratio = host_cycles_per_pdu_hostsar(
            config, 9180
        ) / host_cycles_per_pdu_hostsar(config, 64)
        assert ratio > 20

    def test_advantage_grows_with_size(self):
        nic, sar = aurora_oc3(), HostSarConfig()
        assert offload_advantage(nic, sar, 9180) > offload_advantage(
            nic, sar, 64
        )

    def test_advantage_exceeds_order_of_magnitude_for_mtu(self):
        assert offload_advantage(aurora_oc3(), HostSarConfig(), 9180) > 10

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            host_cycles_per_pdu_offloaded(aurora_oc3(), 100, "up")


class TestSeries:
    def test_add_and_query(self):
        series = Series("s", "x")
        series.add_point(1, a=10.0, b=1.0)
        series.add_point(2, a=5.0, b=2.0)
        assert series.column("a") == [10.0, 5.0]
        assert len(series) == 2
        assert series.headers() == ["x", "a", "b"]
        assert series.rows() == [[1, 10.0, 1.0], [2, 5.0, 2.0]]

    def test_column_mismatch_rejected(self):
        series = Series("s", "x")
        series.add_point(1, a=1.0)
        with pytest.raises(ValueError):
            series.add_point(2, b=1.0)

    def test_crossover(self):
        series = Series("s", "x")
        for x, a, b in [(1, 10, 1), (2, 5, 5), (3, 1, 10)]:
            series.add_point(x, a=a, b=b)
        assert series.crossover("a", "b") == 2

    def test_crossover_none(self):
        series = Series("s", "x")
        series.add_point(1, a=10, b=1)
        assert series.crossover("a", "b") is None

    def test_sweep_helper(self):
        series = sweep("sq", "x", [1, 2, 3], lambda x: {"y": x * x})
        assert series.column("y") == [1, 4, 9]
