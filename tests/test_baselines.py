"""Baseline architectures: host-SAR, hardwired, shared-engine."""

import pytest

from repro.atm import PhysicalLink, STS3C_155, STS12C_622
from repro.baselines import (
    HARDWIRED_RX_COSTS,
    HARDWIRED_TX_COSTS,
    HostSarConfig,
    HostSarInterface,
    SharedEngineClock,
    hardwired_config,
    share_engine,
)
from repro.nic import (
    CellPosition,
    HostNetworkInterface,
    I960_25MHZ,
    RxCostModel,
    TxCostModel,
    aurora_oc12,
    connect,
)
from repro.workloads.generators import make_payload


def build_sar_pair(sim, config=None):
    config = config if config is not None else HostSarConfig()
    tx = HostSarInterface(sim, config, name="tx")
    rx = HostSarInterface(sim, config, name="rx")
    link = PhysicalLink(sim, config.link, sink=rx.rx_input)
    tx.attach_tx_link(link)
    vc = tx.open_vc()
    rx.open_vc(address=vc.address)
    tx.start()
    return tx, rx, vc.address


class TestHostSarFunctional:
    def test_transfer_roundtrip(self, sim):
        tx, rx, vc = build_sar_pair(sim)
        received = []
        rx.on_pdu = received.append
        payload = make_payload(1500)

        def sender():
            yield tx.send(vc, payload)

        sim.process(sender())
        sim.run(until=0.1)
        assert len(received) == 1
        assert received[0].sdu == payload

    def test_per_cell_interrupts(self, sim):
        tx, rx, vc = build_sar_pair(sim)

        def sender():
            yield tx.send(vc, make_payload(1500))  # 32 cells

        sim.process(sender())
        sim.run(until=0.1)
        assert rx.interrupts.raised.count == 32

    def test_host_cycles_scale_with_cells(self, sim):
        tx, rx, vc = build_sar_pair(sim)

        def sender():
            yield tx.send(vc, make_payload(9180))

        sim.process(sender())
        sim.run(until=0.2)
        # Receiving 192 cells in software costs well over 100 cycles/cell.
        assert rx.cpu.total_cycles > 192 * 100

    def test_unknown_vc_ignored(self, sim):
        config = HostSarConfig()
        rx = HostSarInterface(sim, config, name="rx")
        from repro.aal.aal5 import Aal5Segmenter
        from repro.atm import VcAddress

        for cell in Aal5Segmenter(VcAddress(0, 500)).segment(b"orphan"):
            rx.receive_cell(cell)
        sim.run(until=0.01)
        assert rx.pdus_received.count == 0

    def test_send_requires_open_vc(self, sim):
        from repro.atm import VcAddress

        tx = HostSarInterface(sim, HostSarConfig(), name="tx")
        with pytest.raises(ValueError):
            tx.send(VcAddress(0, 999), b"x")

    def test_host_cycles_per_pdu_readout(self, sim):
        tx, rx, vc = build_sar_pair(sim)

        def sender():
            yield tx.send(vc, make_payload(500))

        sim.process(sender())
        sim.run(until=0.1)
        assert tx.host_cycles_per_pdu() > 0


class TestHardwired:
    def test_budgets_are_tiny(self):
        assert HARDWIRED_TX_COSTS.cell_cycles(CellPosition.MIDDLE) <= 4
        assert HARDWIRED_RX_COSTS.cell_cycles(CellPosition.MIDDLE) <= 6

    def test_config_overrides_engines_and_costs(self):
        config = hardwired_config(STS12C_622)
        assert config.tx_costs is HARDWIRED_TX_COSTS
        assert config.link is STS12C_622
        assert config.tx_engine.clock_hz == 40e6

    def test_functionally_identical_transfer(self, sim):
        a = HostNetworkInterface(sim, hardwired_config(STS3C_155), name="a")
        b = HostNetworkInterface(sim, hardwired_config(STS3C_155), name="b")
        connect(sim, a, b)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        received = []
        b.on_pdu = received.append
        payload = make_payload(2000)
        a.post(vc.address, payload)
        sim.run(until=0.05)
        assert received[0].sdu == payload

    def test_hardwired_per_cell_clears_oc12_slot(self):
        config = hardwired_config(STS12C_622)
        per_cell = config.rx_engine.seconds_for(
            config.rx_costs.cell_cycles(CellPosition.MIDDLE)
        )
        assert per_cell < STS12C_622.cell_time


class TestSharedEngine:
    def test_work_serialises_across_callers(self, sim):
        clock = SharedEngineClock(sim, I960_25MHZ)
        finish = []

        def worker(name):
            yield clock.work(2500)  # 100 us
            finish.append((name, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finish[0][1] == pytest.approx(100e-6)
        assert finish[1][1] == pytest.approx(200e-6)
        assert clock.contention_wait > 0

    def test_share_engine_rebinds_both_pipelines(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc12(), name="n")
        shared = share_engine(nic)
        assert nic.tx_engine.clock is shared
        assert nic.rx_engine.clock is shared
        assert nic.tx_clock is shared

    def test_shared_nic_still_transfers(self, sim):
        a = HostNetworkInterface(sim, aurora_oc12(), name="a")
        b = HostNetworkInterface(sim, aurora_oc12(), name="b")
        share_engine(a)
        share_engine(b)
        connect(sim, a, b)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        received = []
        b.on_pdu = received.append
        a.post(vc.address, make_payload(3000))
        sim.run(until=0.05)
        assert len(received) == 1

    def test_utilization_accounted_once(self, sim):
        clock = SharedEngineClock(sim, I960_25MHZ)

        def worker():
            yield clock.work(25_000)  # 1 ms

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert clock.utilization(sim.now) == pytest.approx(1.0)
