"""AAL5 segmentation/reassembly: framing, failure modes, properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.aal import (
    AAL5_MAX_SDU,
    Aal5Reassembler,
    Aal5Segmenter,
    build_cpcs_pdu,
    parse_cpcs_pdu,
)
from repro.aal.aal5 import CpcsCrcError, CpcsLengthError, cells_for_sdu
from repro.aal.interface import AalError, ReassemblyFailure
from repro.atm import AtmCell, VcAddress

VC = VcAddress(0, 100)


def corrupt(cell: AtmCell, byte: int = 10) -> AtmCell:
    payload = bytearray(cell.payload)
    payload[byte] ^= 0x01
    return AtmCell(
        vpi=cell.vpi, vci=cell.vci, payload=bytes(payload), pti=cell.pti
    )


class TestCpcsFraming:
    def test_pdu_is_multiple_of_48(self):
        for size in (0, 1, 39, 40, 41, 48, 100):
            assert len(build_cpcs_pdu(b"x" * size)) % 48 == 0

    def test_minimum_one_cell(self):
        assert len(build_cpcs_pdu(b"")) == 48

    def test_trailer_fields_roundtrip(self):
        sdu, uu, cpi = parse_cpcs_pdu(build_cpcs_pdu(b"hello", uu=9, cpi=3))
        assert (sdu, uu, cpi) == (b"hello", 9, 3)

    def test_oversize_sdu_rejected(self):
        with pytest.raises(AalError):
            build_cpcs_pdu(bytes(AAL5_MAX_SDU + 1))

    def test_bad_uu_rejected(self):
        with pytest.raises(AalError):
            build_cpcs_pdu(b"", uu=256)

    def test_crc_error_classified(self):
        pdu = bytearray(build_cpcs_pdu(b"payload"))
        pdu[0] ^= 0xFF
        with pytest.raises(CpcsCrcError):
            parse_cpcs_pdu(bytes(pdu))

    def test_non_multiple_length_classified(self):
        with pytest.raises(CpcsLengthError):
            parse_cpcs_pdu(b"\x00" * 47)

    def test_cells_for_sdu(self):
        assert cells_for_sdu(0) == 1
        assert cells_for_sdu(40) == 1
        assert cells_for_sdu(41) == 2
        assert cells_for_sdu(9180) == 192
        with pytest.raises(AalError):
            cells_for_sdu(-1)


class TestSegmentation:
    def test_only_last_cell_marked(self):
        cells = Aal5Segmenter(VC).segment(b"a" * 200)
        assert [c.end_of_frame for c in cells] == [False] * (len(cells) - 1) + [True]

    def test_cells_carry_vc_address(self):
        cells = Aal5Segmenter(VC).segment(b"data")
        assert all((c.vpi, c.vci) == (VC.vpi, VC.vci) for c in cells)

    def test_counters(self):
        seg = Aal5Segmenter(VC)
        seg.segment(b"a" * 100)
        seg.segment(b"b" * 10)
        assert seg.pdus_segmented == 2
        assert seg.cells_produced == 4  # 3 + 1


class TestReassembly:
    @pytest.mark.parametrize("size", [0, 1, 40, 41, 48, 96, 1000, 9180])
    def test_roundtrip(self, size):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        sdu = bytes(i % 251 for i in range(size))
        out = None
        for cell in seg.segment(sdu):
            out = ras.receive_cell(cell, now=1.0)
        assert out is not None
        assert out.sdu == sdu
        assert out.vc == VC
        assert out.completed_at == 1.0

    def test_interleaved_vcs_reassemble_independently(self):
        vcs = [VcAddress(0, 100 + i) for i in range(4)]
        segs = [Aal5Segmenter(vc) for vc in vcs]
        ras = Aal5Reassembler()
        streams = [seg.segment(bytes([i]) * (100 + i)) for i, seg in enumerate(segs)]
        results = {}
        for slot in range(max(len(s) for s in streams)):
            for i, stream in enumerate(streams):
                if slot < len(stream):
                    out = ras.receive_cell(stream[slot])
                    if out:
                        results[out.vc] = out.sdu
        assert results == {
            vc: bytes([i]) * (100 + i) for i, vc in enumerate(vcs)
        }

    def test_delivery_callback(self):
        delivered = []
        ras = Aal5Reassembler(deliver=delivered.append)
        for cell in Aal5Segmenter(VC).segment(b"payload"):
            ras.receive_cell(cell)
        assert len(delivered) == 1
        assert delivered[0].sdu == b"payload"

    def test_corrupted_cell_fails_crc(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        cells = seg.segment(b"x" * 200)
        cells[1] = corrupt(cells[1])
        for cell in cells:
            assert ras.receive_cell(cell) is None
        assert ras.stats.failure_count(ReassemblyFailure.CRC) == 1

    def test_lost_middle_cell_detected(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        cells = seg.segment(b"y" * 300)
        for cell in cells[:2] + cells[3:]:
            assert ras.receive_cell(cell) is None
        assert ras.stats.pdus_discarded == 1

    def test_lost_eof_merges_and_discards_both(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        first = seg.segment(b"a" * 100)
        second = seg.segment(b"b" * 100)
        for cell in first[:-1] + second:  # EOF of the first PDU lost
            result = ras.receive_cell(cell)
        assert result is None
        assert ras.stats.pdus_discarded == 1
        assert ras.stats.pdus_delivered == 0

    def test_stream_recovers_after_merge(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        ruined = seg.segment(b"a" * 100)[:-1]
        for cell in ruined + seg.segment(b"b" * 50):
            last = ras.receive_cell(cell)
        assert last is None  # merged PDU discarded
        out = None
        for cell in seg.segment(b"clean"):
            out = ras.receive_cell(cell)
        assert out is not None and out.sdu == b"clean"

    def test_oversize_context_discarded(self):
        ras = Aal5Reassembler(max_cells=3)
        cells = Aal5Segmenter(VC).segment(b"z" * 48 * 5)
        for cell in cells:
            assert ras.receive_cell(cell) is None
        assert ras.stats.failure_count(ReassemblyFailure.OVERSIZE) == 1

    def test_abort_context(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        for cell in seg.segment(b"q" * 200)[:-1]:
            ras.receive_cell(cell)
        assert ras.has_context(VC)
        assert ras.abort_context(VC, ReassemblyFailure.TIMEOUT)
        assert not ras.has_context(VC)
        assert ras.stats.failure_count(ReassemblyFailure.TIMEOUT) == 1
        assert not ras.abort_context(VC, ReassemblyFailure.TIMEOUT)

    def test_context_age(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        cells = seg.segment(b"q" * 200)
        ras.receive_cell(cells[0], now=5.0)
        assert ras.context_age(VC, now=7.5) == pytest.approx(2.5)
        assert ras.context_age(VcAddress(0, 999), now=7.5) is None

    def test_context_cells(self):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        cells = seg.segment(b"q" * 200)
        for cell in cells[:3]:
            ras.receive_cell(cell)
        assert ras.context_cells(VC) == 3

    @settings(max_examples=30, deadline=None)
    @given(st.binary(max_size=2000), st.integers(0, 255))
    def test_roundtrip_property(self, sdu, uu):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        out = None
        for cell in seg.segment(sdu, uu=uu):
            out = ras.receive_cell(cell)
        assert out is not None
        assert out.sdu == sdu and out.user_indication == uu

    @settings(max_examples=30, deadline=None)
    @given(
        st.binary(min_size=150, max_size=500),
        st.integers(0, 3),
    )
    def test_any_single_lost_cell_never_delivers_wrong_data(self, sdu, drop):
        seg, ras = Aal5Segmenter(VC), Aal5Reassembler()
        cells = seg.segment(sdu)
        drop = drop % len(cells)
        survivors = cells[:drop] + cells[drop + 1 :]
        outputs = [ras.receive_cell(c) for c in survivors]
        delivered = [o for o in outputs if o is not None]
        # Either nothing delivered, or (never) the wrong bytes.
        assert all(d.sdu == sdu for d in delivered)
        assert not delivered
