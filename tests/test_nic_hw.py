"""NIC hardware assists: FIFOs, CAM, buffer memory, descriptor rings."""

import pytest

from repro.atm import AtmCell
from repro.nic import AdaptorBufferMemory, BufferMemorySpec, Cam, CellFifo
from repro.nic.cam import CamFullError
from repro.nic.descriptors import DescriptorRing, TxDescriptor
from repro.atm.addressing import VcAddress

PAYLOAD = bytes(48)


def cell(vci=100):
    return AtmCell(vpi=0, vci=vci, payload=PAYLOAD)


class TestCellFifo:
    def test_try_put_drops_when_full(self, sim):
        fifo = CellFifo(sim, depth_cells=2)
        assert fifo.try_put(cell())
        assert fifo.try_put(cell())
        assert not fifo.try_put(cell())
        assert fifo.overflows.count == 1
        assert fifo.loss_ratio == pytest.approx(1 / 3)

    def test_blocking_put_stalls_producer(self, sim):
        fifo = CellFifo(sim, depth_cells=1)
        accepted = []

        def producer():
            yield fifo.put(cell())
            accepted.append(sim.now)
            yield fifo.put(cell())
            accepted.append(sim.now)

        def consumer():
            yield sim.timeout(1.0)
            yield fifo.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert accepted == [0.0, 1.0]

    def test_get_blocks_until_cell(self, sim):
        fifo = CellFifo(sim, depth_cells=4)
        got = []

        def consumer():
            c = yield fifo.get()
            got.append((sim.now, c.vci))

        def producer():
            yield sim.timeout(0.5)
            fifo.try_put(cell(vci=7))

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [(0.5, 7)]

    def test_try_get(self, sim):
        fifo = CellFifo(sim, depth_cells=4)
        assert fifo.try_get() is None
        fifo.try_put(cell(vci=9))
        assert fifo.try_get().vci == 9

    def test_occupancy_tracking(self, sim):
        fifo = CellFifo(sim, depth_cells=8)
        for _ in range(5):
            fifo.try_put(cell())
        assert fifo.peak_occupancy == 5
        assert len(fifo) == 5

    def test_counters(self, sim):
        fifo = CellFifo(sim, depth_cells=8)
        fifo.try_put(cell())
        fifo.try_put(cell())
        fifo.try_get()
        assert fifo.cells_in == 2
        assert fifo.cells_out == 1

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            CellFifo(sim, depth_cells=0)

    def test_dropped_cell_never_counted_as_accepted(self, sim):
        """Accounting invariant: cells_in and overflows are disjoint.

        A rejected try_put must not leak into the accepted ledger, or
        the conservation audit would double-count every dropped cell.
        """
        fifo = CellFifo(sim, depth_cells=3)
        for _ in range(10):
            fifo.try_put(cell())
        assert fifo.cells_in == 3
        assert fifo.overflows.count == 7
        assert fifo.cells_offered == 10
        # Draining changes neither input-side bucket.
        while fifo.try_get() is not None:
            pass
        assert fifo.cells_in == 3 and fifo.overflows.count == 7
        assert fifo.cells_out == 3
        assert fifo.loss_ratio == pytest.approx(0.7)

    def test_fill_fraction(self, sim):
        fifo = CellFifo(sim, depth_cells=4)
        assert fifo.fill_fraction == 0.0
        fifo.try_put(cell())
        fifo.try_put(cell())
        assert fifo.fill_fraction == pytest.approx(0.5)


class TestCam:
    def test_install_lookup_remove(self):
        cam = Cam(capacity=4)
        cam.install(VcAddress(0, 100), "ctx")
        assert cam.lookup(VcAddress(0, 100)) == "ctx"
        assert cam.remove(VcAddress(0, 100)) == "ctx"
        assert cam.lookup(VcAddress(0, 100)) is None

    def test_capacity_enforced(self):
        cam = Cam(capacity=2)
        cam.install(VcAddress(0, 1), 1)
        cam.install(VcAddress(0, 2), 2)
        with pytest.raises(CamFullError):
            cam.install(VcAddress(0, 3), 3)
        assert cam.free_entries == 0

    def test_reinstall_same_key_is_update(self):
        cam = Cam(capacity=1)
        cam.install("k", 1)
        cam.install("k", 2)  # no CamFullError
        assert cam.lookup("k") == 2

    def test_hit_ratio(self):
        cam = Cam(capacity=4)
        cam.install("k", 1)
        cam.lookup("k")
        cam.lookup("miss")
        assert cam.hits == 1 and cam.misses == 1
        assert cam.hit_ratio == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cam(capacity=0)

    def test_fault_hook_forces_misses(self):
        cam = Cam(capacity=4)
        cam.install("k", 1)
        cam.fault_hook = lambda key: key == "k"
        assert cam.lookup("k") is None
        assert cam.forced_misses == 1 and cam.misses == 1
        cam.fault_hook = None
        assert cam.lookup("k") == 1  # entry was never actually lost


class TestBufferMemory:
    def spec(self, cells=100):
        return BufferMemorySpec(capacity_cells=cells, width_bytes=4, clock_hz=25e6)

    def test_allocate_and_release(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec())
        assert mem.allocate("ctx", 10)
        assert mem.used_cells == 10
        assert mem.held_by("ctx") == 10
        assert mem.release("ctx") == 10
        assert mem.used_cells == 0

    def test_exhaustion_counted(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec(cells=5))
        assert mem.allocate("a", 5)
        assert not mem.allocate("b", 1)
        assert mem.allocation_failures == 1

    def test_grow(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec())
        mem.allocate("ctx", 1)
        mem.grow("ctx")
        assert mem.held_by("ctx") == 2

    def test_bandwidth_ledger(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec())
        mem.record_write(480)
        mem.record_read(480)
        sim.timeout(1e-3)
        sim.run()
        assert mem.required_bandwidth_bps(1e-3) == pytest.approx(960 * 8 / 1e-3)
        assert mem.bandwidth_headroom(1e-3) > 0

    def test_headroom_infinite_when_idle(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec())
        assert mem.bandwidth_headroom(1.0) == float("inf")

    def test_dual_port_doubles_bandwidth(self):
        single = BufferMemorySpec(100, 4, 25e6, dual_ported=False)
        dual = BufferMemorySpec(100, 4, 25e6, dual_ported=True)
        assert dual.total_bandwidth_bps == 2 * single.total_bandwidth_bps

    def test_fill_fraction_and_pressure(self, sim):
        mem = AdaptorBufferMemory(sim, self.spec(cells=10))
        mem.allocate("ctx", 8)
        assert mem.fill_fraction == pytest.approx(0.8)
        assert mem.under_pressure(reserve_cells=3)  # only 2 free
        assert not mem.under_pressure(reserve_cells=2)

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            BufferMemorySpec(capacity_cells=0)
        mem = AdaptorBufferMemory(sim, self.spec())
        with pytest.raises(ValueError):
            mem.allocate("x", -1)
        with pytest.raises(ValueError):
            mem.record_write(-1)


class TestDescriptorRing:
    def test_post_take_order(self, sim):
        ring = DescriptorRing(sim, depth=4)
        taken = []

        def consumer():
            for _ in range(2):
                desc = yield ring.take()
                taken.append(desc.pdu_id)

        d1 = TxDescriptor(VcAddress(0, 100), b"a", posted_at=0.0)
        d2 = TxDescriptor(VcAddress(0, 100), b"b", posted_at=0.0)
        ring.try_post(d1)
        ring.try_post(d2)
        sim.process(consumer())
        sim.run()
        assert taken == [d1.pdu_id, d2.pdu_id]

    def test_full_ring_backpressures(self, sim):
        ring = DescriptorRing(sim, depth=1)
        ring.try_post(TxDescriptor(VcAddress(0, 100), b"a", 0.0))
        assert not ring.try_post(TxDescriptor(VcAddress(0, 100), b"b", 0.0))
        assert ring.is_full

    def test_pdu_ids_unique(self):
        a = TxDescriptor(VcAddress(0, 100), b"", 0.0)
        b = TxDescriptor(VcAddress(0, 100), b"", 0.0)
        assert a.pdu_id != b.pdu_id

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            DescriptorRing(sim, depth=0)
