"""Loss and corruption models: statistics and burst structure."""

import random

import pytest

from repro.atm import (
    AtmCell,
    BitErrorModel,
    CompositeLoss,
    GilbertElliottLoss,
    ScheduledLoss,
    TailLoss,
    UniformLoss,
)
from repro.atm.addressing import VcAddress
from repro.atm.cell import PTI_USER_SDU1

PAYLOAD = bytes(48)


def cell():
    return AtmCell(vpi=0, vci=100, payload=PAYLOAD)


def eof_cell(vci=100):
    return AtmCell(vpi=0, vci=vci, payload=PAYLOAD, pti=PTI_USER_SDU1)


class TestUniformLoss:
    def test_rate_converges(self, rng):
        model = UniformLoss(0.2, rng)
        n = 10_000
        drops = sum(model.should_drop(cell(), 0.0) for _ in range(n))
        assert drops / n == pytest.approx(0.2, abs=0.02)
        assert model.observed_rate == pytest.approx(drops / n)

    @pytest.mark.parametrize("p", [0.005, 0.05, 0.5])
    def test_observed_rate_matches_p_under_fixed_seed(self, p):
        """Property: for any p, the empirical rate tracks p (seeded)."""
        model = UniformLoss(p, random.Random(99))
        n = 50_000
        for _ in range(n):
            model.should_drop(cell(), 0.0)
        assert model.offered == n
        assert model.observed_rate == pytest.approx(p, rel=0.15)

    def test_same_seed_same_drop_sequence(self):
        a = UniformLoss(0.3, random.Random(7))
        b = UniformLoss(0.3, random.Random(7))
        seq_a = [a.should_drop(cell(), 0.0) for _ in range(2_000)]
        seq_b = [b.should_drop(cell(), 0.0) for _ in range(2_000)]
        assert seq_a == seq_b

    def test_zero_probability_never_drops(self, rng):
        model = UniformLoss(0.0, rng)
        assert not any(model.should_drop(cell(), 0.0) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)


class TestGilbertElliott:
    def test_long_run_rate_matches_steady_state(self, rng):
        model = GilbertElliottLoss(
            p_good_to_bad=0.01, p_bad_to_good=0.2, loss_in_bad=1.0, rng=rng
        )
        n = 60_000
        drops = sum(model.should_drop(cell(), 0.0) for _ in range(n))
        assert drops / n == pytest.approx(model.steady_state_loss, rel=0.15)

    @pytest.mark.parametrize(
        "p_gb,p_bg",
        [(0.005, 0.25), (0.02, 0.1), (0.05, 0.5)],
    )
    def test_convergence_to_stationary_probability(self, p_gb, p_bg):
        """Property: long-run loss converges to the chain's pi_bad."""
        model = GilbertElliottLoss(
            p_good_to_bad=p_gb,
            p_bad_to_good=p_bg,
            loss_in_bad=1.0,
            rng=random.Random(4242),
        )
        n = 120_000
        drops = sum(model.should_drop(cell(), 0.0) for _ in range(n))
        pi_bad = p_gb / (p_gb + p_bg)
        assert model.steady_state_loss == pytest.approx(pi_bad)
        assert drops / n == pytest.approx(pi_bad, rel=0.15)

    def test_losses_are_bursty(self, rng):
        model = GilbertElliottLoss(
            p_good_to_bad=0.002, p_bad_to_good=0.25, loss_in_bad=1.0, rng=rng
        )
        outcomes = [model.should_drop(cell(), 0.0) for _ in range(60_000)]
        # Count loss runs; with burst loss, mean run length >> 1.
        runs, current = [], 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some loss events"
        mean_run = sum(runs) / len(runs)
        assert mean_run > 1.5  # uniform loss at same rate would be ~1.0

    def test_steady_state_formula(self):
        model = GilbertElliottLoss(0.1, 0.3, loss_in_bad=1.0)
        assert model.steady_state_loss == pytest.approx(0.1 / 0.4)

    def test_degenerate_chain(self):
        model = GilbertElliottLoss(0.0, 0.0, loss_in_bad=1.0)
        assert model.steady_state_loss == 0.0  # starts (and stays) GOOD

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.5)


class TestBitError:
    def test_corruption_flips_exactly_one_bit(self):
        model = BitErrorModel(1.0, random.Random(1))
        original = cell()
        corrupted = model.maybe_corrupt(original)
        differing_bits = sum(
            bin(a ^ b).count("1")
            for a, b in zip(original.payload, corrupted.payload)
        )
        assert differing_bits == 1
        assert corrupted.meta.get("corrupted")

    def test_zero_probability_passthrough(self):
        model = BitErrorModel(0.0)
        original = cell()
        assert model.maybe_corrupt(original) is original

    def test_header_untouched(self):
        model = BitErrorModel(1.0, random.Random(2))
        original = cell()
        corrupted = model.maybe_corrupt(original)
        assert (corrupted.vpi, corrupted.vci, corrupted.pti) == (
            original.vpi,
            original.vci,
            original.pti,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BitErrorModel(-0.1)


class TestScheduledLoss:
    def test_only_drops_inside_window(self):
        model = ScheduledLoss(UniformLoss(1.0, random.Random(1)), 1.0, 2.0)
        assert not model.should_drop(cell(), 0.5)
        assert model.should_drop(cell(), 1.0)  # start is inclusive
        assert model.should_drop(cell(), 1.5)
        assert not model.should_drop(cell(), 2.0)  # stop is exclusive
        assert model.offered == 4 and model.dropped == 2

    def test_inner_state_frozen_outside_window(self):
        inner = GilbertElliottLoss(0.5, 0.5, loss_in_bad=1.0, rng=random.Random(3))
        model = ScheduledLoss(inner, 1.0, 2.0)
        for _ in range(1_000):
            model.should_drop(cell(), 0.0)
        # Outside the window the chain never advanced or counted.
        assert inner.offered == 0 and not inner.in_bad

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            ScheduledLoss(UniformLoss(0.1), 2.0, 1.0)


class TestCompositeLoss:
    def test_first_model_claims_the_cell(self):
        always = UniformLoss(1.0, random.Random(1))
        shadowed = UniformLoss(1.0, random.Random(2))
        model = CompositeLoss([always, shadowed])
        assert model.should_drop(cell(), 0.0)
        assert always.dropped == 1
        assert shadowed.offered == 0  # never consulted

    def test_later_models_see_survivors(self):
        never = UniformLoss(0.0)
        always = UniformLoss(1.0, random.Random(1))
        model = CompositeLoss().add(never).add(always)
        assert model.should_drop(cell(), 0.0)
        assert never.offered == 1 and always.dropped == 1

    def test_empty_composite_passes_everything(self):
        model = CompositeLoss()
        assert not any(model.should_drop(cell(), 0.0) for _ in range(10))


class TestTailLoss:
    def test_drops_only_targeted_eof_cells(self):
        model = TailLoss(VcAddress(0, 100), pdu_indices=(1,))
        assert not model.should_drop(cell(), 0.0)  # mid-frame cell
        assert not model.should_drop(eof_cell(), 0.0)  # PDU 0 survives
        assert model.should_drop(eof_cell(), 0.0)  # PDU 1 loses its tail
        assert not model.should_drop(eof_cell(), 0.0)  # PDU 2 survives
        assert model.dropped == 1

    def test_other_vcs_untouched(self):
        model = TailLoss(VcAddress(0, 100), pdu_indices=(0,))
        assert not model.should_drop(eof_cell(vci=101), 0.0)
        assert model.should_drop(eof_cell(vci=100), 0.0)
