"""Loss and corruption models: statistics and burst structure."""

import random

import pytest

from repro.atm import AtmCell, BitErrorModel, GilbertElliottLoss, UniformLoss

PAYLOAD = bytes(48)


def cell():
    return AtmCell(vpi=0, vci=100, payload=PAYLOAD)


class TestUniformLoss:
    def test_rate_converges(self, rng):
        model = UniformLoss(0.2, rng)
        n = 10_000
        drops = sum(model.should_drop(cell(), 0.0) for _ in range(n))
        assert drops / n == pytest.approx(0.2, abs=0.02)
        assert model.observed_rate == pytest.approx(drops / n)

    def test_zero_probability_never_drops(self, rng):
        model = UniformLoss(0.0, rng)
        assert not any(model.should_drop(cell(), 0.0) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformLoss(1.5)


class TestGilbertElliott:
    def test_long_run_rate_matches_steady_state(self, rng):
        model = GilbertElliottLoss(
            p_good_to_bad=0.01, p_bad_to_good=0.2, loss_in_bad=1.0, rng=rng
        )
        n = 60_000
        drops = sum(model.should_drop(cell(), 0.0) for _ in range(n))
        assert drops / n == pytest.approx(model.steady_state_loss, rel=0.15)

    def test_losses_are_bursty(self, rng):
        model = GilbertElliottLoss(
            p_good_to_bad=0.002, p_bad_to_good=0.25, loss_in_bad=1.0, rng=rng
        )
        outcomes = [model.should_drop(cell(), 0.0) for _ in range(60_000)]
        # Count loss runs; with burst loss, mean run length >> 1.
        runs, current = [], 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some loss events"
        mean_run = sum(runs) / len(runs)
        assert mean_run > 1.5  # uniform loss at same rate would be ~1.0

    def test_steady_state_formula(self):
        model = GilbertElliottLoss(0.1, 0.3, loss_in_bad=1.0)
        assert model.steady_state_loss == pytest.approx(0.1 / 0.4)

    def test_degenerate_chain(self):
        model = GilbertElliottLoss(0.0, 0.0, loss_in_bad=1.0)
        assert model.steady_state_loss == 0.0  # starts (and stays) GOOD

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(1.5, 0.5)


class TestBitError:
    def test_corruption_flips_exactly_one_bit(self):
        model = BitErrorModel(1.0, random.Random(1))
        original = cell()
        corrupted = model.maybe_corrupt(original)
        differing_bits = sum(
            bin(a ^ b).count("1")
            for a, b in zip(original.payload, corrupted.payload)
        )
        assert differing_bits == 1
        assert corrupted.meta.get("corrupted")

    def test_zero_probability_passthrough(self):
        model = BitErrorModel(0.0)
        original = cell()
        assert model.maybe_corrupt(original) is original

    def test_header_untouched(self):
        model = BitErrorModel(1.0, random.Random(2))
        original = cell()
        corrupted = model.maybe_corrupt(original)
        assert (corrupted.vpi, corrupted.vci, corrupted.pti) == (
            original.vpi,
            original.vci,
            original.pti,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BitErrorModel(-0.1)
