"""ABR rate loop: AIMD updates, turnaround, ERICA stamping, convergence."""

import pytest

from repro.atm import VcAddress
from repro.atm.link import PhysicalLink
from repro.atm.mux import OutputPort
from repro.atm.switch import AtmSwitch
from repro.nic import HostNetworkInterface, aurora_oc3, connect
from repro.tm import AbrAgent, AbrParams, EricaAllocator, RmCell
from repro.tm.experiment import _bottleneck_run
from repro.workloads.generators import GreedySource

VC = VcAddress(0, 32)


def make_agent(sim):
    nic = HostNetworkInterface(sim, aurora_oc3(), name="src")
    return nic, AbrAgent(sim, nic)


def backward(vc=VC, er=1e12, ccr=0.0, ci=False, ni=False):
    return RmCell(vc=vc, forward=False, er=er, ccr=ccr, ci=ci, ni=ni).encode()


class TestParams:
    def test_initial_rate_defaults_to_pcr_over_16(self):
        params = AbrParams(pcr=1600.0)
        assert params.initial_rate == pytest.approx(100.0)

    def test_icr_clamped_into_contract(self):
        assert AbrParams(pcr=100.0, icr=500.0).initial_rate == 100.0
        assert AbrParams(pcr=100.0, mcr=20.0, icr=1.0).initial_rate == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AbrParams(pcr=0.0)
        with pytest.raises(ValueError):
            AbrParams(pcr=10.0, mcr=20.0)
        with pytest.raises(ValueError):
            AbrParams(pcr=10.0, rif=0.0)
        with pytest.raises(ValueError):
            AbrParams(pcr=10.0, nrm=1)


class TestSourceAimd:
    def test_additive_increase_on_clean_rm(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=100.0, rif=0.1))
        agent.receive_rm_cell(backward())
        assert agent.acr_of(VC) == pytest.approx(200.0)
        assert agent.rate_increases.count == 1

    def test_multiplicative_decrease_on_ci(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=800.0, rdf=0.5))
        agent.receive_rm_cell(backward(ci=True))
        assert agent.acr_of(VC) == pytest.approx(400.0)
        assert agent.rate_decreases.count == 1

    def test_ni_freezes_the_rate(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=500.0))
        agent.receive_rm_cell(backward(ni=True))
        assert agent.acr_of(VC) == pytest.approx(500.0)

    def test_explicit_rate_caps_the_acr(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=900.0))
        agent.receive_rm_cell(backward(er=300.0))
        assert agent.acr_of(VC) == pytest.approx(300.0)

    def test_mcr_floors_every_decrease(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, mcr=50.0, icr=60.0, rdf=0.9))
        agent.receive_rm_cell(backward(ci=True, er=1.0))
        assert agent.acr_of(VC) == pytest.approx(50.0)

    def test_pacing_interval_tracks_acr(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=250.0))
        assert agent.interval_of(VC) == pytest.approx(1.0 / 250.0)
        assert agent.interval_of(VcAddress(0, 99)) is None

    def test_rm_cell_every_nrm_data_cells(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, nrm=4))
        # The first data cell primes the loop with an immediate RM cell.
        sequence = [agent.data_cell_sent(VC) is not None for _ in range(9)]
        assert sequence == [True, False, False, False, True,
                            False, False, False, True]
        assert agent.rm_sent.count == 3

    def test_forward_rm_carries_current_ccr(self, sim):
        _, agent = make_agent(sim)
        agent.add_vc(VC, AbrParams(pcr=1000.0, icr=125.0, nrm=2))
        cell = agent.data_cell_sent(VC)
        rm = RmCell.decode(cell)
        assert rm.forward
        assert rm.ccr == pytest.approx(125.0)
        assert rm.er == pytest.approx(1000.0)

    def test_malformed_rm_counted_not_raised(self, sim):
        _, agent = make_agent(sim)
        cell = backward()
        payload = bytearray(cell.payload)
        payload[3] ^= 0x55
        agent.receive_rm_cell(
            type(cell)(
                vpi=cell.vpi, vci=cell.vci,
                payload=bytes(payload), pti=cell.pti,
            )
        )
        assert agent.rm_bad.count == 1
        assert agent.rm_received.count == 0


class TestDestination:
    def test_efci_latch_sets_ci_once(self, sim):
        nic, agent = make_agent(sim)
        sent = []
        nic.inject_cell = sent.append
        data = RmCell(vc=VC).encode().with_header(pti=0b010)  # EFCI-marked
        agent.observe_cell(data)
        agent.receive_rm_cell(RmCell(vc=VC, forward=True, er=500.0).encode())
        assert len(sent) == 1
        turned = RmCell.decode(sent[0])
        assert not turned.forward
        assert turned.ci
        assert turned.er == 500.0
        # The latch clears once reported.
        agent.receive_rm_cell(RmCell(vc=VC, forward=True).encode())
        assert not RmCell.decode(sent[1]).ci

    def test_unmarked_traffic_turns_around_clean(self, sim):
        nic, agent = make_agent(sim)
        sent = []
        nic.inject_cell = sent.append
        agent.receive_rm_cell(RmCell(vc=VC, forward=True).encode())
        assert not RmCell.decode(sent[0]).ci
        assert agent.rm_turnaround.count == 1


class TestErica:
    def build(self, sim, weight_of=None, target=0.5):
        spec = aurora_oc3().link
        link = PhysicalLink(sim, spec, sink=lambda c: None, name="out")
        port = OutputPort(sim, link, name="p")
        switch = AtmSwitch(sim, [port], name="sw")
        erica = EricaAllocator(
            sim, switch, target_utilization=target,
            interval=1e-3, weight_of=weight_of,
        )
        return spec, port, switch, erica

    def test_attaches_to_switch_tm_hook(self, sim):
        _, _, switch, erica = self.build(sim)
        assert switch.tm is erica

    def test_startup_stamps_fair_share(self, sim):
        spec, port, _, erica = self.build(sim)
        cell = RmCell(vc=VC, forward=True, er=spec.cell_rate).encode()
        out = erica.on_cell(port, cell)
        rm = RmCell.decode(out)
        # One active VC, no completed window: ER = whole target rate.
        assert rm.er == pytest.approx(0.5 * spec.cell_rate)
        assert erica.rm_stamped.count == 1

    def test_weighted_split_between_active_vcs(self, sim):
        other = VcAddress(0, 33)
        weights = {VC: 3, other: 1}
        spec, port, _, erica = self.build(sim, weight_of=weights.get)
        erica.on_cell(port, RmCell(vc=other, forward=True, er=1e12).encode())
        out = erica.on_cell(
            port, RmCell(vc=VC, forward=True, er=1e12).encode()
        )
        target = 0.5 * spec.cell_rate
        assert RmCell.decode(out).er == pytest.approx(target * 3 / 4)

    def test_never_raises_er(self, sim):
        spec, port, _, erica = self.build(sim)
        cell = RmCell(vc=VC, forward=True, er=10.0).encode()
        out = erica.on_cell(port, cell)
        assert RmCell.decode(out).er == 10.0
        assert erica.rm_stamped.count == 0

    def test_backward_and_user_cells_pass_untouched(self, sim):
        _, port, _, erica = self.build(sim)
        back = RmCell(vc=VC, forward=False, er=123.0).encode()
        assert RmCell.decode(erica.on_cell(port, back)).er == 123.0
        user = RmCell(vc=VC).encode().with_header(pti=0)
        assert erica.on_cell(port, user) is user

    def test_overload_factor_scales_ccr_term(self, sim):
        spec, port, _, erica = self.build(sim)
        target = 0.5 * spec.cell_rate
        # Saturate one window at 2x the target input rate.
        n = int(2 * target * 1e-3)
        user = RmCell(vc=VC).encode().with_header(pti=0)
        for _ in range(n):
            erica.on_cell(port, user)
        sim.run(until=1.5e-3)
        ccr = target  # source currently at the whole target
        out = erica.on_cell(
            port, RmCell(vc=VC, forward=True, er=1e12, ccr=ccr).encode()
        )
        rm = RmCell.decode(out)
        # z ~= 2, so CCR/z ~= target/2; fair share (one VC) = target wins.
        assert rm.er == pytest.approx(target, rel=0.05)


class TestClosedLoop:
    def test_end_to_end_loop_reaches_destination_and_back(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b)
        a.open_vc(address=VC)
        b.open_vc(address=VC)
        src = AbrAgent(sim, a)
        dst = AbrAgent(sim, b)
        spec = aurora_oc3().link
        src.add_vc(VC, AbrParams(pcr=spec.cell_rate, icr=spec.cell_rate / 8))
        GreedySource(sim, a, VC, 1528).start()
        a.start()
        b.start()
        sim.run(until=0.005)
        assert src.rm_sent.count > 0
        assert dst.rm_turnaround.count == dst.rm_received.count > 0
        assert src.rm_received.count > 0
        assert src.rate_increases.count > 0
        # Uncongested point-to-point: the ACR climbs toward the PCR.
        assert src.acr_of(VC) > spec.cell_rate / 8

    def test_bottleneck_converges_to_weighted_fair_shares(self):
        on = _bottleneck_run(
            seed=1, closed_loop=True, duration=0.05, warmup=0.02,
            n_sources=3, buffer_cells=256, efci_threshold=64, sdu_size=1528,
        )
        assert on["utilization"] >= 0.9
        assert on["fair_dev"] <= 0.10
        assert on["peak_queue"] < 256
        assert on["dropped_full"] == 0

    def test_open_loop_collapses_at_the_same_seed(self):
        off = _bottleneck_run(
            seed=1, closed_loop=False, duration=0.05, warmup=0.02,
            n_sources=3, buffer_cells=256, efci_threshold=64, sdu_size=1528,
        )
        assert off["loss_ratio"] > 0.1
        assert off["peak_queue"] == 256
        assert off["goodput_mbps"] < 50.0


class TestFastPathParity:
    def test_closed_loop_metrics_identical_under_fast_path(self):
        kwargs = dict(
            seed=2, closed_loop=True, duration=0.02, warmup=0.01,
            n_sources=2, buffer_cells=128, efci_threshold=32, sdu_size=1528,
        )
        scalar = _bottleneck_run(fast_path=False, **kwargs)
        fast = _bottleneck_run(fast_path=True, **kwargs)
        assert scalar == fast
