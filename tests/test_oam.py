"""OAM F5 loopback: codec, reflection hardware, end-to-end ping."""

import pytest

from repro.atm import AtmCell, VcAddress
from repro.atm.cell import PTI_OAM_END_TO_END
from repro.atm.oam import LOOP_ME, LOOPED, LoopbackCell, OamFormatError
from repro.nic import HostNetworkInterface, aurora_oc3, connect


class TestCodec:
    def test_roundtrip(self):
        original = LoopbackCell(
            vc=VcAddress(0, 77),
            correlation=0xDEADBEEF,
            to_be_looped=True,
            source_id=b"workstation1",
        )
        cell = original.encode()
        assert cell.pti == PTI_OAM_END_TO_END
        assert not cell.is_user_cell
        assert LoopbackCell.decode(cell) == original

    def test_reflection_clears_indication_keeps_tag(self):
        probe = LoopbackCell(VcAddress(0, 1), correlation=42, to_be_looped=True)
        reflection = probe.reflection()
        assert not reflection.to_be_looped
        assert reflection.correlation == 42

    def test_crc_protects_payload(self):
        cell = LoopbackCell(VcAddress(0, 1), 1, True).encode()
        damaged = bytearray(cell.payload)
        damaged[10] ^= 0x01
        bad = AtmCell(
            vpi=cell.vpi, vci=cell.vci, payload=bytes(damaged), pti=cell.pti
        )
        with pytest.raises(OamFormatError):
            LoopbackCell.decode(bad)

    def test_user_cell_rejected(self):
        user = AtmCell(vpi=0, vci=1, payload=bytes(48), pti=0)
        with pytest.raises(OamFormatError):
            LoopbackCell.decode(user)

    def test_indication_values(self):
        assert LOOP_ME != LOOPED
        cell = LoopbackCell(VcAddress(0, 1), 7, False).encode()
        assert cell.payload[1] == LOOPED

    def test_field_validation(self):
        with pytest.raises(OamFormatError):
            LoopbackCell(VcAddress(0, 1), -1, True).encode()
        with pytest.raises(OamFormatError):
            LoopbackCell(VcAddress(0, 1), 1, True, source_id=b"short").encode()


class TestLoopbackPing:
    def build(self, sim, propagation=0.0):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b, propagation_delay=propagation)
        vc = a.open_vc()
        b.open_vc(address=vc.address)
        return a, b, vc.address

    def test_ping_measures_rtt(self, sim):
        a, b, vc = self.build(sim)
        rtts = []

        def pinger():
            rtts.append((yield a.oam_ping(vc)))

        sim.process(pinger())
        sim.run(until=0.01)
        assert len(rtts) == 1
        # Two cell serializations + engine handling: a handful of us.
        assert 4e-6 < rtts[0] < 50e-6
        assert b.oam_reflections == 1

    def test_propagation_shows_up_in_rtt(self, sim):
        a, b, vc = self.build(sim, propagation=100e-6)
        rtts = []

        def pinger():
            rtts.append((yield a.oam_ping(vc)))

        sim.process(pinger())
        sim.run(until=0.01)
        assert rtts[0] > 200e-6

    def test_ping_bypasses_both_hosts(self, sim):
        a, b, vc = self.build(sim)

        def pinger():
            yield a.oam_ping(vc)

        sim.process(pinger())
        sim.run(until=0.01)
        assert b.cpu.total_cycles == 0
        assert b.interrupts.raised.count == 0

    def test_oam_cells_do_not_disturb_reassembly(self, sim):
        a, b, vc = self.build(sim)
        received = []
        b.on_pdu = received.append
        payload = bytes(1000)

        def mixed():
            # Interleave a ping between data PDUs.
            yield a.send(vc, payload)
            yield a.oam_ping(vc)
            yield a.send(vc, payload)

        sim.process(mixed())
        sim.run(until=0.02)
        assert [c.sdu for c in received] == [payload, payload]
        assert b.stats().pdus_discarded == 0

    def test_ping_requires_open_vc(self, sim):
        a, b, vc = self.build(sim)
        with pytest.raises(ValueError):
            a.oam_ping(VcAddress(0, 999))

    def test_corrupted_oam_cell_counted(self, sim):
        a, b, vc = self.build(sim)
        cell = LoopbackCell(vc, 1, True).encode()
        damaged = bytearray(cell.payload)
        damaged[5] ^= 0xFF
        b.rx_engine.receive_cell(
            AtmCell(vpi=vc.vpi, vci=vc.vci, payload=bytes(damaged), pti=cell.pti)
        )
        b.start()
        sim.run(until=0.01)
        assert b.oam_bad_cells == 1
        assert b.oam_reflections == 0

    def test_concurrent_pings_resolve_by_correlation(self, sim):
        a, b, vc = self.build(sim)
        results = {}

        def pinger(tag):
            results[tag] = (yield a.oam_ping(vc))

        for tag in ("x", "y", "z"):
            sim.process(pinger(tag))
        sim.run(until=0.01)
        assert set(results) == {"x", "y", "z"}
        assert all(r > 0 for r in results.values())
