"""Cell taps and the cell-delay-variation story they tell."""

import pytest

from repro.atm import AtmCell, PhysicalLink, STS3C_155, VcAddress
from repro.atm.tap import CellTap
from repro.nic import HostNetworkInterface, aurora_oc3
from repro.workloads import GreedySource

PAYLOAD = bytes(48)


class TestTapMechanics:
    def test_transparent_passthrough(self, sim):
        delivered = []
        tap = CellTap(sim, delivered.append)
        cell = AtmCell(vpi=0, vci=100, payload=PAYLOAD)
        tap.receive_cell(cell)
        assert delivered == [cell]
        assert tap.cells_seen == 1

    def test_gap_statistics_per_vc(self, sim):
        tap = CellTap(sim, lambda c: None)

        def feeder():
            for i in range(4):
                tap.receive_cell(AtmCell(vpi=0, vci=100, payload=PAYLOAD))
                tap.receive_cell(AtmCell(vpi=0, vci=200, payload=PAYLOAD))
                yield sim.timeout(1e-3)

        sim.process(feeder())
        sim.run()
        for vci in (100, 200):
            stats = tap.gap_stats(VcAddress(0, vci))
            assert stats.n == 3
            assert stats.mean == pytest.approx(1e-3)
            assert tap.jitter(VcAddress(0, vci)) == pytest.approx(0.0, abs=1e-12)

    def test_no_stats_for_single_cell(self, sim):
        tap = CellTap(sim, lambda c: None)
        tap.receive_cell(AtmCell(vpi=0, vci=100, payload=PAYLOAD))
        assert tap.gap_stats(VcAddress(0, 100)) is None
        assert tap.peak_to_peak_cdv(VcAddress(0, 100)) == 0.0

    def test_observed_vcs(self, sim):
        tap = CellTap(sim, lambda c: None)
        tap.receive_cell(AtmCell(vpi=0, vci=100, payload=PAYLOAD))
        tap.receive_cell(AtmCell(vpi=1, vci=200, payload=PAYLOAD))
        assert set(tap.observed_vcs()) == {VcAddress(0, 100), VcAddress(1, 200)}


class TestCdvOfPacedTraffic:
    def test_paced_vc_has_zero_jitter_within_pdus(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        tap = CellTap(sim, lambda c: None)
        link = PhysicalLink(sim, STS3C_155, sink=tap)
        nic.attach_tx_link(link)
        vc = nic.open_vc(peak_rate_bps=20e6)
        GreedySource(sim, nic, vc.address, 9180, total_pdus=2).start()
        sim.run(until=0.1)

        stats = tap.gap_stats(vc.address)
        assert stats is not None and stats.n > 100
        # Never faster than the contract...
        assert tap.conforms_to_rate(vc.address, 20e6)
        # ...and the common gap IS the contract interval.
        assert stats.minimum == pytest.approx(424 / 20e6, rel=1e-6)

    def test_unpaced_vc_runs_at_link_spacing(self, sim):
        nic = HostNetworkInterface(sim, aurora_oc3(), name="tx")
        tap = CellTap(sim, lambda c: None)
        link = PhysicalLink(sim, STS3C_155, sink=tap)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        GreedySource(sim, nic, vc.address, 9180, total_pdus=2).start()
        sim.run(until=0.1)
        stats = tap.gap_stats(vc.address)
        assert stats.minimum == pytest.approx(STS3C_155.cell_time, rel=1e-6)
        # Faster than any sub-link contract would allow.
        assert not tap.conforms_to_rate(vc.address, 20e6)

    def test_multiplexing_introduces_cdv(self, sim):
        """Two senders through one output port: contention jitters both."""
        from repro.atm import OutputPort
        from repro.aal.aal5 import Aal5Segmenter

        tap = CellTap(sim, lambda c: None)
        out_link = PhysicalLink(sim, STS3C_155, sink=tap)
        port = OutputPort(sim, out_link, buffer_cells=512)

        def stream(vci, period_slots):
            segmenter = Aal5Segmenter(VcAddress(0, vci))
            for _ in range(5):
                for cell in segmenter.segment(bytes(2000)):
                    port.offer(cell)
                    # Each stream alone is perfectly periodic.
                    yield sim.timeout(period_slots * STS3C_155.cell_time)

        # Non-commensurate periods: the streams' phases drift through
        # each other, so queueing delay at the shared port varies.
        sim.process(stream(100, 2.0))
        sim.process(stream(200, 1.7))
        sim.run()
        # Each stream alone is regular; multiplexed through the shared
        # port, at least one sees delay variation.
        cdv = max(
            tap.peak_to_peak_cdv(VcAddress(0, 100)),
            tap.peak_to_peak_cdv(VcAddress(0, 200)),
        )
        assert cdv > 1e-7
