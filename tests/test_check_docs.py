"""Unit tests for the documentation checks behind ``repro lint --docs``.

Covers the DOC101 docstring invariant and the DOC102 broken-link
detector against synthetic repositories built in ``tmp_path``, plus
the real-tree guarantees: the shipped repo passes, and both the
``tools/check_docs.py`` shim and ``python -m repro lint --docs`` stay
wired to the same implementation.
"""

import subprocess
import sys
from pathlib import Path

from repro.devtools.docs import broken_links, check_docs, main, missing_docstrings

REPO = Path(__file__).resolve().parents[1]


def make_repo(tmp_path, *, docstring=True, link_target_exists=True):
    """Build a minimal src-layout repo with one module and one doc."""
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    body = '"""A documented module."""\n' if docstring else ""
    (src / "mod.py").write_text(body + "VALUE = 1\n")
    if link_target_exists:
        (tmp_path / "TARGET.md").write_text("# Target\n")
    (tmp_path / "README.md").write_text(
        "# Test repo\n"
        "\n"
        "A [relative link](TARGET.md) and a [web link](https://example.com).\n"
        "\n"
        "```text\n"
        "[links inside fences](NOWHERE.md) are ignored\n"
        "```\n"
        "\n"
        "Same-file [anchor](#test-repo) is fine.\n"
    )
    return tmp_path


def test_clean_synthetic_repo_passes(tmp_path):
    repo = make_repo(tmp_path)
    assert check_docs(repo) == []
    assert main(repo) == 0


def test_missing_docstring_is_doc101(tmp_path):
    repo = make_repo(tmp_path, docstring=False)
    findings = missing_docstrings(repo / "src" / "repro", repo)
    assert [f.rule for f in findings] == ["DOC101"]
    assert findings[0].path == "src/repro/mod.py"
    assert main(repo) == 1


def test_broken_relative_link_is_doc102(tmp_path):
    repo = make_repo(tmp_path, link_target_exists=False)
    findings = broken_links(repo)
    assert [f.rule for f in findings] == ["DOC102"]
    assert findings[0].path == "README.md"
    assert "TARGET.md" in findings[0].message
    # The fenced NOWHERE.md link and the web/anchor links never count.
    assert all("NOWHERE" not in f.message for f in findings)
    assert main(repo) == 1


def test_fragment_only_and_external_links_ignored(tmp_path):
    repo = make_repo(tmp_path)
    (repo / "docs").mkdir()
    (repo / "docs" / "EXTRA.md").write_text(
        "See [the readme](../README.md) and [a site](http://example.org).\n"
    )
    assert broken_links(repo) == []


def test_line_numbers_survive_fence_stripping(tmp_path):
    repo = make_repo(tmp_path)
    (repo / "docs").mkdir()
    (repo / "docs" / "LINES.md").write_text(
        "# Lines\n"
        "\n"
        "```\n"
        "fence line\n"
        "```\n"
        "\n"
        "[broken](missing.md)\n"
    )
    findings = broken_links(repo)
    assert [(f.path, f.line) for f in findings] == [("docs/LINES.md", 7)]


def test_shipped_repo_docs_are_clean():
    assert check_docs(REPO) == [], [f.format() for f in check_docs(REPO)]


def _run(cmd):
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_shim_and_unified_entry_point_agree():
    shim = _run([sys.executable, "tools/check_docs.py"])
    unified = _run([sys.executable, "-m", "repro", "lint", "--docs"])
    assert shim.returncode == 0, shim.stdout + shim.stderr
    assert unified.returncode == 0, unified.stdout + unified.stderr
    assert "docs check OK" in shim.stdout


class TestDoc103CliDrift:
    """DOC103: documented CLI invocations must parse against the registry."""

    @staticmethod
    def _drift(tmp_path, block):
        from repro.devtools.docs import cli_drift

        repo = make_repo(tmp_path)
        (repo / "docs").mkdir()
        (repo / "docs" / "CLI.md").write_text("# CLI\n\n" + block)
        return cli_drift(repo)

    def test_valid_invocations_pass(self, tmp_path):
        findings = self._drift(
            tmp_path,
            "```bash\n"
            "PYTHONPATH=src python -m repro --list\n"
            "python -m repro T1 F2 --workers 4   # comment is cut\n"
            "python -m repro bench --check\n"
            "python -m repro trace f2 --out trace.json | head\n"
            "python -m repro lint --docs\n"
            "```\n",
        )
        assert findings == []

    def test_unknown_experiment_id_is_doc103(self, tmp_path):
        findings = self._drift(
            tmp_path, "```console\npython -m repro ZZ9\n```\n"
        )
        assert [f.rule for f in findings] == ["DOC103"]
        assert "ZZ9" in findings[0].message

    def test_unknown_flag_and_scenario_are_doc103(self, tmp_path):
        findings = self._drift(
            tmp_path,
            "```bash\n"
            "python -m repro bench --frobnicate\n"
            "python -m repro trace no-such-scenario\n"
            "```\n",
        )
        assert [f.rule for f in findings] == ["DOC103", "DOC103"]

    def test_text_fences_and_prose_are_exempt(self, tmp_path):
        findings = self._drift(
            tmp_path,
            "Prose mentioning python -m repro NOT-CHECKED is fine.\n"
            "\n"
            "```text\n"
            "python -m repro trace <experiment> [--out PATH]\n"
            "```\n",
        )
        assert findings == []

    def test_shipped_docs_have_checkable_invocations(self):
        # The rule only means something if the real docs exercise it.
        from repro.devtools.docs import (
            _REPRO_CMD,
            doc_files,
            iter_command_lines,
        )

        checked = 0
        for doc in doc_files(REPO):
            for _lineno, line in iter_command_lines(
                doc.read_text(encoding="utf-8")
            ):
                if _REPRO_CMD.search(line):
                    checked += 1
        assert checked >= 10


class TestDocEntryPointDrift:
    """PR 3 made tools/check_docs.py a shim; docs must say so."""

    def test_docs_name_the_unified_entry_point(self):
        docs = [REPO / "README.md", REPO / "docs" / "STATIC_ANALYSIS.md"]
        for doc in docs:
            assert "repro lint --docs" in doc.read_text(encoding="utf-8"), (
                f"{doc.name} no longer names the supported docs entry point"
            )

    def test_shim_is_only_ever_described_as_a_shim(self):
        from repro.devtools.docs import doc_files

        for doc in doc_files(REPO) + [REPO / "DESIGN.md"]:
            if not doc.exists() or doc.name in ("CHANGES.md", "ISSUE.md"):
                continue  # the changelog records history, not guidance
            for lineno, line in enumerate(
                doc.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if "tools/check_docs.py" in line:
                    assert "shim" in line, (
                        f"{doc.name}:{lineno} presents tools/check_docs.py "
                        "as an entry point; name 'repro lint --docs' instead"
                    )
