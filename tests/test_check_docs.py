"""Unit tests for the documentation checks behind ``repro lint --docs``.

Covers the DOC101 docstring invariant and the DOC102 broken-link
detector against synthetic repositories built in ``tmp_path``, plus
the real-tree guarantees: the shipped repo passes, and both the
``tools/check_docs.py`` shim and ``python -m repro lint --docs`` stay
wired to the same implementation.
"""

import subprocess
import sys
from pathlib import Path

from repro.devtools.docs import broken_links, check_docs, main, missing_docstrings

REPO = Path(__file__).resolve().parents[1]


def make_repo(tmp_path, *, docstring=True, link_target_exists=True):
    """Build a minimal src-layout repo with one module and one doc."""
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    body = '"""A documented module."""\n' if docstring else ""
    (src / "mod.py").write_text(body + "VALUE = 1\n")
    if link_target_exists:
        (tmp_path / "TARGET.md").write_text("# Target\n")
    (tmp_path / "README.md").write_text(
        "# Test repo\n"
        "\n"
        "A [relative link](TARGET.md) and a [web link](https://example.com).\n"
        "\n"
        "```text\n"
        "[links inside fences](NOWHERE.md) are ignored\n"
        "```\n"
        "\n"
        "Same-file [anchor](#test-repo) is fine.\n"
    )
    return tmp_path


def test_clean_synthetic_repo_passes(tmp_path):
    repo = make_repo(tmp_path)
    assert check_docs(repo) == []
    assert main(repo) == 0


def test_missing_docstring_is_doc101(tmp_path):
    repo = make_repo(tmp_path, docstring=False)
    findings = missing_docstrings(repo / "src" / "repro", repo)
    assert [f.rule for f in findings] == ["DOC101"]
    assert findings[0].path == "src/repro/mod.py"
    assert main(repo) == 1


def test_broken_relative_link_is_doc102(tmp_path):
    repo = make_repo(tmp_path, link_target_exists=False)
    findings = broken_links(repo)
    assert [f.rule for f in findings] == ["DOC102"]
    assert findings[0].path == "README.md"
    assert "TARGET.md" in findings[0].message
    # The fenced NOWHERE.md link and the web/anchor links never count.
    assert all("NOWHERE" not in f.message for f in findings)
    assert main(repo) == 1


def test_fragment_only_and_external_links_ignored(tmp_path):
    repo = make_repo(tmp_path)
    (repo / "docs").mkdir()
    (repo / "docs" / "EXTRA.md").write_text(
        "See [the readme](../README.md) and [a site](http://example.org).\n"
    )
    assert broken_links(repo) == []


def test_line_numbers_survive_fence_stripping(tmp_path):
    repo = make_repo(tmp_path)
    (repo / "docs").mkdir()
    (repo / "docs" / "LINES.md").write_text(
        "# Lines\n"
        "\n"
        "```\n"
        "fence line\n"
        "```\n"
        "\n"
        "[broken](missing.md)\n"
    )
    findings = broken_links(repo)
    assert [(f.path, f.line) for f in findings] == [("docs/LINES.md", 7)]


def test_shipped_repo_docs_are_clean():
    assert check_docs(REPO) == [], [f.format() for f in check_docs(REPO)]


def _run(cmd):
    return subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_shim_and_unified_entry_point_agree():
    shim = _run([sys.executable, "tools/check_docs.py"])
    unified = _run([sys.executable, "-m", "repro", "lint", "--docs"])
    assert shim.returncode == 0, shim.stdout + shim.stderr
    assert unified.returncode == 0, unified.stdout + unified.stderr
    assert "docs check OK" in shim.stdout
