"""System bus: transfer timing, bursts, arbitration fairness."""

import pytest

from repro.host import BusSpec, SystemBus, TURBOCHANNEL


class TestBusSpec:
    def test_peak_bandwidth(self):
        assert TURBOCHANNEL.peak_bandwidth_bps == pytest.approx(800e6)

    def test_words_round_up(self):
        assert TURBOCHANNEL.words_for(1) == 1
        assert TURBOCHANNEL.words_for(4) == 1
        assert TURBOCHANNEL.words_for(5) == 2
        assert TURBOCHANNEL.words_for(0) == 0

    def test_transfer_time_includes_burst_setups(self):
        # 128-word bursts, 6 setup cycles each.
        spec = TURBOCHANNEL
        one_burst = spec.transfer_time(128 * 4)
        assert one_burst == pytest.approx((128 + 6) * spec.cycle_time)
        two_bursts = spec.transfer_time(129 * 4)
        assert two_bursts == pytest.approx((129 + 12) * spec.cycle_time)

    def test_zero_bytes_is_free(self):
        assert TURBOCHANNEL.transfer_time(0) == 0.0

    def test_effective_bandwidth_below_peak(self):
        eff = TURBOCHANNEL.effective_bandwidth_bps(9180)
        assert 0 < eff < TURBOCHANNEL.peak_bandwidth_bps

    def test_effective_bandwidth_improves_with_size(self):
        assert TURBOCHANNEL.effective_bandwidth_bps(
            64
        ) < TURBOCHANNEL.effective_bandwidth_bps(8192)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusSpec("bad", 0.0, 4, 6, 128)
        with pytest.raises(ValueError):
            BusSpec("bad", 1e6, 3, 6, 128)
        with pytest.raises(ValueError):
            BusSpec("bad", 1e6, 4, -1, 128)
        with pytest.raises(ValueError):
            BusSpec("bad", 1e6, 4, 6, 0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TURBOCHANNEL.words_for(-1)


class TestSystemBus:
    def test_single_transfer_duration(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        finished = []

        def master():
            yield bus.transfer(512, master="a")
            finished.append(sim.now)

        sim.process(master())
        sim.run()
        assert finished[0] == pytest.approx(TURBOCHANNEL.transfer_time(512))

    def test_two_masters_serialize(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        finished = {}

        def master(name, nbytes):
            yield bus.transfer(nbytes, master=name)
            finished[name] = sim.now

        sim.process(master("a", 512))
        sim.process(master("b", 512))
        sim.run()
        expected = TURBOCHANNEL.transfer_time(512)
        assert finished["a"] == pytest.approx(expected)
        assert finished["b"] == pytest.approx(2 * expected)

    def test_burst_interleaving_bounds_latency(self, sim):
        # A short transfer slots in between a long transfer's bursts
        # rather than waiting for the whole thing.
        bus = SystemBus(sim, TURBOCHANNEL)
        finished = {}

        def master(name, nbytes, start=0.0):
            if start:
                yield sim.timeout(start)
            yield bus.transfer(nbytes, master=name)
            finished[name] = sim.now

        long_bytes = 128 * 4 * 10  # ten bursts
        sim.process(master("long", long_bytes))
        sim.process(master("short", 64, start=1e-9))
        sim.run()
        assert finished["short"] < finished["long"]

    def test_accounting_per_master(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)

        def master(name, nbytes):
            yield bus.transfer(nbytes, master=name)

        sim.process(master("dma-tx", 1000))
        sim.process(master("dma-rx", 500))
        sim.run()
        assert bus.bytes_by_master == {"dma-tx": 1000, "dma-rx": 500}
        assert bus.bytes_moved.count == 1500
        assert bus.transactions.count == 2

    def test_utilization(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)

        def master():
            yield bus.transfer(4096)

        sim.process(master())
        sim.run()
        busy = TURBOCHANNEL.transfer_time(4096)
        assert bus.utilization(busy) == pytest.approx(1.0)
        assert bus.utilization(2 * busy) == pytest.approx(0.5)

    def test_zero_byte_transfer_completes(self, sim):
        bus = SystemBus(sim, TURBOCHANNEL)
        done = []

        def master():
            yield bus.transfer(0)
            done.append(True)

        sim.process(master())
        sim.run()
        assert done == [True]
