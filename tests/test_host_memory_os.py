"""Host memory management and OS cost model."""

import pytest

from repro.host import (
    Buffer,
    BufferPool,
    HostCpu,
    HostMemory,
    HostOs,
    OsCostModel,
    R3000_25MHZ,
)
from repro.host.memory import BufferChain
from repro.sim import Simulator


class TestBuffer:
    def test_write_within_capacity(self):
        buf = Buffer(1, capacity=10)
        buf.write(b"hello")
        assert buf.used == 5
        assert buf.data == b"hello"

    def test_write_overflow_rejected(self):
        with pytest.raises(ValueError):
            Buffer(1, capacity=4).write(b"hello")

    def test_append(self):
        buf = Buffer(1, capacity=10)
        buf.append(b"ab")
        buf.append(b"cd")
        assert buf.data == b"abcd"
        with pytest.raises(ValueError):
            buf.append(b"x" * 7)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Buffer(1, capacity=-1)
        with pytest.raises(ValueError):
            Buffer(1, capacity=2, data=b"abc")


class TestBufferPool:
    def test_allocate_until_exhausted(self):
        pool = BufferPool(slot_size=100, slots=2)
        a = pool.allocate()
        b = pool.allocate()
        assert a is not None and b is not None
        assert pool.allocate() is None
        assert pool.failures == 1
        assert pool.free_slots == 0

    def test_release_recycles(self):
        pool = BufferPool(slot_size=100, slots=1)
        buf = pool.allocate()
        buf.write(b"data")
        pool.release(buf)
        again = pool.allocate()
        assert again is not None
        assert again.data == b""  # scrubbed

    def test_low_water_mark(self):
        pool = BufferPool(slot_size=10, slots=4)
        bufs = [pool.allocate() for _ in range(3)]
        for buf in bufs:
            pool.release(buf)
        assert pool.low_water == 1

    def test_over_release_rejected(self):
        pool = BufferPool(slot_size=10, slots=1)
        buf = pool.allocate()
        pool.release(buf)
        with pytest.raises(RuntimeError):
            pool.release(buf)

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(slot_size=0, slots=1)


class TestHostMemory:
    def test_reserve_and_query(self):
        mem = HostMemory(total_bytes=1000)
        mem.reserve("rx", 400)
        assert mem.region_size("rx") == 400
        assert mem.available == 600

    def test_oversubscription_rejected(self):
        mem = HostMemory(total_bytes=1000)
        mem.reserve("a", 800)
        with pytest.raises(MemoryError):
            mem.reserve("b", 300)

    def test_resize_region(self):
        mem = HostMemory(total_bytes=1000)
        mem.reserve("a", 800)
        mem.reserve("a", 100)  # shrink is fine
        assert mem.reserved == 100

    def test_regions_iteration(self):
        mem = HostMemory(total_bytes=1000)
        mem.reserve("a", 1)
        mem.reserve("b", 2)
        assert dict(mem.regions()) == {"a": 1, "b": 2}


class TestBufferChain:
    def test_chain_linearises(self):
        chain = BufferChain()
        for piece in (b"ab", b"cd", b"ef"):
            buf = Buffer(1, capacity=10)
            buf.write(piece)
            chain.add(buf)
        assert chain.total_bytes == 6
        assert chain.contiguous() == b"abcdef"
        assert len(chain) == 3


class TestOsCostModel:
    def test_send_path_formula(self):
        costs = OsCostModel()
        expected = 500 + 150 + 0.75 * 1000 + 200
        assert costs.send_path_cycles(1000) == pytest.approx(expected)

    def test_zero_copy_removes_byte_term(self):
        costs = OsCostModel()
        assert costs.send_path_cycles(1000, copies=0) == pytest.approx(850)

    def test_receive_path_split_is_consistent(self):
        costs = OsCostModel()
        assert costs.receive_path_cycles(500) == pytest.approx(
            costs.driver_rx_cycles + costs.post_interrupt_receive_cycles(500)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OsCostModel(syscall_cycles=-1)
        with pytest.raises(ValueError):
            OsCostModel(copy_cycles_per_byte=-0.5)


class TestHostOs:
    def test_send_charges_cpu(self):
        sim = Simulator()
        cpu = HostCpu(sim, R3000_25MHZ)
        os_model = HostOs(cpu)

        def body():
            yield os_model.send(1000)

        sim.process(body())
        sim.run()
        assert cpu.cycles_for("os-send") == pytest.approx(
            OsCostModel().send_path_cycles(1000)
        )
        assert os_model.pdus_sent == 1

    def test_receive_post_interrupt_excludes_driver(self):
        sim = Simulator()
        cpu = HostCpu(sim, R3000_25MHZ)
        os_model = HostOs(cpu)

        def body():
            yield os_model.receive_post_interrupt(1000)

        sim.process(body())
        sim.run()
        assert cpu.cycles_for("os-receive") == pytest.approx(
            OsCostModel().post_interrupt_receive_cycles(1000)
        )

    def test_copy_count_validation(self):
        cpu = HostCpu(Simulator(), R3000_25MHZ)
        with pytest.raises(ValueError):
            HostOs(cpu, copies_per_send=-1)
