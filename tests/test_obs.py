"""Observability layer: tracing, metrics registry, cycle profiler."""

import io
import json
import time

import pytest

from repro.nic.config import aurora_oc3
from repro.nic.costs import CellPosition
from repro.nic.fifo import CellFifo
from repro.obs import (
    DROP_REASONS,
    EVENT_TAXONOMY,
    CycleProfiler,
    MetricsRegistry,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.runner import TRACEABLE, run_traced
from repro.results.experiments import lab_host, run_o1
from repro.results.tables import format_csv
from repro.sim.core import Simulator
from repro.workloads.generators import GreedySource
from repro.workloads.scenarios import build_point_to_point


def traced_point_to_point(sim, recorder, sdu_size=4096, total_pdus=3):
    scenario = build_point_to_point(sim, lab_host(aurora_oc3()))
    GreedySource(
        sim, scenario.sender, scenario.vc, sdu_size, total_pdus=total_pdus
    ).start()
    if recorder is not None:
        scenario.sender.attach_trace(recorder)
        scenario.receiver.attach_trace(recorder)
    return scenario


class TestTraceRecorder:
    def test_emit_records_identity_and_args(self, sim):
        recorder = TraceRecorder(sim)
        recorder.emit("tx.pdu.posted", actor="tx", pdu_id=7, size=4096)
        assert len(recorder) == 1
        event = recorder.events[0]
        assert event.name == "tx.pdu.posted"
        assert event.pdu_id == 7
        assert event.args["size"] == 4096
        assert event.ts == sim.now

    def test_unknown_event_name_rejected(self, sim):
        recorder = TraceRecorder(sim)
        with pytest.raises(ValueError):
            recorder.emit("no.such.event", actor="x")

    def test_disabled_recorder_records_nothing(self, sim):
        recorder = TraceRecorder(sim, enabled=False)
        recorder.emit("tx.pdu.posted", actor="tx", pdu_id=1)
        assert len(recorder) == 0

    def test_pipeline_untraced_by_default(self, sim):
        scenario = traced_point_to_point(sim, recorder=None)
        sim.run(until=2e-3)
        assert scenario.received
        for nic in (scenario.sender, scenario.receiver):
            assert nic.tx_engine.trace is None
            assert nic.rx_engine.trace is None

    def test_full_pipeline_emits_lifecycle(self, sim):
        recorder = TraceRecorder(sim)
        scenario = traced_point_to_point(sim, recorder)
        sim.run(until=2e-3)
        assert scenario.received
        names = {e.name for e in recorder.events}
        for expected in (
            "tx.pdu.posted",
            "tx.cell.sar",
            "fifo.enq",
            "fifo.deq",
            "link.cell.sent",
            "link.cell.delivered",
            "rx.cam.hit",
            "rx.cell.sar",
            "rx.pdu.done",
            "dma.start",
            "dma.done",
            "host.pdu.delivered",
            "engine.work",
        ):
            assert expected in names, expected
        # Every cell id seen on receive was minted on transmit.
        sar_tx = {e.cell_id for e in recorder.by_name("tx.cell.sar")}
        sar_rx = {e.cell_id for e in recorder.by_name("rx.cell.sar")}
        assert sar_rx and sar_rx <= sar_tx

    def test_for_cell_follows_one_cell_through(self, sim):
        recorder = TraceRecorder(sim)
        traced_point_to_point(sim, recorder)
        sim.run(until=2e-3)
        cell_id = recorder.by_name("tx.cell.sar")[0].cell_id
        journey = [e.name for e in recorder.for_cell(cell_id)]
        assert journey.index("tx.cell.sar") < journey.index("link.cell.sent")
        assert journey.index("link.cell.sent") < journey.index("rx.cell.sar")

    def test_taxonomy_covers_all_emitted_names(self, sim):
        recorder = TraceRecorder(sim)
        traced_point_to_point(sim, recorder)
        sim.run(until=2e-3)
        assert {e.name for e in recorder.events} <= set(EVENT_TAXONOMY)


class TestDropReasons:
    def test_fifo_overflow_drop_traced(self, sim):
        recorder = TraceRecorder(sim)
        fifo = CellFifo(sim, depth_cells=1, name="tiny")
        fifo.trace = recorder

        class FakeCell:
            meta = {}
            vpi, vci = 0, 1

        assert fifo.try_put(FakeCell()) is True
        assert fifo.try_put(FakeCell()) is False
        assert recorder.drop_reasons() == {"fifo_overflow": 1}

    def test_lossy_run_names_every_drop(self):
        run = run_traced("r1", duration=2e-3)
        drops = run.recorder.drop_reasons()
        assert drops, "a 2% lossy overload must drop something"
        assert set(drops) <= set(DROP_REASONS)
        assert "link_lost" in drops


class TestExporters:
    def test_jsonl_round_trip(self, sim):
        recorder = TraceRecorder(sim)
        traced_point_to_point(sim, recorder)
        sim.run(until=1e-3)
        buffer = io.StringIO()
        count = recorder.export_jsonl(buffer)
        assert count == len(recorder)
        parsed = read_jsonl(io.StringIO(buffer.getvalue()))
        assert parsed == recorder.events

    def test_jsonl_event_fields_survive(self):
        events = [
            TraceEvent(
                ts=1.5e-6,
                name="cell.drop",
                actor="rx",
                cell_id=3,
                pdu_id=2,
                vc="0.100",
                args={"reason": "hec"},
            )
        ]
        buffer = io.StringIO()
        write_jsonl(events, buffer)
        assert read_jsonl(io.StringIO(buffer.getvalue())) == events

    def test_chrome_trace_structure(self, sim):
        recorder = TraceRecorder(sim)
        traced_point_to_point(sim, recorder)
        sim.run(until=1e-3)
        buffer = io.StringIO()
        write_chrome_trace(recorder.events, buffer)
        document = json.loads(buffer.getvalue())
        assert isinstance(document["traceEvents"], list)
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "M" in phases  # thread names
        assert "i" in phases  # instants
        assert "X" in phases  # engine.work slices
        for entry in document["traceEvents"]:
            assert entry["pid"] == 1
            if entry["ph"] != "M":  # metadata records carry no timestamp
                assert isinstance(entry["ts"], (int, float))

    def test_chrome_counter_tracks_fifo_occupancy(self, sim):
        recorder = TraceRecorder(sim)
        traced_point_to_point(sim, recorder)
        sim.run(until=1e-3)
        buffer = io.StringIO()
        write_chrome_trace(recorder.events, buffer)
        counters = [
            e
            for e in json.loads(buffer.getvalue())["traceEvents"]
            if e["ph"] == "C"
        ]
        assert counters
        assert all("occupancy" in c["name"] for c in counters)


class TestTracingOverhead:
    def test_disabled_tracing_adds_no_events_and_little_time(self):
        def one_run(recorder):
            sim = Simulator()
            scenario = traced_point_to_point(
                sim, recorder, sdu_size=9180, total_pdus=20
            )
            sim.run(until=2e-2)
            return scenario

        # Warm both paths, then time them.
        one_run(None)
        started = time.perf_counter()
        baseline = one_run(None)
        base_elapsed = time.perf_counter() - started

        disabled = TraceRecorder(Simulator(), enabled=False)
        started = time.perf_counter()
        traced = one_run(disabled)
        disabled_elapsed = time.perf_counter() - started

        assert len(disabled) == 0
        assert len(traced.received) == len(baseline.received)
        # Measured locally at <5%; the bound is loose for noisy CI boxes.
        assert disabled_elapsed < base_elapsed * 1.5 + 0.05


class TestMetricsRegistry:
    def test_register_read_snapshot(self, sim):
        registry = MetricsRegistry(sim)
        registry.counter("a.count", lambda: 3, unit="events")
        registry.gauge("a.level", lambda: 0.5)
        assert "a.count" in registry
        assert len(registry) == 2
        assert registry.read("a.count") == 3
        assert registry.snapshot() == {"a.count": 3, "a.level": 0.5}

    def test_duplicate_and_bad_kind_rejected(self, sim):
        registry = MetricsRegistry(sim)
        registry.gauge("x", lambda: 1)
        with pytest.raises(ValueError):
            registry.gauge("x", lambda: 2)
        with pytest.raises(ValueError):
            registry.register("y", lambda: 1, kind="not-a-kind")

    def test_sampling_builds_time_series(self, sim):
        registry = MetricsRegistry(sim)
        ticks = []
        registry.gauge("ticks", lambda: float(len(ticks)))
        registry.start_sampling(1e-3)

        def pump():
            while True:
                yield sim.timeout(4e-4)
                ticks.append(sim.now)

        sim.process(pump())
        sim.run(until=1e-2)
        series = registry.series["ticks"]
        assert registry.samples_taken >= 9
        assert series.values[0] == 0.0
        assert series.values[-1] > series.values[0]

    def test_csv_and_json_exports_parse(self, sim):
        registry = MetricsRegistry(sim)
        registry.gauge("g", lambda: sim.now)
        registry.start_sampling(1e-3)
        sim.run(until=5e-3)
        doc = json.loads(registry.to_json())
        assert doc["metrics"][0]["name"] == "g"
        assert doc["series"]["g"]["times"]
        lines = registry.to_csv().strip().splitlines()
        assert lines[0] == "t,g"
        assert len(lines) == registry.samples_taken + 1

    def test_histogram_is_snapshot_only(self, sim):
        registry = MetricsRegistry(sim)
        registry.histogram("h", lambda: {"p50": 1.0})
        registry.sample()
        assert "h" not in registry.series
        assert registry.snapshot()["h"] == {"p50": 1.0}

    def test_instrument_dispatches_on_type(self, sim):
        from repro.atm.link import PhysicalLink
        from repro.obs import instrument

        registry = MetricsRegistry(sim)
        link = PhysicalLink(sim, aurora_oc3().link, name="wire")
        instrument(registry, link)
        assert "link.cells_sent" in registry

    def test_instrument_unknown_type_names_known_ones(self, sim):
        from repro.obs import instrument

        with pytest.raises(TypeError, match="PhysicalLink"):
            instrument(MetricsRegistry(sim), object())

    def test_deprecated_aliases_warn_and_still_work(self, sim):
        from repro.atm.link import PhysicalLink
        from repro.obs import instrument_link

        registry = MetricsRegistry(sim)
        link = PhysicalLink(sim, aurora_oc3().link, name="wire")
        with pytest.warns(DeprecationWarning, match="instrument_link"):
            instrument_link(registry, link)
        assert "link.cells_sent" in registry

    def test_r1_campaign_metrics_account_for_loss(self):
        run = run_traced("r1", duration=2e-3)
        snap = run.registry.snapshot()
        assert snap["link.cells_lost"] > 0
        in_flight = (
            snap["link.cells_sent"]
            - snap["link.cells_delivered"]
            - snap["link.cells_lost"]
        )
        assert 0 <= in_flight <= 2  # mid-run snapshot: <= one cell serializing
        # The auditor's ledger is registered and balances.
        assert snap["audit.unaccounted"] == 0
        assert isinstance(snap["audit.breakdown"], dict)
        # Sampling tracked the loss counter over time.
        lost = run.registry.series["link.cells_lost"]
        assert lost.values[-1] == snap["link.cells_lost"]


class TestCycleProfiler:
    def test_measured_budgets_match_paper(self):
        run = run_traced("f2", duration=3e-3)
        profiler = run.profiler
        assert profiler.cycles_per_cell("tx", CellPosition.MIDDLE) == 16
        assert profiler.cycles_per_cell("rx", CellPosition.MIDDLE) == 22
        assert profiler.cells_seen("tx") > 0
        assert profiler.pdus_seen("tx") > 0

    def test_phase_attribution_sums_to_total(self):
        run = run_traced("f2", duration=3e-3)
        for engine in ("tx", "rx"):
            phases = run.profiler.phase_cycles(engine)
            assert sum(phases.values()) == pytest.approx(
                run.profiler.total_cycles(engine)
            )
            assert phases.get("copy", 0) > phases.get("per-pdu", 0)

    def test_render_contains_measured_tables(self):
        run = run_traced("f2", duration=3e-3)
        text = run.profiler.render()
        assert "T1' measured segmentation budget" in text
        assert "T2' measured reassembly budget" in text
        assert "Cycle attribution by phase" in text

    def test_manual_recording_and_ledger(self):
        profiler = CycleProfiler()
        profiler.record_cell(
            "tx", CellPosition.MIDDLE, {"cell_build": 8, "fifo_push": 3}
        )
        profiler.record_pdu("tx", {"dma_setup": 20})
        assert profiler.cycles_per_cell("tx", CellPosition.MIDDLE) == 11
        assert profiler.op_ledger("tx")["dma_setup"] == (1, 20.0)
        assert profiler.cycles_per_cell("rx", CellPosition.MIDDLE) is None


class TestRunnerAndExperiment:
    def test_every_traceable_scenario_runs(self):
        for name in TRACEABLE:
            run = run_traced(name, duration=1e-3)
            assert len(run.recorder) > 0, name
            assert run.registry.samples_taken > 0, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_traced("zz")

    def test_trace_cli_writes_perfetto_and_metrics(self, tmp_path):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.csv"
        assert (
            main(
                [
                    "trace",
                    "f2",
                    "--duration",
                    "0.002",
                    "--out",
                    str(trace_path),
                    "--metrics",
                    str(metrics_path),
                ]
            )
            == 0
        )
        document = json.loads(trace_path.read_text())
        assert document["traceEvents"]
        assert metrics_path.read_text().startswith("t,")

    def test_o1_reproduces_configured_budgets(self):
        result = run_o1(duration=3e-3)
        assert result.metrics["tx_middle_cycles"] == 16
        assert result.metrics["rx_middle_cycles"] == 22
        assert result.metrics["max_deviation_cycles"] == 0
        assert result.rows


class TestFormatCsv:
    def test_values_and_quoting(self):
        text = format_csv(["name", "v"], [["plain", 1], ['q"t,e', 2.5]])
        lines = text.splitlines()
        assert lines[0] == "name,v"
        assert lines[1] == "plain,1"
        assert lines[2] == '"q""t,e",2.5'

    def test_large_floats_stay_machine_readable(self):
        assert "1,000" not in format_csv(["x"], [[12345.0]])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_csv(["a", "b"], [[1]])
