"""Addressing and the VC table."""

import pytest

from repro.atm import RESERVED_VCI_LIMIT, VcAddress, VcTable
from repro.atm.addressing import MAX_VCI, first_user_vci
from repro.atm.vc import AalType, ServiceClass, VcState


class TestAddressing:
    def test_reserved_detection(self):
        assert VcAddress(0, 5).is_reserved
        assert not VcAddress(0, 32).is_reserved
        assert not VcAddress(1, 5).is_reserved  # reserved range is VPI 0 only

    def test_signalling_channel(self):
        assert VcAddress(0, 5).is_signalling
        assert not VcAddress(0, 16).is_signalling

    def test_validated_ranges(self):
        with pytest.raises(ValueError):
            VcAddress.validated(256, 0)  # UNI VPI is 8 bits
        VcAddress.validated(256, 0, nni=True)  # NNI VPI is 12 bits
        with pytest.raises(ValueError):
            VcAddress.validated(0, 0x10000)

    def test_str(self):
        assert str(VcAddress(1, 42)) == "1/42"

    def test_first_user_vci_respects_reserved(self):
        assert first_user_vci(0) == RESERVED_VCI_LIMIT
        assert first_user_vci(100) == 100


class TestVcTable:
    def test_auto_allocation_skips_reserved(self):
        table = VcTable()
        vc = table.open()
        assert vc.address.vci >= RESERVED_VCI_LIMIT
        assert not vc.address.is_reserved

    def test_auto_allocation_is_unique(self):
        table = VcTable()
        addresses = {table.open().address for _ in range(50)}
        assert len(addresses) == 50

    def test_explicit_address(self):
        table = VcTable()
        vc = table.open(address=VcAddress(1, 100))
        assert table.lookup(VcAddress(1, 100)) is vc

    def test_allocation_cursor_wraps_without_immediate_reuse(self):
        # Churn: the cursor keeps moving forward past closed VCIs (so
        # in-flight stragglers cannot misdeliver into a fresh call)...
        table = VcTable()
        first = table.open()
        table.close(first.address)
        second = table.open()
        assert second.address != first.address
        # ...and wraps at MAX_VCI instead of exhausting: park the
        # cursor at the top of the space, then allocate across the seam.
        table._next_vci = MAX_VCI
        top = table.open()
        assert top.address.vci == MAX_VCI
        wrapped = table.open()
        assert RESERVED_VCI_LIMIT <= wrapped.address.vci < MAX_VCI

    def test_wraparound_skips_still_open_vcis(self):
        table = VcTable()
        held = [table.open() for _ in range(3)]
        table._next_vci = MAX_VCI + 1  # force an immediate wrap
        table._next_vci = RESERVED_VCI_LIMIT
        fresh = table.open()
        assert fresh.address not in {vc.address for vc in held}

    def test_full_table_raises_exhausted(self):
        table = VcTable()
        span = MAX_VCI - RESERVED_VCI_LIMIT + 1
        for _ in range(span):
            table.open()
        with pytest.raises(RuntimeError, match="exhausted"):
            table.open()

    def test_duplicate_open_rejected(self):
        table = VcTable()
        table.open(address=VcAddress(0, 100))
        with pytest.raises(ValueError):
            table.open(address=VcAddress(0, 100))

    def test_reserved_address_rejected(self):
        with pytest.raises(ValueError):
            VcTable().open(address=VcAddress(0, 5))

    def test_close_removes(self):
        table = VcTable()
        vc = table.open()
        closed = table.close(vc.address)
        assert closed.state is VcState.CLOSED
        assert table.lookup(vc.address) is None

    def test_close_unknown_raises(self):
        with pytest.raises(KeyError):
            VcTable().close(VcAddress(0, 999))

    def test_lookup_miss_is_none(self):
        assert VcTable().lookup(VcAddress(0, 77)) is None

    def test_len_contains_iter(self):
        table = VcTable()
        a = table.open()
        b = table.open()
        assert len(table) == 2
        assert a.address in table
        assert {vc.address for vc in table} == {a.address, b.address}

    def test_contract_recorded(self):
        table = VcTable()
        vc = table.open(
            service_class=ServiceClass.CBR, peak_rate_bps=1e6, name="video"
        )
        assert vc.service_class is ServiceClass.CBR
        assert vc.peak_rate_bps == 1e6
        assert vc.name == "video"
        assert vc.aal is AalType.AAL5

    def test_invalid_peak_rate(self):
        with pytest.raises(ValueError):
            VcTable().open(peak_rate_bps=0)

    def test_reopen_after_close(self):
        table = VcTable()
        vc = table.open(address=VcAddress(0, 200))
        table.close(vc.address)
        again = table.open(address=VcAddress(0, 200))
        assert again.is_open

    def test_stats_start_zeroed(self):
        vc = VcTable().open()
        assert vc.stats.cells_sent == 0
        assert vc.stats.pdus_received == 0
