"""ATM cell format: encode/decode, field ranges, PTI semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.atm import AtmCell, CELL_SIZE, CellFormatError, PAYLOAD_SIZE
from repro.atm.cell import (
    PTI_OAM_SEGMENT,
    PTI_USER_SDU0,
    PTI_USER_SDU1,
    pad_payload,
)

PAYLOAD = bytes(range(48))


class TestConstruction:
    def test_valid_cell(self):
        cell = AtmCell(vpi=1, vci=42, payload=PAYLOAD)
        assert cell.vpi == 1 and cell.vci == 42

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vpi": -1, "vci": 0},
            {"vpi": 0x1000, "vci": 0},
            {"vpi": 0, "vci": -1},
            {"vpi": 0, "vci": 0x10000},
        ],
    )
    def test_address_range_enforced(self, kwargs):
        with pytest.raises(CellFormatError):
            AtmCell(payload=PAYLOAD, **kwargs)

    def test_payload_must_be_48_bytes(self):
        with pytest.raises(CellFormatError):
            AtmCell(vpi=0, vci=32, payload=b"short")

    def test_pti_range(self):
        with pytest.raises(CellFormatError):
            AtmCell(vpi=0, vci=32, payload=PAYLOAD, pti=8)

    def test_clp_binary(self):
        with pytest.raises(CellFormatError):
            AtmCell(vpi=0, vci=32, payload=PAYLOAD, clp=2)

    def test_gfc_range(self):
        with pytest.raises(CellFormatError):
            AtmCell(vpi=0, vci=32, payload=PAYLOAD, gfc=16)


class TestWireFormat:
    def test_encoding_is_53_bytes(self):
        assert len(AtmCell(vpi=0, vci=32, payload=PAYLOAD).to_bytes()) == CELL_SIZE

    def test_roundtrip_preserves_fields(self):
        cell = AtmCell(vpi=17, vci=4097, payload=PAYLOAD, pti=3, clp=1, gfc=5)
        decoded = AtmCell.from_bytes(cell.to_bytes())
        assert decoded == cell

    def test_known_header_layout(self):
        # GFC=0, VPI=0x12, VCI=0x3456, PTI=1, CLP=1
        cell = AtmCell(vpi=0x12, vci=0x3456, payload=PAYLOAD, pti=1, clp=1)
        header = cell.header_bytes()
        assert header == bytes((0x01, 0x23, 0x45, 0x63))

    def test_nni_roundtrip_with_wide_vpi(self):
        cell = AtmCell(vpi=0xABC, vci=99, payload=PAYLOAD)
        decoded = AtmCell.from_bytes(cell.to_bytes(nni=True), nni=True)
        assert decoded.vpi == 0xABC and decoded.vci == 99

    def test_uni_rejects_wide_vpi(self):
        cell = AtmCell(vpi=0x100, vci=0, payload=PAYLOAD)
        with pytest.raises(CellFormatError):
            cell.to_bytes(nni=False)

    def test_nni_rejects_gfc(self):
        cell = AtmCell(vpi=1, vci=1, payload=PAYLOAD, gfc=3)
        with pytest.raises(CellFormatError):
            cell.to_bytes(nni=True)

    def test_wrong_length_rejected(self):
        with pytest.raises(CellFormatError):
            AtmCell.from_bytes(b"\x00" * 52)

    def test_corrupted_header_detected(self):
        data = bytearray(AtmCell(vpi=3, vci=77, payload=PAYLOAD).to_bytes())
        data[2] ^= 0xFF
        with pytest.raises(CellFormatError):
            AtmCell.from_bytes(bytes(data))

    def test_corrupted_payload_not_heced(self):
        # The HEC covers only the header; payload corruption is the
        # adaptation layer's problem.
        data = bytearray(AtmCell(vpi=3, vci=77, payload=PAYLOAD).to_bytes())
        data[20] ^= 0xFF
        decoded = AtmCell.from_bytes(bytes(data))
        assert decoded.payload != PAYLOAD

    @given(
        vpi=st.integers(0, 0xFF),
        vci=st.integers(0, 0xFFFF),
        pti=st.integers(0, 7),
        clp=st.integers(0, 1),
        gfc=st.integers(0, 15),
        payload=st.binary(min_size=PAYLOAD_SIZE, max_size=PAYLOAD_SIZE),
    )
    def test_roundtrip_property(self, vpi, vci, pti, clp, gfc, payload):
        cell = AtmCell(
            vpi=vpi, vci=vci, payload=payload, pti=pti, clp=clp, gfc=gfc
        )
        assert AtmCell.from_bytes(cell.to_bytes()) == cell


class TestSemantics:
    def test_end_of_frame_flag(self):
        assert AtmCell(vpi=0, vci=32, payload=PAYLOAD, pti=PTI_USER_SDU1).end_of_frame
        assert not AtmCell(
            vpi=0, vci=32, payload=PAYLOAD, pti=PTI_USER_SDU0
        ).end_of_frame

    def test_oam_cell_is_not_user_or_eof(self):
        cell = AtmCell(vpi=0, vci=32, payload=PAYLOAD, pti=PTI_OAM_SEGMENT)
        assert not cell.is_user_cell
        assert not cell.end_of_frame

    def test_congestion_bit(self):
        cell = AtmCell(vpi=0, vci=32, payload=PAYLOAD, pti=0b010)
        assert cell.congestion_experienced

    def test_with_header_translates_labels_only(self):
        cell = AtmCell(vpi=1, vci=2, payload=PAYLOAD, pti=1)
        out = cell.with_header(vpi=9, vci=900)
        assert (out.vpi, out.vci) == (9, 900)
        assert out.payload == cell.payload
        assert out.pti == cell.pti

    def test_meta_does_not_affect_equality(self):
        a = AtmCell(vpi=0, vci=32, payload=PAYLOAD)
        b = AtmCell(vpi=0, vci=32, payload=PAYLOAD)
        a.meta["timestamp"] = 1.0
        assert a == b


class TestPadPayload:
    def test_pads_to_exactly_one_payload(self):
        assert len(pad_payload(b"abc")) == PAYLOAD_SIZE
        assert pad_payload(b"abc")[:3] == b"abc"

    def test_oversize_rejected(self):
        with pytest.raises(CellFormatError):
            pad_payload(bytes(49))

    def test_exact_size_unchanged(self):
        assert pad_payload(PAYLOAD) == PAYLOAD
