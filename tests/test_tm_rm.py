"""RM-cell codec: encode/decode roundtrips, turnaround, damage."""

import pytest

from repro.atm import AtmCell, VcAddress
from repro.atm.cell import PTI_RESOURCE_MGMT
from repro.tm import RM_PROTOCOL_ID, RmCell, RmFormatError, is_rm_cell

VC = VcAddress(0, 200)


class TestRoundtrip:
    def test_all_fields_survive(self):
        rm = RmCell(
            vc=VC,
            forward=False,
            er=353207.5,
            ccr=1234.25,
            mcr=10.0,
            ci=True,
            ni=True,
            bn=True,
        )
        assert RmCell.decode(rm.encode()) == rm

    def test_defaults_survive(self):
        rm = RmCell(vc=VC)
        decoded = RmCell.decode(rm.encode())
        assert decoded.forward
        assert not (decoded.ci or decoded.ni or decoded.bn)
        assert decoded.er == decoded.ccr == decoded.mcr == 0.0

    def test_wire_form_is_management_pti(self):
        cell = RmCell(vc=VC).encode()
        assert cell.pti == PTI_RESOURCE_MGMT
        assert not cell.is_user_cell
        assert is_rm_cell(cell)
        assert cell.payload[0] == RM_PROTOCOL_ID

    def test_rates_are_exact_doubles(self):
        rm = RmCell(vc=VC, er=1.0 / 3.0, ccr=2.0 / 7.0, mcr=1e-9)
        decoded = RmCell.decode(rm.encode())
        assert decoded.er == rm.er
        assert decoded.ccr == rm.ccr
        assert decoded.mcr == rm.mcr


class TestDamage:
    def test_user_cell_rejected(self):
        cell = AtmCell(vpi=0, vci=200, payload=bytes(48))
        assert not is_rm_cell(cell)
        with pytest.raises(RmFormatError):
            RmCell.decode(cell)

    def test_payload_corruption_fails_crc(self):
        cell = RmCell(vc=VC, er=100.0).encode()
        payload = bytearray(cell.payload)
        payload[5] ^= 0xFF
        damaged = AtmCell(
            vpi=cell.vpi, vci=cell.vci, payload=bytes(payload), pti=cell.pti
        )
        with pytest.raises(RmFormatError):
            RmCell.decode(damaged)

    def test_unknown_protocol_id_rejected(self):
        from repro.aal.crc import crc10

        cell = RmCell(vc=VC).encode()
        body = bytearray(cell.payload)
        body[0] = 0x7F
        body[-2:] = b"\x00\x00"
        trailer = crc10(bytes(body))
        body[-2:] = trailer.to_bytes(2, "big")
        damaged = AtmCell(
            vpi=cell.vpi, vci=cell.vci, payload=bytes(body), pti=cell.pti
        )
        with pytest.raises(RmFormatError):
            RmCell.decode(damaged)

    def test_negative_rate_refused_at_encode(self):
        with pytest.raises(RmFormatError):
            RmCell(vc=VC, er=-1.0).encode()


class TestTurnaround:
    def test_flips_direction_preserves_rates(self):
        rm = RmCell(vc=VC, forward=True, er=500.0, ccr=100.0, mcr=5.0)
        back = rm.turned_around()
        assert not back.forward
        assert (back.er, back.ccr, back.mcr) == (500.0, 100.0, 5.0)

    def test_ors_in_congestion_state(self):
        rm = RmCell(vc=VC, forward=True)
        assert rm.turned_around(ci=True).ci
        assert rm.turned_around(ni=True).ni
        # A CI already set by the network is never cleared.
        marked = RmCell(vc=VC, forward=True, ci=True)
        assert marked.turned_around(ci=False).ci

    def test_with_er_only_changes_er(self):
        rm = RmCell(vc=VC, er=500.0, ccr=100.0, ci=True)
        stamped = rm.with_er(250.0)
        assert stamped.er == 250.0
        assert stamped.ccr == 100.0
        assert stamped.ci
        assert stamped.forward == rm.forward
