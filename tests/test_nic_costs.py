"""Engine cycle budgets: the quantities the whole evaluation rests on."""

import pytest

from repro.nic import (
    CellPosition,
    EngineSpec,
    I960_25MHZ,
    RxCostModel,
    TxCostModel,
)


class TestCellPosition:
    def test_classification(self):
        assert CellPosition.of(0, 1) is CellPosition.ONLY
        assert CellPosition.of(0, 3) is CellPosition.FIRST
        assert CellPosition.of(1, 3) is CellPosition.MIDDLE
        assert CellPosition.of(2, 3) is CellPosition.LAST

    def test_validation(self):
        with pytest.raises(ValueError):
            CellPosition.of(0, 0)
        with pytest.raises(ValueError):
            CellPosition.of(3, 3)


class TestEngineSpec:
    def test_seconds_for(self):
        assert I960_25MHZ.seconds_for(25) == pytest.approx(1e-6)

    def test_at_clock_renames(self):
        faster = I960_25MHZ.at_clock(33e6)
        assert faster.clock_hz == 33e6
        assert "33" in faster.name

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineSpec("bad", 0.0)
        with pytest.raises(ValueError):
            I960_25MHZ.seconds_for(-1)


class TestTxCosts:
    def test_middle_cell_cheaper_than_last(self):
        costs = TxCostModel()
        assert costs.cell_cycles(CellPosition.MIDDLE) < costs.cell_cycles(
            CellPosition.LAST
        )

    def test_only_cell_includes_trailer(self):
        costs = TxCostModel()
        assert costs.cell_cycles(CellPosition.ONLY) == costs.cell_cycles(
            CellPosition.LAST
        )

    def test_pdu_total_formula(self):
        costs = TxCostModel()
        n = 10
        expected = (
            costs.pdu_cycles()
            + (n - 1) * costs.cell_cycles(CellPosition.MIDDLE)
            + costs.cell_cycles(CellPosition.LAST)
        )
        assert costs.pdu_total_cycles(n) == expected

    def test_single_cell_pdu(self):
        costs = TxCostModel()
        assert costs.pdu_total_cycles(1) == costs.pdu_cycles() + costs.cell_cycles(
            CellPosition.ONLY
        )

    def test_software_crc_ablation(self):
        base = TxCostModel()
        soft = base.with_software_crc(130)
        delta = soft.cell_cycles(CellPosition.MIDDLE) - base.cell_cycles(
            CellPosition.MIDDLE
        )
        assert delta == 130

    def test_breakdown_covers_all_costs(self):
        costs = TxCostModel()
        assert set(costs.breakdown()) >= {
            "descriptor_fetch",
            "cell_build",
            "trailer_build",
        }

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            TxCostModel(cell_build=-1)

    def test_validation_of_pdu_size(self):
        with pytest.raises(ValueError):
            TxCostModel().pdu_total_cycles(0)


class TestRxCosts:
    def test_rx_middle_cell_costlier_than_tx(self):
        # The paper's core asymmetry.
        assert RxCostModel().cell_cycles(
            CellPosition.MIDDLE
        ) > TxCostModel().cell_cycles(CellPosition.MIDDLE)

    def test_cam_cheaper_than_software(self):
        costs = RxCostModel()
        assert costs.cell_cycles(
            CellPosition.MIDDLE, cam_fitted=True
        ) < costs.cell_cycles(CellPosition.MIDDLE, cam_fitted=False)

    def test_software_lookup_scales_with_table(self):
        costs = RxCostModel()
        small = costs.lookup_cycles(cam_fitted=False, table_size=1)
        large = costs.lookup_cycles(cam_fitted=False, table_size=100)
        assert large > small
        # CAM does not scale.
        assert costs.lookup_cycles(True, 1) == costs.lookup_cycles(True, 100)

    def test_first_cell_includes_context_open(self):
        costs = RxCostModel()
        delta = costs.cell_cycles(CellPosition.FIRST) - costs.cell_cycles(
            CellPosition.MIDDLE
        )
        assert delta == costs.context_open

    def test_last_cell_includes_completion(self):
        costs = RxCostModel()
        delta = costs.cell_cycles(CellPosition.LAST) - costs.cell_cycles(
            CellPosition.MIDDLE
        )
        assert delta == costs.final_check + costs.completion

    def test_only_cell_has_both(self):
        costs = RxCostModel()
        assert costs.cell_cycles(CellPosition.ONLY) == (
            costs.cell_cycles(CellPosition.MIDDLE)
            + costs.context_open
            + costs.final_check
            + costs.completion
        )

    def test_pdu_total_consistent(self):
        costs = RxCostModel()
        n = 5
        total = costs.pdu_total_cycles(n)
        assert total == (
            costs.cell_cycles(CellPosition.FIRST)
            + 3 * costs.cell_cycles(CellPosition.MIDDLE)
            + costs.cell_cycles(CellPosition.LAST)
        )

    def test_default_25mhz_feasibility_story(self):
        """The calibrated design point the DESIGN.md claims rest on."""
        tx = TxCostModel()
        rx = RxCostModel()
        engine = I960_25MHZ
        tx_cell = engine.seconds_for(tx.cell_cycles(CellPosition.MIDDLE))
        rx_cell = engine.seconds_for(rx.cell_cycles(CellPosition.MIDDLE))
        oc3_slot = 424 / 149.76e6
        oc12_slot = 424 / 599.04e6
        # Both directions clear OC-3c per cell.
        assert tx_cell < oc3_slot and rx_cell < oc3_slot
        # TX clears OC-12c; RX does not (the hardware-assist argument).
        assert tx_cell < oc12_slot
        assert rx_cell > oc12_slot
