"""simlint: golden-corpus tests, suppression semantics, and the
shipped-tree regression gate.

The fixture corpus under ``tests/fixtures/simlint/corpus`` is a tiny
parallel universe with its own taxonomy tables; ``expected.json``
freezes exactly which (path, line, rule) triples the linter must
report there.  The regression test at the bottom is the PR's core
promise: the real ``src/repro`` tree stays lint-clean.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.devtools import RULE_REGISTRY, lint_paths
from repro.devtools.suppress import SuppressionIndex

TESTS = Path(__file__).resolve().parent
CORPUS = TESTS / "fixtures" / "simlint" / "corpus"
GOLDEN = TESTS / "fixtures" / "simlint" / "expected.json"
REPO = TESTS.parent
PACKAGE = Path(repro.__file__).resolve().parent


def corpus_triples():
    result = lint_paths([CORPUS])
    return sorted(
        (f.path, f.line, f.rule) for f in result.findings
    ), result


def golden_triples():
    payload = json.loads(GOLDEN.read_text())
    return sorted(
        (entry["path"], entry["line"], entry["rule"])
        for entry in payload["findings"]
    )


def test_corpus_matches_golden_exactly():
    actual, _ = corpus_triples()
    assert actual == golden_triples()


def test_corpus_findings_carry_hints_and_severity():
    _, result = corpus_triples()
    for finding in result.findings:
        assert finding.hint, finding.rule
        assert finding.severity.value in {"error", "warning", "info"}


# One (catch, suppression) pair per rule family, straight from the
# corpus: the rule fires at catch_line and stays silent at the
# suppressed site in the same file.
FAMILY_CASES = [
    ("SL1", "determinism_violations.py", "SL101", 11, 30),
    ("SL2", "nic/charge_violations.py", "SL201", 6, 14),
    ("SL3", "taxonomy_violations.py", "SL301", 7, 15),
    ("SL4", "sim/scheduler_violations.py", "SL104", 9, 34),
    ("SL5", "hooks_violations.py", "SL501", 7, 15),
    ("SL6", "runner_violations.py", "SL601", 11, 29),
]


@pytest.mark.parametrize(
    "family, path, rule, catch_line, suppressed_line",
    FAMILY_CASES,
    ids=[case[0] for case in FAMILY_CASES],
)
def test_family_has_catch_and_suppression(
    family, path, rule, catch_line, suppressed_line
):
    actual, _ = corpus_triples()
    assert (path, catch_line, rule) in actual
    # The suppressed site stays silent -- and the suppression is used,
    # so SL001 does not flag it either.
    assert (path, suppressed_line, rule) not in actual
    assert not any(
        p == path and abs(l - suppressed_line) <= 1 and r == "SL001"
        for p, l, r in actual
    )


def test_unused_suppression_reported_as_sl001():
    actual, _ = corpus_triples()
    assert ("determinism_violations.py", 36, "SL001") in actual


def test_rule_selection_narrows_findings():
    # Meta rules (SL001 unused-suppression) stay on under --rules, so
    # other families' suppressions legitimately surface as unused here.
    result = lint_paths([CORPUS], rules=["SL3"])
    rules = {f.rule for f in result.findings}
    assert rules and rules <= {"SL301", "SL302", "SL303", "SL001"}
    assert {"SL301", "SL302", "SL303"} <= rules


def test_registry_covers_all_families():
    families = {rule_id[:3] for rule_id in RULE_REGISTRY if rule_id != "SL000" and rule_id != "SL001"}
    assert {"SL1", "SL2", "SL3", "SL4", "SL5", "SL6"} <= families


def test_syntax_error_becomes_sl000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text('"""Doc."""\ndef half(:\n')
    result = lint_paths([bad])
    assert [f.rule for f in result.findings] == ["SL000"]


def test_suppression_index_semantics():
    source = (
        "x = 1  # simlint: disable=SL101 -- inline\n"
        "# simlint: disable=SL2 -- next-line, family-wide\n"
        "y = 2\n"
        "z = 3\n"
    )
    index = SuppressionIndex(source)
    assert index.is_suppressed("SL101", 1)
    assert index.is_suppressed("SL201", 3)  # family prefix covers SL2xx
    assert not index.is_suppressed("SL101", 3)
    assert not index.is_suppressed("SL201", 4)
    assert index.unused() == []


def test_file_scope_suppression():
    source = (
        '"""Doc."""\n'
        "# simlint: disable-file=SL103 -- whole-file waiver\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    index = SuppressionIndex(source)
    assert index.is_suppressed("SL103", 4)
    assert index.is_suppressed("SL103", 5)


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_exit_codes_and_json_artifact(tmp_path):
    out = tmp_path / "report.json"
    dirty = _run_cli(str(CORPUS), "--format", "json", "--out", str(out))
    assert dirty.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["tool"] == "simlint"
    assert payload["summary"]["total"] == len(golden_triples())

    clean = _run_cli(str(PACKAGE))
    assert clean.returncode == 0, clean.stdout + clean.stderr


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("SL101", "SL201", "SL301", "SL401", "SL501"):
        assert rule_id in proc.stdout


def test_shipped_tree_is_lint_clean():
    """The PR's regression promise: zero unsuppressed findings in src/repro."""
    result = lint_paths([PACKAGE])
    assert result.findings == [], [f.format() for f in result.findings]
