"""simlint: golden-corpus tests, suppression semantics, and the
shipped-tree regression gate.

The fixture corpus under ``tests/fixtures/simlint/corpus`` is a tiny
parallel universe with its own taxonomy tables; ``expected.json``
freezes exactly which (path, line, rule) triples the linter must
report there.  The regression test at the bottom is the PR's core
promise: the real ``src/repro`` tree stays lint-clean.
"""

import json
import shutil
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

import repro
from repro.devtools import RULE_REGISTRY, lint_paths
from repro.devtools.suppress import SuppressionIndex

TESTS = Path(__file__).resolve().parent
CORPUS = TESTS / "fixtures" / "simlint" / "corpus"
GOLDEN = TESTS / "fixtures" / "simlint" / "expected.json"
REPO = TESTS.parent
PACKAGE = Path(repro.__file__).resolve().parent


def corpus_triples():
    result = lint_paths([CORPUS])
    return sorted(
        (f.path, f.line, f.rule) for f in result.findings
    ), result


def golden_triples():
    payload = json.loads(GOLDEN.read_text())
    return sorted(
        (entry["path"], entry["line"], entry["rule"])
        for entry in payload["findings"]
    )


def test_corpus_matches_golden_exactly():
    actual, _ = corpus_triples()
    assert actual == golden_triples()


def test_corpus_findings_carry_hints_and_severity():
    _, result = corpus_triples()
    for finding in result.findings:
        assert finding.hint, finding.rule
        assert finding.severity.value in {"error", "warning", "info"}


# One (catch, suppression) pair per rule family, straight from the
# corpus: the rule fires at catch_line and stays silent at the
# suppressed site in the same file.
FAMILY_CASES = [
    ("SL1", "determinism_violations.py", "SL101", 11, 30),
    ("SL2", "nic/charge_violations.py", "SL201", 6, 14),
    ("SL3", "taxonomy_violations.py", "SL301", 7, 15),
    ("SL4", "sim/scheduler_violations.py", "SL104", 9, 34),
    ("SL5", "hooks_violations.py", "SL501", 7, 15),
    ("SL503", "obs/metrics_dispatch.py", "SL503", 9, 14),
    ("SL6", "runner_violations.py", "SL601", 11, 29),
    ("SL7", "nic/fastpath_pairs.py", "SL701", 61, 83),
    ("SL704", "nic/fastpath_pairs.py", "SL704", 90, 97),
    ("SL204", "nic/fastpath_pairs.py", "SL204", 105, 111),
]


@pytest.mark.parametrize(
    "family, path, rule, catch_line, suppressed_line",
    FAMILY_CASES,
    ids=[case[0] for case in FAMILY_CASES],
)
def test_family_has_catch_and_suppression(
    family, path, rule, catch_line, suppressed_line
):
    actual, _ = corpus_triples()
    assert (path, catch_line, rule) in actual
    # The suppressed site stays silent -- and the suppression is used,
    # so SL001 does not flag it either.
    assert (path, suppressed_line, rule) not in actual
    assert not any(
        p == path and abs(l - suppressed_line) <= 1 and r == "SL001"
        for p, l, r in actual
    )


def test_unused_suppression_reported_as_sl001():
    actual, _ = corpus_triples()
    assert ("determinism_violations.py", 36, "SL001") in actual


def test_rule_selection_narrows_findings():
    # Meta rules (SL001 unused-suppression) stay on under --rules, so
    # other families' suppressions legitimately surface as unused here.
    result = lint_paths([CORPUS], rules=["SL3"])
    rules = {f.rule for f in result.findings}
    assert rules and rules <= {"SL301", "SL302", "SL303", "SL001"}
    assert {"SL301", "SL302", "SL303"} <= rules


def test_registry_covers_all_families():
    families = {rule_id[:3] for rule_id in RULE_REGISTRY if rule_id != "SL000" and rule_id != "SL001"}
    assert {"SL1", "SL2", "SL3", "SL4", "SL5", "SL6", "SL7"} <= families


def test_sl7_findings_name_the_scalar_counterpart():
    """Every dual-path finding points the reader at the reference lane."""
    _, result = corpus_triples()
    dual = [f for f in result.findings if f.rule in {"SL701", "SL702", "SL703"}]
    assert len(dual) == 4
    for finding in dual:
        assert "ToyEngine.consume_cell" in finding.message
        assert "ToyEngine.consume_burst" in finding.message


def test_sl704_flags_registry_rot_and_unpaired_entry_points():
    actual, _ = corpus_triples()
    # A PATH_PAIRS entry naming an unknown function anchors at the registry.
    assert ("nic/fastpath_pairs.py", 16, "SL704") in actual
    # An undeclared burst handler anchors at its own def line.
    assert ("nic/fastpath_pairs.py", 90, "SL704") in actual


def test_sl204_cross_checks_both_directions():
    actual, _ = corpus_triples()
    # Direction A: a dead budget row anchors at the breakdown() table.
    assert ("nic/costs.py", 22, "SL204") in actual
    # Direction B: an off-table charge anchors at the charge site.
    assert ("nic/fastpath_pairs.py", 105, "SL204") in actual


# Deleting one effect line from the clean burst handler must produce
# exactly one SL7 finding -- and that finding names the scalar lane.
DELETION_CASES = [
    ("self.cells_admitted.increment()", "SL701"),
    ('self.trace.emit("x.test.event", actor="admit", cell=cell)', "SL702"),
    ('self.clock.charge_at(self.costs.header_word, "toy.admit", 0.0)', "SL703"),
]


@pytest.mark.parametrize(
    "deleted, rule", DELETION_CASES, ids=[case[1] for case in DELETION_CASES]
)
def test_deleting_one_burst_effect_yields_exactly_one_finding(
    tmp_path, deleted, rule
):
    corpus = tmp_path / "corpus"
    shutil.copytree(CORPUS, corpus)
    target = corpus / "nic" / "fastpath_pairs.py"
    head, marker, tail = target.read_text().partition("def admit_burst")
    assert marker and deleted in tail
    target.write_text(head + marker + tail.replace(deleted, "pass", 1))

    result = lint_paths([corpus])
    triples = sorted((f.path, f.line, f.rule) for f in result.findings)
    added = Counter(triples) - Counter(golden_triples())
    removed = Counter(golden_triples()) - Counter(triples)
    assert not removed
    assert sum(added.values()) == 1
    [(path, line, got_rule)] = list(added)
    assert (path, got_rule) == ("nic/fastpath_pairs.py", rule)
    finding = next(
        f
        for f in result.findings
        if (f.path, f.line, f.rule) == (path, line, got_rule)
    )
    assert "AdmitEngine.admit_cell" in finding.message


def test_family_prefix_disable_file_covers_whole_family(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        '"""Doc."""\n'
        "# simlint: disable-file=SL1 -- quarantined prototype module\n"
        "import random\n"
        "import time\n"
        "a = time.time()\n"
        "b = random.random()\n"
    )
    result = lint_paths([mod])
    assert result.findings == []


def test_multi_rule_disable_used_by_one_rule_is_not_stale(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        '"""Doc."""\n'
        "import time\n"
        "a = time.time()  # simlint: disable=SL103,SL102 -- wall-clock waiver\n"
    )
    result = lint_paths([mod])
    assert result.findings == []


def test_fully_stale_multi_rule_disable_is_one_sl001(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        '"""Doc."""\n'
        "x = 1  # simlint: disable=SL103,SL102 -- nothing here fires\n"
    )
    result = lint_paths([mod])
    assert [f.rule for f in result.findings] == ["SL001"]


def test_syntax_error_becomes_sl000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text('"""Doc."""\ndef half(:\n')
    result = lint_paths([bad])
    assert [f.rule for f in result.findings] == ["SL000"]


def test_suppression_index_semantics():
    source = (
        "x = 1  # simlint: disable=SL101 -- inline\n"
        "# simlint: disable=SL2 -- next-line, family-wide\n"
        "y = 2\n"
        "z = 3\n"
    )
    index = SuppressionIndex(source)
    assert index.is_suppressed("SL101", 1)
    assert index.is_suppressed("SL201", 3)  # family prefix covers SL2xx
    assert not index.is_suppressed("SL101", 3)
    assert not index.is_suppressed("SL201", 4)
    assert index.unused() == []


def test_file_scope_suppression():
    source = (
        '"""Doc."""\n'
        "# simlint: disable-file=SL103 -- whole-file waiver\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    index = SuppressionIndex(source)
    assert index.is_suppressed("SL103", 4)
    assert index.is_suppressed("SL103", 5)


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_exit_codes_and_json_artifact(tmp_path):
    out = tmp_path / "report.json"
    dirty = _run_cli(str(CORPUS), "--format", "json", "--out", str(out))
    assert dirty.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["tool"] == "simlint"
    assert payload["summary"]["total"] == len(golden_triples())

    clean = _run_cli(str(PACKAGE))
    assert clean.returncode == 0, clean.stdout + clean.stderr


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in ("SL101", "SL201", "SL301", "SL401", "SL501"):
        assert rule_id in proc.stdout


def test_cli_sarif_output():
    proc = _run_cli(str(CORPUS), "--format", "sarif")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    results = run["results"]
    assert len(results) == len(golden_triples())
    assert {r["level"] for r in results} <= {"error", "warning", "note"}
    reported = {r["ruleId"] for r in results}
    assert {"SL701", "SL702", "SL703", "SL704", "SL204"} <= reported
    catalogued = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert reported <= catalogued
    uris = {
        r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        for r in results
    }
    assert any(uri.endswith("nic/fastpath_pairs.py") for uri in uris)


def _git(*args, cwd):
    subprocess.run(
        ["git", *args], cwd=cwd, check=True, capture_output=True, text=True
    )


def test_cli_changed_restricts_to_modified_files(tmp_path):
    repo = tmp_path / "repo"
    pkg = repo / "pkg"
    pkg.mkdir(parents=True)
    clean = pkg / "clean.py"
    clean.write_text('"""Doc."""\nx = 1\n')
    dirty = pkg / "dirty.py"
    dirty.write_text('"""Doc."""\nimport time\na = time.time()\n')
    _git("init", "-q", cwd=repo)
    _git("add", ".", cwd=repo)
    _git(
        "-c", "user.email=ci@example.invalid", "-c", "user.name=ci",
        "commit", "-q", "-m", "seed", cwd=repo,
    )
    # Touch only the clean file: the dirty file's finding is out of scope.
    clean.write_text('"""Doc."""\nx = 2\n')
    scoped = _run_cli(str(pkg), "--changed")
    assert scoped.returncode == 0, scoped.stdout + scoped.stderr
    # Without --changed the same tree still fails.
    full = _run_cli(str(pkg))
    assert full.returncode == 1


def test_cli_changed_falls_back_outside_git(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text('"""Doc."""\nimport time\na = time.time()\n')
    proc = _run_cli(str(tmp_path), "--changed")
    assert proc.returncode == 1
    assert "full tree" in proc.stderr


def test_shipped_tree_is_lint_clean():
    """The PR's regression promise: zero unsuppressed findings in src/repro."""
    result = lint_paths([PACKAGE])
    assert result.findings == [], [f.format() for f in result.findings]
