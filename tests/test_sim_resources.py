"""Resource and Store contention semantics."""

import pytest

from repro.sim import Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grant_immediate_when_free(self, sim):
        res = Resource(sim, capacity=2)
        log = []

        def user(name):
            grant = res.request()
            yield grant
            log.append((name, sim.now))
            yield sim.timeout(1.0)
            res.release(grant)

        sim.process(user("a"))
        sim.process(user("b"))
        sim.run()
        assert log == [("a", 0.0), ("b", 0.0)]

    def test_fifo_queueing_when_contended(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(name, hold):
            grant = res.request()
            yield grant
            log.append((name, sim.now))
            yield sim.timeout(hold)
            res.release(grant)

        for name in ("a", "b", "c"):
            sim.process(user(name, 1.0))
        sim.run()
        assert log == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_release_unheld_grant_rejected(self, sim):
        res = Resource(sim)
        grant = res.request()
        sim.run()
        res.release(grant)
        with pytest.raises(SimulationError):
            res.release(grant)

    def test_statistics(self, sim):
        res = Resource(sim, capacity=1)

        def user(hold):
            grant = res.request()
            yield grant
            yield sim.timeout(hold)
            res.release(grant)

        sim.process(user(2.0))
        sim.process(user(1.0))
        sim.run()
        assert res.total_requests == 2
        # Second request waited 2.0s.
        assert res.mean_wait == pytest.approx(1.0)

    def test_in_use_and_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            grant = res.request()
            yield grant
            yield sim.timeout(10.0)
            res.release(grant)

        sim.process(holder())
        sim.process(holder())
        sim.run(until=1.0)
        assert res.in_use == 1
        assert res.queue_length == 1


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        def putter():
            yield sim.timeout(2.0)
            yield store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [(2.0, "late")]

    def test_bounded_put_blocks_until_space(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield store.put(1)
            events.append(("accepted-1", sim.now))
            yield store.put(2)
            events.append(("accepted-2", sim.now))

        def consumer():
            yield sim.timeout(3.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert events == [("accepted-1", 0.0), ("accepted-2", 3.0)]

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert len(store) == 2

    def test_try_get(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None
        store.try_put("a")
        ok, item = store.try_get()
        assert ok and item == "a"

    def test_fifo_order(self, sim):
        store = Store(sim)
        for i in range(5):
            store.try_put(i)
        out = []

        def drain():
            for _ in range(5):
                out.append((yield store.get()))

        sim.process(drain())
        sim.run()
        assert out == [0, 1, 2, 3, 4]

    def test_direct_handoff_to_waiting_getter(self, sim):
        store = Store(sim, capacity=1)
        got = []

        def getter():
            got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert store.try_put("direct")
        sim.run()
        assert got == ["direct"]
        assert len(store) == 0

    def test_peak_occupancy_tracked(self, sim):
        store = Store(sim)
        for i in range(7):
            store.try_put(i)
        store.try_get()
        assert store.peak_occupancy == 7

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_counters(self, sim):
        store = Store(sim)
        store.try_put("a")
        store.try_put("b")
        store.try_get()
        assert store.total_put == 2
        assert store.total_got == 1
