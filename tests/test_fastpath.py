"""Fast path == reference path: the byte-equivalence contract.

``SimConfig(fast_path=True)`` moves runs of back-to-back cells as one
burst event and collapses uncontended bus/DMA walks to arithmetic, but
charges the same per-cell cycles via the same float expressions -- so
every experiment must report *byte-identical* numbers on either path
(docs/PERFORMANCE.md spells out the guarantee and its exclusions).
These tests pin that contract on reduced F2/F3/F6/R1 runs, on a
drained run's full metrics registry, and on profiler attribution.
"""

from repro.obs import CycleProfiler, profile_interface
from repro.results.experiments import run_f2, run_f3, run_f6, run_r1
from repro.results.perf import canonical_result_json, drained_rx_run


def both_paths(runner):
    scalar = runner(fast_path=False)
    fast = runner(fast_path=True)
    return canonical_result_json(scalar), canonical_result_json(fast)


class TestExperimentEquivalence:
    def test_f2_tx_rx_pipeline(self):
        scalar, fast = both_paths(
            lambda fast_path: run_f2(
                sizes=(1024, 9180), window=0.01, fast_path=fast_path
            )
        )
        assert scalar == fast

    def test_f3_rx_burst_feeder(self):
        scalar, fast = both_paths(
            lambda fast_path: run_f3(
                sizes=(1500,), window=0.01, fast_path=fast_path
            )
        )
        assert scalar == fast

    def test_f6_interleaved_vcs(self):
        scalar, fast = both_paths(
            lambda fast_path: run_f6(
                vc_counts=(4,), sdu_size=1500, window=0.005,
                fast_path=fast_path,
            )
        )
        assert scalar == fast

    def test_r1_loss_and_frame_discard(self):
        scalar, fast = both_paths(
            lambda fast_path: run_r1(
                loss_rates=(0.0, 0.01), window=0.005, fast_path=fast_path
            )
        )
        assert scalar == fast


class TestRegistryEquivalence:
    def test_drained_run_metrics_document_is_byte_identical(self):
        # Every registered counter and gauge -- engine counts, FIFO
        # state, buffer fill, utilisation, DMA backlog -- must agree
        # once both runs have drained (mid-flight cutoffs may not:
        # the fast engine counts a popped burst's cells at pop time).
        doc_scalar, events_scalar, pdus_scalar = drained_rx_run(
            False, sdu_size=1500, n_pdus=20
        )
        doc_fast, events_fast, pdus_fast = drained_rx_run(
            True, sdu_size=1500, n_pdus=20
        )
        assert pdus_scalar == pdus_fast == 20
        assert doc_scalar == doc_fast

    def test_fast_path_processes_far_fewer_events(self):
        _, events_scalar, _ = drained_rx_run(False, sdu_size=1500, n_pdus=20)
        _, events_fast, _ = drained_rx_run(True, sdu_size=1500, n_pdus=20)
        assert events_fast < events_scalar / 3


class TestProfilerAttribution:
    def test_burst_run_cycles_fully_attributed(self):
        # The profiler's ledger must account for every cycle the engine
        # clock charged, burst replay included: a nonzero residue means
        # the fast path charged cycles outside the named operations.
        from repro.nic.config import aurora_oc3
        from repro.nic.nic import HostNetworkInterface
        from repro.results.experiments import lab_host
        from repro.sim.core import SimConfig, Simulator

        config = lab_host(aurora_oc3())
        sim = Simulator(SimConfig(fast_path=True))
        nic = HostNetworkInterface(sim, config, name="rxhost")
        profiler = profile_interface(nic)
        assert isinstance(profiler, CycleProfiler)

        from repro.aal.aal5 import Aal5Segmenter
        from repro.atm.addressing import VcAddress
        from repro.atm.burst import CellBurst
        from repro.workloads.generators import make_payload

        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        segmenter = Aal5Segmenter(vc.address)
        cells = []
        for _ in range(8):
            cells.extend(segmenter.segment(make_payload(1500)))
        slot = config.link.cell_time

        def feeder():
            last = 0.0
            index = 0
            while index < len(cells):
                chunk = cells[index:index + 32]
                index += len(chunk)
                arrivals = []
                for _ in chunk:
                    last = last + slot
                    arrivals.append(last)
                accept = nic.rx_fifo.put_burst(CellBurst(chunk, arrivals))
                blocked = not accept.triggered
                yield accept
                if blocked:
                    last = max(sim.now, last)
                wait = last - sim.now
                if wait > 0:
                    yield sim.timeout(wait)

        sim.process(feeder())
        sim.run(until=3.0 * len(cells) * slot)
        assert profiler.reconcile(nic.rx_clock, "rx") == 0.0
