"""TX/RX pipeline behaviour in isolation."""

import pytest

from repro.aal.aal5 import Aal5Segmenter, cells_for_sdu
from repro.atm import AtmCell, PhysicalLink, VcAddress
from repro.nic import HostNetworkInterface, aurora_oc3
from repro.nic.config import NicConfig
from repro.workloads.generators import make_payload

PAYLOAD = bytes(48)


def build_nic(sim, config=None, name="nic"):
    return HostNetworkInterface(
        sim, config if config is not None else aurora_oc3(), name=name
    )


class TestTxPipeline:
    def test_cells_reach_the_wire(self, sim):
        nic = build_nic(sim)
        wire = []
        link = PhysicalLink(sim, nic.config.link, sink=wire.append)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        nic.post(vc.address, b"x" * 200)
        sim.run(until=0.01)
        assert len(wire) == cells_for_sdu(200)
        assert wire[-1].end_of_frame
        assert all((c.vpi, c.vci) == tuple(vc.address) for c in wire)

    def test_cells_carry_latency_metadata(self, sim):
        nic = build_nic(sim)
        wire = []
        link = PhysicalLink(sim, nic.config.link, sink=wire.append)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        nic.post(vc.address, b"x" * 50)
        sim.run(until=0.01)
        assert all("posted_at" in c.meta and "pdu_id" in c.meta for c in wire)

    def test_send_to_unopened_vc_rejected(self, sim):
        nic = build_nic(sim)
        with pytest.raises(ValueError):
            nic.send(VcAddress(0, 999), b"data")

    def test_pdus_sent_in_order(self, sim):
        nic = build_nic(sim)
        wire = []
        link = PhysicalLink(sim, nic.config.link, sink=wire.append)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        for marker in (b"\x01", b"\x02", b"\x03"):
            nic.post(vc.address, marker * 40)
        sim.run(until=0.01)
        firsts = [c.payload[0] for c in wire if c.end_of_frame]
        assert firsts == [1, 2, 3]

    def test_tx_stats(self, sim):
        nic = build_nic(sim)
        link = PhysicalLink(sim, nic.config.link, sink=lambda c: None)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        nic.post(vc.address, b"x" * 100)
        sim.run(until=0.01)
        assert nic.tx_engine.pdus_sent.count == 1
        assert nic.tx_engine.cells_sent.count == cells_for_sdu(100)
        assert nic.tx_clock.total_cycles > 0

    def test_engine_charges_expected_cycles(self, sim):
        nic = build_nic(sim)
        link = PhysicalLink(sim, nic.config.link, sink=lambda c: None)
        nic.attach_tx_link(link)
        vc = nic.open_vc()
        size = 200
        nic.post(vc.address, b"x" * size)
        sim.run(until=0.01)
        expected = nic.config.tx_costs.pdu_total_cycles(cells_for_sdu(size))
        assert nic.tx_clock.total_cycles == pytest.approx(expected)


class TestRxPipeline:
    def feed(self, sim, nic, vc, sdu):
        for cell in Aal5Segmenter(vc).segment(sdu):
            nic.rx_engine.receive_cell(cell)

    def test_delivers_pdu_to_host(self, sim):
        nic = build_nic(sim)
        received = []
        nic.on_pdu = received.append
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        self.feed(sim, nic, vc.address, b"payload-bytes")
        sim.run(until=0.01)
        assert len(received) == 1
        assert received[0].sdu == b"payload-bytes"

    def test_unknown_vc_cells_counted_and_dropped(self, sim):
        nic = build_nic(sim)
        received = []
        nic.on_pdu = received.append
        nic.start()
        self.feed(sim, nic, VcAddress(0, 999), b"orphan")
        sim.run(until=0.01)
        assert received == []
        assert nic.rx_engine.cells_unknown_vc.count == 1

    def test_closed_vc_stops_reception(self, sim):
        nic = build_nic(sim)
        received = []
        nic.on_pdu = received.append
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        nic.close_vc(vc.address)
        self.feed(sim, nic, VcAddress(0, 100), b"late")
        sim.run(until=0.01)
        assert received == []

    def test_host_buffer_exhaustion_drops_pdus(self, sim):
        from dataclasses import replace

        config = replace(aurora_oc3(), rx_buffer_slots=1)
        nic = build_nic(sim, config)
        # Hold the only buffer hostage.
        hostage = nic.rx_buffers.allocate()
        assert hostage is not None
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        self.feed(sim, nic, vc.address, b"data")
        sim.run(until=0.01)
        assert nic.rx_engine.pdus_no_host_buffer.count == 1

    def test_reassembly_timeout_reclaims_context(self, sim):
        nic = build_nic(sim)
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        cells = Aal5Segmenter(vc.address).segment(b"x" * 300)
        for cell in cells[:-1]:  # tail never arrives
            nic.rx_engine.receive_cell(cell)
        sim.run(until=0.05)
        assert nic.rx_engine.reassembler.has_context(vc.address)
        sim.run(until=1.0)
        assert not nic.rx_engine.reassembler.has_context(vc.address)
        assert nic.reassembly_timers.expirations.count == 1
        assert nic.buffer_memory.used_cells == 0

    def test_buffer_memory_reclaimed_after_delivery(self, sim):
        nic = build_nic(sim)
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        self.feed(sim, nic, vc.address, b"y" * 500)
        sim.run(until=0.01)
        assert nic.buffer_memory.used_cells == 0

    def test_corrupted_pdu_counted_not_delivered(self, sim):
        nic = build_nic(sim)
        received = []
        nic.on_pdu = received.append
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        cells = Aal5Segmenter(vc.address).segment(make_payload(300))
        bad = bytearray(cells[1].payload)
        bad[0] ^= 1
        cells[1] = AtmCell(
            vpi=cells[1].vpi, vci=cells[1].vci, payload=bytes(bad), pti=cells[1].pti
        )
        for cell in cells:
            nic.rx_engine.receive_cell(cell)
        sim.run(until=0.01)
        assert received == []
        assert nic.stats().pdus_discarded == 1

    def test_engine_charges_expected_cycles(self, sim):
        nic = build_nic(sim)
        vc = nic.open_vc(address=VcAddress(0, 100))
        nic.start()
        size = 500
        self.feed(sim, nic, vc.address, b"z" * size)
        sim.run(until=0.01)
        expected = nic.config.rx_costs.pdu_total_cycles(
            cells_for_sdu(size), cam_fitted=True, table_size=1
        )
        assert nic.rx_clock.cycles_by_tag["rx-cell"] == pytest.approx(expected)
