"""repro.runner: specs, the store, the executor, and the bench gate.

The heart of the file is the acceptance property the subsystem was
built around: a sweep run with ``--workers 4`` and a cache-warm re-run
are *byte-identical* to a serial run -- same x order, same floats,
compared via ``float.hex`` so not even one ULP of drift hides.
"""

import json
import math

import pytest

from repro.faults.sweep import run_campaign_sweep, sweep_summary
from repro.results.experiments import run_f7
from repro.runner import (
    Baseline,
    BaselineGate,
    Executor,
    Point,
    ResultStore,
    RunLog,
    SweepError,
    SweepSpec,
    Tolerance,
    content_hash,
    cost_model_fingerprint,
    kernel_name,
    run_sweep,
)

# ---------------------------------------------------------------------------
# module-level kernels (picklable across the process-pool boundary)
# ---------------------------------------------------------------------------


def noisy_kernel(params, streams):
    """Depends on params and the hash-derived stream only."""
    rng = streams.stream("noise")
    return {"y": params["x"] * 10 + rng.random()}


def fragile_kernel(params, streams):
    """Deterministically explodes on one point of the sweep."""
    if params["x"] == 2:
        raise ValueError("point 2 always diverges")
    return {"y": params["x"]}


def typed_kernel(params, streams):
    """Returns the wrong type to exercise the contract check."""
    return [params["x"]]


# ---------------------------------------------------------------------------
# SweepSpec / Point
# ---------------------------------------------------------------------------


class TestSweepSpec:
    def test_grid_expands_in_axis_declaration_order(self):
        spec = SweepSpec.grid(
            "X", axes={"a": (1, 2), "b": (10, 20)}, fixed={"c": 5}
        )
        points = spec.points()
        assert [p.params for p in points] == [
            {"c": 5, "a": 1, "b": 10},
            {"c": 5, "a": 1, "b": 20},
            {"c": 5, "a": 2, "b": 10},
            {"c": 5, "a": 2, "b": 20},
        ]
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert len(spec) == 4
        assert spec.x_axis == "a"

    def test_from_points_preserves_order(self):
        spec = SweepSpec.from_points(
            "X", points=[{"arch": "dual"}, {"arch": "shared"}], fixed={"n": 1}
        )
        assert [p.params["arch"] for p in spec.points()] == ["dual", "shared"]
        assert spec.x_axis is None

    def test_hash_is_content_addressed(self):
        a = content_hash("X", {"p": 1, "q": 2})
        b = content_hash("X", {"q": 2, "p": 1})
        assert a == b  # key order is canonicalised away
        assert content_hash("X", {"p": 1, "q": 3}) != a
        assert content_hash("Y", {"p": 1, "q": 2}) != a

    def test_tuples_and_lists_hash_identically(self):
        assert content_hash("X", {"v": (1, 2)}) == content_hash(
            "X", {"v": [1, 2]}
        )

    def test_unhashable_param_is_rejected(self):
        with pytest.raises(TypeError):
            content_hash("X", {"fn": object()})

    def test_point_seed_derives_from_hash_only(self):
        p1 = SweepSpec.grid("X", axes={"a": (1,)}).points()[0]
        p2 = SweepSpec.grid("X", axes={"a": (1,)}).points()[0]
        assert p1.seed == p2.seed
        assert p1.streams().stream("s").random() == p2.streams().stream(
            "s"
        ).random()

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec.grid("X", axes={})
        with pytest.raises(ValueError):
            SweepSpec.grid("X", axes={"a": ()})


# ---------------------------------------------------------------------------
# ResultStore / RunLog
# ---------------------------------------------------------------------------


class TestResultStore:
    def point(self):
        return SweepSpec.grid("X", axes={"a": (1,)}).points()[0]

    def test_round_trip_is_bit_exact(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="f" * 16)
        values = {"y": 0.1 + 0.2, "n": 3}
        store.put(self.point(), "k", values)
        got = store.get(self.point(), "k")
        assert got == values
        assert got["y"].hex() == (0.1 + 0.2).hex()

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="f" * 16)
        assert store.get(self.point(), "k") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="f" * 16)
        path = store.put(self.point(), "k", {"y": 1})
        path.write_text("{ not json", encoding="utf-8")
        assert store.get(self.point(), "k") is None

    def test_fingerprint_partitions_the_cache(self, tmp_path):
        old = ResultStore(root=tmp_path, fingerprint="a" * 16)
        new = ResultStore(root=tmp_path, fingerprint="b" * 16)
        old.put(self.point(), "k", {"y": 1})
        assert new.get(self.point(), "k") is None
        assert (self.point(), "k") in old
        assert (self.point(), "k") not in new

    def test_kernel_name_partitions_the_cache(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="f" * 16)
        store.put(self.point(), "mod:f", {"y": 1})
        assert store.get(self.point(), "mod:g") is None

    def test_cost_model_fingerprint_is_stable(self):
        assert cost_model_fingerprint() == cost_model_fingerprint()
        assert len(cost_model_fingerprint()) == 16

    def test_run_log_records_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            log.event("sweep_started", points=3)
            log.event("point_completed", index=0)
        lines = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert [l["event"] for l in lines] == [
            "sweep_started",
            "point_completed",
        ]
        assert lines[0]["points"] == 3
        assert log.events_written == 2


# ---------------------------------------------------------------------------
# Executor
# ---------------------------------------------------------------------------


class TestExecutor:
    SPEC = SweepSpec.grid("X", axes={"x": (1, 2, 3, 4)})

    def test_serial_and_parallel_values_identical(self):
        serial = run_sweep(self.SPEC, noisy_kernel, workers=1)
        parallel = run_sweep(self.SPEC, noisy_kernel, workers=3)
        assert serial.values == parallel.values
        assert [v["y"].hex() for v in serial.values] == [
            v["y"].hex() for v in parallel.values
        ]

    def test_failure_is_contained_to_its_point(self):
        run = Executor(workers=0).run(self.SPEC, fragile_kernel)
        assert not run.ok
        assert [f.point.params["x"] for f in run.failures] == [2]
        # the healthy points all completed despite the casualty
        healthy = [v for v in run.values if v is not None]
        assert [v["y"] for v in healthy] == [1, 3, 4]
        assert run.stats["failed"] == 1
        assert run.stats["executed"] == 3

    def test_failure_is_contained_in_parallel_too(self):
        run = Executor(workers=2).run(self.SPEC, fragile_kernel)
        assert [f.point.params["x"] for f in run.failures] == [2]
        assert sum(v is not None for v in run.values) == 3

    def test_run_sweep_raises_loudly_naming_the_casualty(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep(self.SPEC, fragile_kernel)
        assert "1 of 4" in str(excinfo.value)
        assert "x=2" in str(excinfo.value)
        # the partial run rides along for forensics
        assert sum(v is not None for v in excinfo.value.run.values) == 3

    def test_retries_are_bounded_and_counted(self):
        executor = Executor(workers=0, retries=2)
        run = executor.run(self.SPEC, fragile_kernel)
        assert run.failures[0].attempts == 3
        assert run.stats["retried"] == 2

    def test_non_dict_return_is_an_error(self):
        run = Executor(workers=0).run(self.SPEC, typed_kernel)
        assert len(run.failures) == 4
        assert "expected dict" in run.failures[0].error

    def test_cache_warm_run_executes_nothing(self, tmp_path):
        store = ResultStore(root=tmp_path, fingerprint="f" * 16)
        cold = Executor(workers=0)
        cold.run(self.SPEC, noisy_kernel, store=store)
        assert cold.stats["executed"] == 4
        warm = Executor(workers=0)
        run = warm.run(self.SPEC, noisy_kernel, store=store)
        assert warm.stats == {
            "points": 4,
            "executed": 0,
            "cached": 4,
            "retried": 0,
            "failed": 0,
        }
        assert run.values == cold.run(self.SPEC, noisy_kernel).values

    def test_run_log_covers_every_point(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        run_sweep(self.SPEC, noisy_kernel, log=log)
        log.close()
        events = [
            json.loads(line)["event"]
            for line in log.path.read_text().strip().splitlines()
        ]
        assert events[0] == "sweep_started"
        assert events[-1] == "sweep_completed"
        assert events.count("point_completed") == 4

    def test_series_assembles_in_spec_order(self):
        run = run_sweep(self.SPEC, noisy_kernel)
        series = run.series(name="s")
        assert series.x == [1, 2, 3, 4]
        assert series.x_label == "x"

    def test_kernel_name_is_dotted_identity(self):
        assert kernel_name(noisy_kernel).endswith("test_runner:noisy_kernel")


# ---------------------------------------------------------------------------
# the acceptance property: F7 parallel == serial == cache-warm, bytewise
# ---------------------------------------------------------------------------


F7_KWARGS = dict(clocks_mhz=(20, 33), window=0.004)


def _series_bytes(result):
    """Every float of a Series, spelled exactly."""
    series = result.series
    payload = [series.x_label, [float(x).hex() for x in series.x]]
    for name in sorted(series.columns):
        payload.append([name, [float(v).hex() for v in series.columns[name]]])
    return payload


class TestF7EndToEnd:
    def test_parallel_and_warm_runs_are_byte_identical(self, tmp_path):
        serial = run_f7(**F7_KWARGS, workers=1)

        parallel = run_f7(**F7_KWARGS, workers=4)
        assert _series_bytes(parallel) == _series_bytes(serial)
        assert parallel.metrics == serial.metrics

        store = ResultStore(root=tmp_path)
        cold = run_f7(**F7_KWARGS, workers=4, store=store)
        assert _series_bytes(cold) == _series_bytes(serial)

        # cache-warm: zero simulation points execute, bytes still equal
        warm_executor_probe = Executor(workers=0)
        from repro.results.experiments import _f7_point

        spec = SweepSpec.grid(
            "F7",
            axes={"engine_mhz": F7_KWARGS["clocks_mhz"]},
            fixed={
                "sdu_size": 9180,
                "window": F7_KWARGS["window"],
                "simulate": True,
            },
        )
        run = warm_executor_probe.run(spec, _f7_point, store=store)
        assert warm_executor_probe.stats["executed"] == 0
        assert warm_executor_probe.stats["cached"] == len(spec)

        warm = run_f7(**F7_KWARGS, store=store)
        assert _series_bytes(warm) == _series_bytes(serial)
        assert warm.metrics == serial.metrics


# ---------------------------------------------------------------------------
# fault campaigns as seed sweeps
# ---------------------------------------------------------------------------


class TestCampaignSweep:
    KWARGS = dict(
        preset="uniform-loss", seeds=(1, 2), duration=0.004, pdus_per_vc=4
    )

    def test_seed_sweep_is_parallel_identical(self):
        serial = run_campaign_sweep(**self.KWARGS)
        parallel = run_campaign_sweep(**self.KWARGS, workers=2)
        assert serial.values == parallel.values
        summary = sweep_summary(serial)
        assert summary["seeds"] == 2.0
        assert summary["all_conserved"] == 1.0

    def test_unknown_preset_and_design_fail_fast(self):
        with pytest.raises(ValueError):
            run_campaign_sweep(preset="nope")
        with pytest.raises(ValueError):
            run_campaign_sweep(design="nope")


# ---------------------------------------------------------------------------
# BaselineGate
# ---------------------------------------------------------------------------


class TestBaselineGate:
    def test_tolerance_band_semantics(self):
        band = Tolerance(rel=0.01, abs=0.0)
        assert band.allows(100.0, 100.9)
        assert not band.allows(100.0, 101.1)
        assert Tolerance(rel=0.0, abs=0.5).allows(10.0, 10.4)
        assert Tolerance().allows(float("nan"), float("nan"))
        assert not Tolerance().allows(float("nan"), 1.0)
        assert Tolerance().allows(math.inf, math.inf)
        assert not Tolerance().allows(math.inf, 1.0)

    def gate(self, tmp_path):
        gate = BaselineGate(tmp_path)
        gate.write(
            Baseline(
                experiment="T9",
                metrics={"a": 100.0, "b": 5.0},
                per_metric={"b": Tolerance(rel=0.0, abs=0.0)},
                bench_kwargs={"window": 0.01},
                note="test baseline",
            )
        )
        return gate

    def test_write_load_round_trip(self, tmp_path):
        gate = self.gate(tmp_path)
        loaded = gate.load("T9")
        assert loaded.metrics == {"a": 100.0, "b": 5.0}
        assert loaded.tolerance_for("b") == Tolerance(rel=0.0, abs=0.0)
        assert loaded.tolerance_for("a") == Tolerance()
        assert loaded.bench_kwargs == {"window": 0.01}
        assert gate.known() == ["T9"]

    def test_in_band_run_passes(self, tmp_path):
        report = self.gate(tmp_path).compare("T9", {"a": 100.5, "b": 5.0})
        assert report.ok
        assert "PASS" in report.format()

    def test_out_of_band_run_fails(self, tmp_path):
        report = self.gate(tmp_path).compare("T9", {"a": 150.0, "b": 5.0})
        assert not report.ok
        assert [d.metric for d in report.failures] == ["a"]
        assert "FAIL" in report.format()

    def test_zero_tolerance_metric_is_exact(self, tmp_path):
        report = self.gate(tmp_path).compare("T9", {"a": 100.0, "b": 5.0001})
        assert not report.ok

    def test_missing_metric_fails_new_metric_informs(self, tmp_path):
        report = self.gate(tmp_path).compare("T9", {"a": 100.0, "c": 1.0})
        assert not report.ok
        assert [d.metric for d in report.failures] == ["b"]
        assert report.new_metrics == ["c"]

    def test_merge_aggregates_verdicts(self, tmp_path):
        gate = self.gate(tmp_path)
        ok = gate.compare("T9", {"a": 100.0, "b": 5.0})
        bad = gate.compare("T9", {"a": 0.0, "b": 5.0})
        merged = gate.merge({"one": ok, "two": bad})
        assert not merged.ok
        assert len(merged.deviations) == 4


# ---------------------------------------------------------------------------
# the registry and the bench CLI
# ---------------------------------------------------------------------------


class TestRegistryAndBench:
    def test_registry_mirrors_experiments(self):
        from repro.results.experiments import EXPERIMENTS
        from repro.runner import registry

        assert list(registry.REGISTRY) == list(EXPERIMENTS)
        for entry in registry.entries():
            assert entry.description, entry.id
        assert registry.get("f7").sweep
        assert not registry.get("T1").sweep
        with pytest.raises(KeyError):
            registry.get("T99")

    def test_bench_update_then_check_round_trips(self, tmp_path):
        from repro.runner.bench import main as bench_main

        baselines = tmp_path / "baselines"
        cache = tmp_path / "cache"
        common = [
            "T1",
            "--baseline-dir",
            str(baselines),
            "--cache-dir",
            str(cache),
        ]
        assert bench_main(common + ["--update"]) == 0
        assert (baselines / "T1.json").exists()
        assert bench_main(common + ["--check"]) == 0

        # perturb one committed metric beyond tolerance -> exit 1
        path = baselines / "T1.json"
        payload = json.loads(path.read_text())
        metric = sorted(payload["metrics"])[0]
        payload["metrics"][metric] = payload["metrics"][metric] * 2 + 1.0
        path.write_text(json.dumps(payload))
        assert bench_main(common + ["--check"]) == 1

    def test_bench_check_without_baseline_fails(self, tmp_path):
        from repro.runner.bench import main as bench_main

        code = bench_main(
            ["T1", "--baseline-dir", str(tmp_path / "void"), "--check", "--no-cache"]
        )
        assert code == 1

    def test_committed_baselines_cover_the_bench_set(self):
        from pathlib import Path

        from repro.runner import registry
        from repro.runner.bench import default_baseline_dir

        directory = default_baseline_dir()
        assert directory == Path(__file__).resolve().parent.parent / (
            "benchmarks/baselines"
        )
        committed = {p.stem for p in directory.glob("*.json")}
        assert set(registry.BENCH_DEFAULT) <= committed

    def test_cli_flags_reach_the_runner(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "F6",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--log",
                str(tmp_path / "run.jsonl"),
            ]
        )
        assert code == 0
        assert (tmp_path / "run.jsonl").exists()
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        assert "sweep_started" in events

    def test_help_enumerates_every_experiment(self, capsys):
        from repro.cli import build_parser
        from repro.results.experiments import EXPERIMENTS

        text = build_parser().format_help()
        for experiment_id in EXPERIMENTS:
            assert f"\n  {experiment_id}" in text


def test_instrument_executor_exposes_counters():
    from repro.obs import instrument
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.core import Simulator

    registry = MetricsRegistry(Simulator())
    executor = Executor(workers=0)
    instrument(registry, executor)
    executor.run(SweepSpec.grid("X", axes={"x": (1, 2)}), noisy_kernel)
    snap = registry.snapshot()
    assert snap["runner.points"] == 2
    assert snap["runner.executed"] == 2
    assert snap["runner.cached"] == 0
