"""Property-based invariants across the kernel and the data path.

These tests drive randomised operation sequences through the core data
structures and assert the conservation laws the rest of the system
relies on: stores neither lose nor duplicate items, resources never
exceed capacity, FIFOs conserve cells, buffer memory never goes
negative, and the end-to-end SAR pipeline delivers exactly the bytes
that were sent.
"""

from hypothesis import given, settings, strategies as st

from repro.atm import AtmCell
from repro.nic import AdaptorBufferMemory, BufferMemorySpec, CellFifo
from repro.sim import Resource, Simulator, Store


class TestStoreConservation:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("put"), st.integers(0, 999)),
                st.tuples(st.just("get"), st.just(0)),
            ),
            max_size=60,
        ),
        capacity=st.one_of(st.none(), st.integers(1, 8)),
    )
    def test_items_never_lost_or_duplicated(self, ops, capacity):
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        offered = []
        accepted = []
        taken = []
        for op, value in ops:
            if op == "put":
                offered.append(value)
                if store.try_put(value):
                    accepted.append(value)
            else:
                ok, item = store.try_get()
                if ok:
                    taken.append(item)
        # Everything taken was accepted, in FIFO order.
        assert taken == accepted[: len(taken)]
        # Whatever remains is the un-taken tail of the accepted stream.
        remaining = []
        while True:
            ok, item = store.try_get()
            if not ok:
                break
            remaining.append(item)
        assert taken + remaining == accepted
        # Capacity was never exceeded.
        if capacity is not None:
            assert store.peak_occupancy <= capacity


class TestResourceInvariant:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(1, 4),
        holders=st.integers(1, 12),
        hold_times=st.lists(
            st.floats(0.001, 0.1), min_size=12, max_size=12
        ),
    )
    def test_never_more_holders_than_capacity(self, capacity, holders, hold_times):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        max_seen = [0]

        def user(hold):
            grant = resource.request()
            yield grant
            max_seen[0] = max(max_seen[0], resource.in_use)
            yield sim.timeout(hold)
            resource.release(grant)

        for i in range(holders):
            sim.process(user(hold_times[i]))
        sim.run()
        assert max_seen[0] <= capacity
        assert resource.in_use == 0  # all released
        assert resource.queue_length == 0


class TestCellFifoConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        depth=st.integers(1, 16),
        n_cells=st.integers(0, 40),
    )
    def test_in_equals_out_plus_dropped(self, depth, n_cells):
        sim = Simulator()
        fifo = CellFifo(sim, depth_cells=depth)
        payload = bytes(48)
        accepted = 0
        for i in range(n_cells):
            if fifo.try_put(AtmCell(vpi=0, vci=32 + (i % 100), payload=payload)):
                accepted += 1
        drained = 0
        while fifo.try_get() is not None:
            drained += 1
        assert accepted == drained
        assert fifo.overflows.count == n_cells - accepted
        assert accepted <= depth


class TestBufferMemoryInvariant:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["alloc", "release"]),
                st.integers(0, 5),  # owner id
                st.integers(1, 30),  # cells
            ),
            max_size=40,
        )
    )
    def test_occupancy_bounded_and_consistent(self, ops):
        sim = Simulator()
        memory = AdaptorBufferMemory(
            sim, BufferMemorySpec(capacity_cells=64)
        )
        held: dict[int, int] = {}
        for op, owner, cells in ops:
            if op == "alloc":
                if memory.allocate(owner, cells):
                    held[owner] = held.get(owner, 0) + cells
            else:
                freed = memory.release(owner)
                assert freed == held.pop(owner, 0)
        assert memory.used_cells == sum(held.values())
        assert 0 <= memory.used_cells <= 64


class TestEndToEndConservation:
    @settings(max_examples=10, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 4000), min_size=1, max_size=6),
    )
    def test_pipeline_delivers_exactly_what_was_sent(self, sizes):
        from repro.nic import aurora_oc3
        from repro.workloads.scenarios import build_point_to_point

        sim = Simulator()
        scenario = build_point_to_point(sim, aurora_oc3())
        payloads = [bytes([i % 256]) * size for i, size in enumerate(sizes)]
        for payload in payloads:
            scenario.sender.post(scenario.vc, payload)
        sim.run(until=0.2)
        assert [c.sdu for c in scenario.received] == payloads


class TestReassemblerCellConservation:
    """Every consumed cell ends in exactly one stats bucket."""

    @staticmethod
    def _check(stats, open_cells):
        assert stats.cells_consumed == (
            stats.cells_delivered
            + stats.cells_discarded
            + stats.cells_orphaned
            + open_cells
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss_p=st.floats(0.0, 0.3),
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=8),
    )
    def test_aal5_under_random_cell_loss(self, seed, loss_p, sizes):
        import random

        from repro.aal.aal5 import Aal5Reassembler, Aal5Segmenter
        from repro.atm.addressing import VcAddress

        rng = random.Random(seed)
        reassembler = Aal5Reassembler()
        for i, size in enumerate(sizes):
            vc = VcAddress(0, 100 + i % 3)
            for c in Aal5Segmenter(vc).segment(bytes(size)):
                if rng.random() >= loss_p:
                    reassembler.receive_cell(c)
            self._check(reassembler.stats, reassembler.open_cells())
        self._check(reassembler.stats, reassembler.open_cells())

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss_p=st.floats(0.0, 0.3),
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=8),
    )
    def test_aal34_under_random_cell_loss(self, seed, loss_p, sizes):
        import random

        from repro.aal.aal34 import Aal34Reassembler, Aal34Segmenter
        from repro.atm.addressing import VcAddress

        rng = random.Random(seed)
        reassembler = Aal34Reassembler()
        for i, size in enumerate(sizes):
            vc = VcAddress(0, 100 + i % 3)
            for c in Aal34Segmenter(vc, mid=i % 4).segment(bytes(size)):
                if rng.random() >= loss_p:
                    reassembler.receive_cell(c)
            self._check(reassembler.stats, reassembler.open_cells())
        self._check(reassembler.stats, reassembler.open_cells())

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        quota=st.integers(1, 3),
        sizes=st.lists(st.integers(100, 800), min_size=2, max_size=8),
    )
    def test_aal5_quota_eviction_conserves(self, seed, quota, sizes):
        """Interleaved VCs over a tight quota: evictions stay on the books."""
        import random

        from repro.aal.aal5 import Aal5Reassembler, Aal5Segmenter
        from repro.atm.addressing import VcAddress

        rng = random.Random(seed)
        reassembler = Aal5Reassembler(max_contexts=quota)
        streams = [
            list(Aal5Segmenter(VcAddress(0, 100 + i)).segment(bytes(size)))
            for i, size in enumerate(sizes)
        ]
        while any(streams):
            stream = rng.choice([s for s in streams if s])
            reassembler.receive_cell(stream.pop(0))
            assert reassembler.active_contexts() <= quota
        self._check(reassembler.stats, reassembler.open_cells())


class TestSystemCellConservation:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        loss_p=st.floats(0.0, 0.1),
        horizon=st.floats(0.002, 0.02),
    )
    def test_audit_balances_at_any_instant(self, seed, loss_p, horizon):
        """The full-path ledger balances even mid-run, loss or not."""
        import random

        from repro.atm.errors import UniformLoss
        from repro.faults.audit import CellConservationAuditor
        from repro.nic import aurora_oc3
        from repro.workloads.scenarios import build_point_to_point

        sim = Simulator()
        scenario = build_point_to_point(
            sim,
            aurora_oc3(),
            n_vcs=2,
            loss_ab=UniformLoss(loss_p, rng=random.Random(seed)),
        )
        auditor = CellConservationAuditor(scenario.link_ab, scenario.receiver)
        for i in range(6):
            scenario.sender.post(scenario.vcs[i % 2], bytes(2000 + 137 * i))
        sim.run(until=horizon)
        auditor.assert_conserved()
        sim.run(until=horizon + 1.0)  # drain + timer sweeps
        ledger = auditor.assert_conserved()
        assert ledger.wire_in_flight == 0
        assert ledger.fifo_queued == 0


class TestSchedulerEquivalence:
    """Heap and calendar backends share one total order, cancellations
    included -- for any schedule, any bucket geometry."""

    @settings(max_examples=60, deadline=None)
    @given(
        plan=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=1e4,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.booleans(),  # cancel this one before running?
            ),
            max_size=40,
        ),
        bucket_width=st.sampled_from([1e-7, 1e-3, 1.0, 250.0]),
        n_buckets=st.sampled_from([1, 7, 64]),
    )
    def test_pop_order_and_clock_identical(self, plan, bucket_width, n_buckets):
        from repro.sim.core import SimConfig

        def run(config):
            sim = Simulator(config)
            log = []
            victims = []
            for label, (t, doomed) in enumerate(plan):
                if doomed:
                    victims.append(sim.timeout(t))
                else:
                    sim.schedule_call(t, log.append, (t, label))
            for victim in victims:
                victim.cancel()
            sim.run()
            return log, sim.now, sim.events_processed

        reference = run(SimConfig(scheduler="heap"))
        wheel = run(
            SimConfig(
                scheduler="calendar",
                calendar_bucket_width=bucket_width,
                calendar_buckets=n_buckets,
            )
        )
        assert wheel == reference


class TestGcraAgainstReference:
    """The virtual-scheduling GCRA agrees verdict-for-verdict with the
    continuous-state leaky-bucket formulation, for any arrival pattern
    and any (T, tau)."""

    @settings(max_examples=80, deadline=None)
    @given(
        gaps=st.lists(
            st.floats(
                min_value=0.0,
                max_value=5e-3,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=50,
        ),
        increment=st.floats(min_value=1e-5, max_value=1e-2),
        tolerance=st.floats(min_value=0.0, max_value=5e-3),
    )
    def test_verdicts_match_leaky_bucket(self, gaps, increment, tolerance):
        from repro.atm import Gcra

        gcra = Gcra(increment=increment, tolerance=tolerance)

        # Independent reference: I.371's continuous-state leaky bucket.
        bucket = 0.0
        last_conforming = None
        arrivals = []
        t = 0.0
        for gap in gaps:
            t += gap
            arrivals.append(t)

        for arrival in arrivals:
            if last_conforming is None:
                drained = 0.0
            else:
                drained = max(0.0, bucket - (arrival - last_conforming))
            expected = drained <= tolerance + 1e-12
            if expected:
                bucket = drained + increment
                last_conforming = arrival
            assert gcra.conforms(arrival) == expected


class TestShaperConformance:
    """Whatever the offered pattern, the leaky-bucket shaper's output
    stream conforms to the GCRA of its configured rate."""

    @settings(max_examples=50, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2e-3),  # inter-batch gap
                st.integers(min_value=1, max_value=8),  # cells in the batch
            ),
            max_size=20,
        ),
        rate=st.sampled_from([1e3, 1e4, 353207.5]),
    )
    def test_output_never_violates_contract(self, batches, rate):
        from repro.atm import AtmCell, Gcra, LeakyBucketShaper

        sim = Simulator()
        releases = []
        shaper = LeakyBucketShaper(
            sim, cells_per_second=rate, sink=lambda c: releases.append(sim.now)
        )
        offered = 0

        def offer(count):
            nonlocal offered
            for _ in range(count):
                shaper.offer(AtmCell(vpi=0, vci=100, payload=bytes(48)))
                offered += 1

        t = 0.0
        for gap, count in batches:
            t += gap
            sim.schedule_call(t, offer, count)
        sim.run()

        assert len(releases) == offered  # unbounded queue: none dropped
        gcra = Gcra.for_rate(rate, tolerance=1e-9)
        assert all(gcra.conforms(when) for when in releases)


class TestWrrInvariants:
    """Work conservation and exact weight proportionality of the WRR
    discipline, for any queue set and any backlog."""

    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers(0, 3)),
                st.tuples(st.just("pop"), st.just(0)),
            ),
            max_size=80,
        ),
        weights=st.lists(st.integers(1, 5), min_size=4, max_size=4),
    )
    def test_work_conservation_and_item_conservation(self, ops, weights):
        from repro.tm import WeightedRoundRobin

        wrr = WeightedRoundRobin()
        for key, weight in enumerate(weights):
            wrr.add_queue(key, weight)
        pushed = []
        popped = []
        for op, key in ops:
            if op == "push":
                item = (key, len(pushed))
                pushed.append(item)
                wrr.push(key, item)
            else:
                item = wrr.pop()
                # Work conserving: pop yields iff anything is queued.
                assert (item is None) == (
                    len(pushed) == len(popped)
                )
                if item is not None:
                    popped.append(item)
        assert len(wrr) == len(pushed) - len(popped)
        # Nothing lost, nothing duplicated, FIFO within each queue.
        remaining = []
        while len(wrr):
            remaining.append(wrr.pop())
        assert sorted(popped + remaining) == sorted(pushed)
        for key in range(len(weights)):
            served_items = [i for i in popped if i[0] == key]
            assert served_items == sorted(served_items, key=lambda i: i[1])

    @settings(max_examples=50, deadline=None)
    @given(
        weights=st.lists(st.integers(1, 6), min_size=2, max_size=5),
        rounds=st.integers(1, 4),
    )
    def test_exact_weight_proportionality_under_backlog(self, weights, rounds):
        from repro.tm import WeightedRoundRobin

        wrr = WeightedRoundRobin()
        for key, weight in enumerate(weights):
            wrr.add_queue(key, weight)
            for i in range(weight * rounds + 3):
                wrr.push(key, (key, i))
        for _ in range(rounds * sum(weights)):
            assert wrr.pop() is not None
        # Continuous backlog: service counts follow the weights exactly.
        for key, weight in enumerate(weights):
            assert wrr.served[key] == weight * rounds


class TestCamChurnModel:
    """The LRU CAM against a reference model, for any op sequence.

    The model is a plain dict plus an explicit recency list; the CAM
    must agree with it on every lookup, never exceed capacity, never
    displace a pinned entry, and charge ``capacity_misses`` exactly for
    keys that lost their entry to eviction and were not since
    reprogrammed or removed.
    """

    @settings(max_examples=80, deadline=None)
    @given(
        capacity=st.integers(1, 4),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["install", "remove", "lookup", "pin"]),
                st.integers(0, 7),
            ),
            max_size=60,
        ),
    )
    def test_lru_cam_matches_reference_model(self, capacity, ops):
        import pytest

        from repro.nic.cam import Cam, CamFullError

        cam = Cam(capacity, eviction="lru")
        model = {}
        recency = []  # least recent first
        pinned = set()
        evicted = set()
        expected_capacity_misses = 0

        for op, key in ops:
            if op == "install":
                if key not in model and len(model) >= capacity:
                    victim = next(
                        (k for k in recency if k not in pinned), None
                    )
                    if victim is None:
                        with pytest.raises(CamFullError):
                            cam.install(key, key * 10)
                        continue
                    del model[victim]
                    recency.remove(victim)
                    evicted.add(victim)
                cam.install(key, key * 10)
                model[key] = key * 10
                if key in recency:
                    recency.remove(key)
                recency.append(key)
                evicted.discard(key)
            elif op == "remove":
                assert cam.remove(key) == model.pop(key, None)
                if key in recency:
                    recency.remove(key)
                evicted.discard(key)
                pinned.discard(key)
            elif op == "lookup":
                assert cam.lookup(key) == model.get(key)
                if key in model:
                    recency.remove(key)
                    recency.append(key)
                elif key in evicted:
                    expected_capacity_misses += 1
            else:  # pin
                cam.pin(key)
                pinned.add(key)

            assert len(cam) == len(model) <= capacity
            assert cam.capacity_misses == expected_capacity_misses
            for k in pinned:
                if k in model:
                    assert k in cam  # pinned entries survive any churn

        assert cam.hits + cam.misses == sum(
            1 for op, _ in ops if op == "lookup"
        )

    def test_none_policy_full_cam_raises(self):
        import pytest

        from repro.nic.cam import Cam, CamFullError

        cam = Cam(2, eviction="none")
        cam.install(1, "a")
        cam.install(2, "b")
        cam.install(1, "a2")  # reprogramming an existing key is fine
        with pytest.raises(CamFullError):
            cam.install(3, "c")
