"""Integration: full sender/receiver pairs over simulated links."""

import pytest

from repro.atm import UniformLoss
from repro.nic import HostNetworkInterface, aurora_oc3, aurora_oc12, connect
from repro.workloads import GreedySource
from repro.workloads.generators import make_payload
from repro.workloads.scenarios import build_point_to_point


class TestLoopback:
    def test_every_pdu_arrives_intact(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        payloads = [make_payload(s) for s in (64, 100, 1500, 9180, 40)]
        for p in payloads:
            scenario.sender.post(scenario.vc, p)
        sim.run(until=0.05)
        assert [c.sdu for c in scenario.received] == payloads

    def test_bidirectional_traffic(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        connect(sim, a, b)
        vc_ab = a.open_vc()
        b.open_vc(address=vc_ab.address)
        vc_ba = b.open_vc()
        a.open_vc(address=vc_ba.address)
        got_a, got_b = [], []
        a.on_pdu = got_a.append
        b.on_pdu = got_b.append
        a.post(vc_ab.address, b"to-b" * 100)
        b.post(vc_ba.address, b"to-a" * 100)
        sim.run(until=0.05)
        assert got_b[0].sdu == b"to-b" * 100
        assert got_a[0].sdu == b"to-a" * 100

    def test_multiple_vcs_kept_separate(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3(), n_vcs=3)
        for i, vc in enumerate(scenario.vcs):
            scenario.sender.post(vc, bytes([i]) * 100)
        sim.run(until=0.05)
        by_vc = {c.vc: c.sdu for c in scenario.received}
        assert by_vc == {
            vc: bytes([i]) * 100 for i, vc in enumerate(scenario.vcs)
        }

    def test_end_to_end_latency_positive_and_ordered(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        scenario.sender.post(scenario.vc, make_payload(1500))
        sim.run(until=0.05)
        completion = scenario.received[0]
        assert completion.end_to_end_latency > 0
        assert completion.received_at <= completion.delivered_at

    def test_propagation_delay_adds_to_latency(self, sim):
        fast = build_point_to_point(sim, aurora_oc3())
        fast.sender.post(fast.vc, make_payload(100))
        sim.run(until=0.05)
        base = fast.received[0].end_to_end_latency

        sim2_scenario_sim = type(sim)()
        slow = build_point_to_point(
            sim2_scenario_sim, aurora_oc3(), propagation_delay=0.002
        )
        slow.sender.post(slow.vc, make_payload(100))
        sim2_scenario_sim.run(until=0.05)
        assert slow.received[0].end_to_end_latency == pytest.approx(
            base + 0.002, rel=0.01
        )

    def test_interrupt_per_pdu_not_per_cell(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        GreedySource(
            sim, scenario.sender, scenario.vc, 9180, total_pdus=5
        ).start()
        sim.run(until=0.1)
        stats = scenario.receiver.stats()
        assert stats.pdus_received == 5
        assert stats.interrupts_delivered == 5
        assert stats.cells_received == 5 * 192

    def test_stats_snapshot_consistency(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        GreedySource(
            sim, scenario.sender, scenario.vc, 1500, total_pdus=10
        ).start()
        sim.run(until=0.05)
        tx_stats = scenario.sender.stats()
        rx_stats = scenario.receiver.stats()
        assert tx_stats.pdus_sent == 10
        assert rx_stats.pdus_received == 10
        assert tx_stats.cells_sent == rx_stats.cells_received
        assert rx_stats.pdus_discarded == 0
        assert 0 <= rx_stats.rx_engine_utilization <= 1
        assert 0 <= rx_stats.host_cpu_utilization <= 1


class TestLossRecoveryBehaviour:
    def test_lossy_link_discards_but_never_corrupts(self, sim, rng):
        scenario = build_point_to_point(
            sim, aurora_oc3(), loss_ab=UniformLoss(0.02, rng)
        )
        payload = make_payload(1500)
        GreedySource(
            sim, scenario.sender, scenario.vc, 1500, total_pdus=60
        ).start()
        sim.run(until=0.2)
        stats = scenario.receiver.stats()
        assert stats.pdus_discarded > 0  # 2% cell loss, 32 cells/PDU
        assert stats.pdus_received + stats.pdus_discarded <= 60
        assert all(c.sdu == payload for c in scenario.received)

    def test_zero_loss_delivers_everything(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        GreedySource(
            sim, scenario.sender, scenario.vc, 1500, total_pdus=40
        ).start()
        sim.run(until=0.2)
        assert len(scenario.received) == 40


class TestOc12Behaviour:
    def test_rx_overrun_shows_up_as_fifo_loss(self, sim):
        # At STS-12c the 25 MHz receive engine cannot keep up with
        # back-to-back cells at line rate: fed a full wire (as a switch
        # merging several senders would deliver), the FIFO must overflow.
        # A single sender cannot create this -- its own TX path caps out
        # below the receiver's capacity, which is itself a finding.
        from repro.atm import STS12C_622, VcAddress
        from repro.workloads.scenarios import InterleavedCellSource

        nic = HostNetworkInterface(sim, aurora_oc12(), name="rx")
        source = InterleavedCellSource(
            sim, nic.rx_engine, STS12C_622, n_vcs=1, sdu_size=9180
        )
        nic.open_vc(address=source.vcs[0])
        nic.start()
        source.start()
        sim.run(until=0.02)
        assert nic.stats().rx_fifo_overflows > 0

    def test_oc3_no_overrun(self, sim):
        scenario = build_point_to_point(sim, aurora_oc3())
        GreedySource(sim, scenario.sender, scenario.vc, 9180).start()
        sim.run(until=0.02)
        assert scenario.receiver.stats().rx_fifo_overflows == 0
