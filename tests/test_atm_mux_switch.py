"""Output ports, multiplexers, and the cell switch."""

import pytest

from repro.atm import (
    AtmCell,
    AtmSwitch,
    CellMultiplexer,
    OutputPort,
    PhysicalLink,
    RoutingEntry,
    TAXI_100,
    VcAddress,
)

PAYLOAD = bytes(48)


def cell(vpi=0, vci=100):
    return AtmCell(vpi=vpi, vci=vci, payload=PAYLOAD)


def make_port(sim, buffer_cells=None, sink=None):
    delivered = []
    link = PhysicalLink(
        sim, TAXI_100, sink=sink if sink is not None else delivered.append
    )
    port = OutputPort(sim, link, buffer_cells=buffer_cells)
    return port, delivered, link


class TestOutputPort:
    def test_drains_in_order(self, sim):
        port, delivered, _link = make_port(sim)
        cells = [cell(vci=100 + i) for i in range(5)]
        for c in cells:
            assert port.offer(c)
        sim.run()
        assert delivered == cells

    def test_drop_tail_when_full(self, sim):
        port, delivered, _link = make_port(sim, buffer_cells=2)
        for _ in range(10):
            port.offer(cell())
        sim.run()
        # 1 in service + 2 buffered survive.
        assert len(delivered) == 3
        assert port.dropped.count == 7
        assert port.loss_ratio == pytest.approx(7 / 10)

    def test_occupancy_statistics(self, sim):
        port, _delivered, _link = make_port(sim)
        for _ in range(6):
            port.offer(cell())
        sim.run()
        assert port.occupancy.maximum == 5  # one immediately in service

    def test_drain_restarts_after_idle(self, sim):
        port, delivered, _link = make_port(sim)

        def late():
            yield sim.timeout(0.01)
            port.offer(cell())

        port.offer(cell())
        sim.process(late())
        sim.run()
        assert len(delivered) == 2

    def test_buffer_validation(self, sim):
        link = PhysicalLink(sim, TAXI_100, sink=lambda c: None)
        with pytest.raises(ValueError):
            OutputPort(sim, link, buffer_cells=0)


class TestMultiplexer:
    def test_merges_sources(self, sim):
        port, delivered, _link = make_port(sim)
        mux = CellMultiplexer(sim, port)
        for vci in (100, 200, 100, 300):
            mux.input(cell(vci=vci))
        sim.run()
        assert [c.vci for c in delivered] == [100, 200, 100, 300]
        assert mux.cells_in.count == 4

    def test_reports_drops(self, sim):
        port, _delivered, _link = make_port(sim, buffer_cells=1)
        mux = CellMultiplexer(sim, port)
        results = [mux.input(cell()) for _ in range(5)]
        assert results.count(False) == 3


class TestSwitch:
    def build(self, sim, n_out=2, fabric_delay=0.0):
        ports = []
        outputs = []
        for _ in range(n_out):
            delivered = []
            link = PhysicalLink(sim, TAXI_100, sink=delivered.append)
            ports.append(OutputPort(sim, link))
            outputs.append(delivered)
        switch = AtmSwitch(sim, ports, fabric_delay=fabric_delay)
        return switch, outputs

    def test_routing_with_translation(self, sim):
        switch, outputs = self.build(sim)
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(1, 7, 700))
        switch.receive(0, cell(vci=100))
        sim.run()
        assert len(outputs[1]) == 1
        out = outputs[1][0]
        assert (out.vpi, out.vci) == (7, 700)
        assert outputs[0] == []

    def test_unroutable_counted_and_dropped(self, sim):
        switch, outputs = self.build(sim)
        switch.receive(0, cell(vci=999))
        sim.run()
        assert switch.cells_unroutable.count == 1
        assert outputs[0] == [] and outputs[1] == []

    def test_input_port_disambiguates(self, sim):
        switch, outputs = self.build(sim)
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(0, 0, 500))
        switch.add_route(1, VcAddress(0, 100), RoutingEntry(1, 0, 600))
        switch.input(0)(cell(vci=100))
        switch.input(1)(cell(vci=100))
        sim.run()
        assert outputs[0][0].vci == 500
        assert outputs[1][0].vci == 600

    def test_multicast_copies(self, sim):
        switch, outputs = self.build(sim)
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(0, 0, 500))
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(1, 0, 600))
        switch.receive(0, cell(vci=100))
        sim.run()
        assert len(outputs[0]) == 1 and len(outputs[1]) == 1
        assert switch.cells_switched.count == 2

    def test_fabric_delay(self, sim):
        switch, outputs = self.build(sim, fabric_delay=1e-3)
        arrival = []
        switch.output_ports[0].link.connect(lambda c: arrival.append(sim.now))
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(0, 0, 500))
        switch.receive(0, cell(vci=100))
        sim.run()
        assert arrival[0] == pytest.approx(1e-3 + TAXI_100.cell_time)

    def test_remove_routes(self, sim):
        switch, _outputs = self.build(sim)
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(0, 0, 500))
        assert switch.remove_routes(0, VcAddress(0, 100)) == 1
        assert switch.route_for(0, VcAddress(0, 100)) is None

    def test_bad_out_port_rejected(self, sim):
        switch, _outputs = self.build(sim)
        with pytest.raises(ValueError):
            switch.add_route(0, VcAddress(0, 1), RoutingEntry(5, 0, 1))

    def test_total_dropped_aggregates_ports(self, sim):
        delivered = []
        link = PhysicalLink(sim, TAXI_100, sink=delivered.append)
        port = OutputPort(sim, link, buffer_cells=1)
        switch = AtmSwitch(sim, [port])
        switch.add_route(0, VcAddress(0, 100), RoutingEntry(0, 0, 500))
        for _ in range(6):
            switch.receive(0, cell(vci=100))
        sim.run()
        assert switch.total_dropped == 4
