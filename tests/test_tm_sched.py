"""Weighted-round-robin scheduling: discipline unit tests + NIC wiring."""

import pytest

from repro.atm import VcAddress
from repro.nic import HostNetworkInterface, aurora_oc3, connect
from repro.tm import WeightedRoundRobin, install_wrr
from repro.workloads.generators import GreedySource


class TestDiscipline:
    def test_fifo_within_one_queue(self):
        wrr = WeightedRoundRobin()
        for i in range(5):
            wrr.push("a", i)
        assert [wrr.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_empty_pops_none(self):
        wrr = WeightedRoundRobin()
        assert wrr.pop() is None
        wrr.push("a", 1)
        assert wrr.pop() == 1
        assert wrr.pop() is None

    def test_weight_proportional_service_under_backlog(self):
        wrr = WeightedRoundRobin()
        wrr.add_queue("a", 3)
        wrr.add_queue("b", 1)
        for i in range(400):
            wrr.push("a", ("a", i))
            wrr.push("b", ("b", i))
        for _ in range(200):
            wrr.pop()
        # 200 services split 3:1 -> 150/50 exactly (both stay backlogged).
        assert wrr.served["a"] == 150
        assert wrr.served["b"] == 50

    def test_work_conserving_when_weighted_queue_idle(self):
        wrr = WeightedRoundRobin()
        wrr.add_queue("heavy", 100)
        wrr.add_queue("light", 1)
        for i in range(10):
            wrr.push("light", i)
        # "heavy" has credits but no items; "light" must still be served.
        assert [wrr.pop() for _ in range(10)] == list(range(10))

    def test_auto_registration_defaults_to_weight_one(self):
        wrr = WeightedRoundRobin()
        wrr.push("x", 1)
        assert wrr.weight_of("x") == 1

    def test_weight_update_via_re_add(self):
        wrr = WeightedRoundRobin()
        wrr.add_queue("a", 1)
        wrr.add_queue("a", 7)
        assert wrr.weight_of("a") == 7
        assert wrr.keys == ["a"]

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            WeightedRoundRobin().add_queue("a", 0)


class TestNicIntegration:
    def test_wrr_splits_goodput_by_weight(self, sim):
        """Two backlogged VCs on one NIC share the link 3:1, not 1:1."""
        from dataclasses import replace

        from repro.atm.link import DS3_45

        # A DS3 wire keeps the host well ahead of the link, so both
        # per-VC queues stay backlogged and the split is WRR's doing.
        cfg = replace(aurora_oc3(), link=DS3_45)
        a = HostNetworkInterface(sim, cfg, name="a")
        b = HostNetworkInterface(sim, cfg, name="b")
        connect(sim, a, b)
        heavy = VcAddress(0, 40)
        light = VcAddress(0, 41)
        weights = {heavy: 3, light: 1}
        for vc in (heavy, light):
            a.open_vc(address=vc)
            b.open_vc(address=vc)
        queue = install_wrr(a, weight_of=weights.get)
        assert a.tx_engine.ring is queue

        delivered = {heavy: 0, light: 0}
        b.on_pdu = lambda pdu: delivered.__setitem__(
            pdu.vc, delivered[pdu.vc] + pdu.size
        )
        GreedySource(sim, a, heavy, 1528, name="g-heavy").start()
        GreedySource(sim, a, light, 1528, name="g-light").start()
        a.start()
        b.start()
        sim.run(until=0.02)

        assert delivered[light] > 0
        ratio = delivered[heavy] / delivered[light]
        assert ratio == pytest.approx(3.0, rel=0.15)

    def test_single_vc_throughput_unharmed(self, sim):
        """WRR in front of one VC must not slow the transmit path."""

        def goodput(with_wrr: bool) -> int:
            local = type(sim)()
            a = HostNetworkInterface(local, aurora_oc3(), name="a")
            b = HostNetworkInterface(local, aurora_oc3(), name="b")
            connect(local, a, b)
            vc = VcAddress(0, 50)
            a.open_vc(address=vc)
            b.open_vc(address=vc)
            if with_wrr:
                install_wrr(a)
            total = [0]
            b.on_pdu = lambda pdu: total.__setitem__(0, total[0] + pdu.size)
            GreedySource(local, a, vc, 4096).start()
            a.start()
            b.start()
            local.run(until=0.01)
            return total[0]

        assert goodput(True) == goodput(False)
