"""Call admission control: budget booking, reason codes, signalling wiring."""

import pytest

from repro.atm.cell import CELL_SIZE
from repro.atm.link import PhysicalLink, STS3C_155
from repro.atm.signalling import (
    CallRefused,
    MessageType,
    SignallingAgent,
    SignallingMessage,
)
from repro.nic import HostNetworkInterface, aurora_oc3, connect
from repro.tm import CacReject, CallAdmissionController


def setup_msg(call_ref: int, peak_rate_bps: float) -> SignallingMessage:
    return SignallingMessage(
        MessageType.SETUP,
        call_ref=call_ref,
        vpi=0,
        vci=100 + call_ref,
        peak_rate_bps=int(peak_rate_bps),
    )


def cells_per_second(peak_rate_bps: float) -> float:
    return peak_rate_bps / (CELL_SIZE * 8)


class TestAdmission:
    def link(self, sim):
        return PhysicalLink(sim, STS3C_155, sink=lambda c: None, name="l")

    def test_admits_until_peak_budget_exhausted(self, sim):
        cac = CallAdmissionController(sim)
        cac.add_link(self.link(sim), peak_budget=cells_per_second(100e6))
        assert cac.admit(setup_msg(1, 40e6))
        assert cac.admit(setup_msg(2, 40e6))
        assert not cac.admit(setup_msg(3, 40e6))
        assert cac.calls_admitted.count == 2
        assert cac.calls_rejected.count == 1
        assert cac.rejections == {CacReject.PEAK_OVERCOMMIT.value: 1}

    def test_sustained_budget_rejects_with_its_own_code(self, sim):
        cac = CallAdmissionController(sim, sustained_fraction=0.5)
        cac.add_link(
            self.link(sim),
            peak_budget=cells_per_second(1e9),
            sustained_budget=cells_per_second(30e6),
        )
        assert cac.admit(setup_msg(1, 40e6))  # books 20M sustained
        assert not cac.admit(setup_msg(2, 40e6))  # 40M > 30M budget
        assert cac.rejections == {CacReject.SUSTAINED_OVERCOMMIT.value: 1}

    def test_tightest_link_on_path_governs(self, sim):
        cac = CallAdmissionController(sim)
        cac.add_link(self.link(sim), peak_budget=cells_per_second(622e6))
        cac.add_link(self.link(sim), peak_budget=cells_per_second(50e6))
        assert cac.headroom() == pytest.approx(cells_per_second(50e6))
        assert not cac.admit(setup_msg(1, 100e6))

    def test_rejected_call_books_nothing(self, sim):
        cac = CallAdmissionController(sim)
        cac.add_link(self.link(sim), peak_budget=cells_per_second(50e6))
        cac.admit(setup_msg(1, 100e6))
        assert cac.booked_peak == 0.0

    def test_release_drains_the_books(self, sim):
        cac = CallAdmissionController(sim)
        cac.add_link(self.link(sim), peak_budget=cells_per_second(50e6))
        message = setup_msg(1, 40e6)
        assert cac.admit(message)
        assert not cac.admit(setup_msg(2, 40e6))

        class FakeCall:
            call_ref = message.call_ref

        cac.release(FakeCall())
        assert cac.booked_peak == 0.0
        assert cac.admit(setup_msg(3, 40e6))

    def test_release_of_unknown_call_is_harmless(self, sim):
        cac = CallAdmissionController(sim)
        cac.add_link(self.link(sim))

        class FakeCall:
            call_ref = 99

        cac.release(FakeCall())
        assert cac.booked_peak == 0.0


class TestSignallingIntegration:
    def test_guard_refuses_overcommitted_setups(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        link_ab, _ = connect(sim, a, b)
        sig_a = SignallingAgent(sim, a)
        sig_b = SignallingAgent(sim, b)
        cac = CallAdmissionController(sim)
        cac.add_link(link_ab, peak_budget=cells_per_second(100e6))
        cac.guard(sig_b)

        outcomes = []

        def caller(peak):
            call = sig_a.place_call(peak_rate_bps=peak)
            try:
                yield call.connected
                outcomes.append(("ok", call))
            except CallRefused:
                outcomes.append(("refused", call))

        for _ in range(3):
            sim.process(caller(40e6))
        sim.run(until=0.05)

        assert [kind for kind, _ in outcomes].count("ok") == 2
        assert [kind for kind, _ in outcomes].count("refused") == 1
        assert cac.rejections == {CacReject.PEAK_OVERCOMMIT.value: 1}

    def test_released_call_frees_budget_for_the_next(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        link_ab, _ = connect(sim, a, b)
        sig_a = SignallingAgent(sim, a)
        sig_b = SignallingAgent(sim, b)
        cac = CallAdmissionController(sim)
        cac.add_link(link_ab, peak_budget=cells_per_second(50e6))
        cac.guard(sig_b)

        outcomes = []

        def sequence():
            first = sig_a.place_call(peak_rate_bps=40e6)
            yield first.connected
            yield sig_a.release_call(first)
            second = sig_a.place_call(peak_rate_bps=40e6)
            try:
                yield second.connected
                outcomes.append("ok")
            except CallRefused:
                outcomes.append("refused")

        sim.process(sequence())
        sim.run(until=0.1)
        assert outcomes == ["ok"]
        assert cac.calls_admitted.count == 2

    def test_guard_composes_with_existing_policy(self, sim):
        a = HostNetworkInterface(sim, aurora_oc3(), name="a")
        b = HostNetworkInterface(sim, aurora_oc3(), name="b")
        link_ab, _ = connect(sim, a, b)
        sig_a = SignallingAgent(sim, a)
        sig_b = SignallingAgent(sim, b, on_setup=lambda message: False)
        cac = CallAdmissionController(sim)
        cac.add_link(link_ab)
        cac.guard(sig_b)

        refused = []

        def caller():
            call = sig_a.place_call(peak_rate_bps=1e6)
            try:
                yield call.connected
            except CallRefused:
                refused.append(call)

        sim.process(caller())
        sim.run(until=0.05)
        # The pre-existing policy said no before CAC ever booked.
        assert len(refused) == 1
        assert cac.calls_admitted.count == 0
        assert cac.calls_rejected.count == 0
