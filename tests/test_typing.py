"""The mypy --strict gate on the deterministic core, run when available.

CI installs mypy and runs the identical command as a dedicated job;
this test keeps the gate reproducible locally (``pip install mypy``)
while skipping cleanly in environments without it -- the simulator
itself must stay dependency-free.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]

STRICT_TARGETS = ["src/repro/sim", "src/repro/nic/costs.py", "src/repro/devtools"]


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed; the CI lint job runs this gate",
)
def test_deterministic_core_is_strictly_typed():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--strict",
            "--follow-imports=silent",
            *STRICT_TARGETS,
        ],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"MYPYPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
