"""Experiment harness plumbing: tables, registry, CLI."""

import pytest

from repro.analysis.sweep import Series
from repro.cli import main
from repro.results import EXPERIMENTS, format_series, format_table, run_experiment
from repro.results.experiments import (
    lab_host,
    run_t1,
    run_t2,
    steady_goodput_mbps,
    windowed_goodput_mbps,
)
from repro.nic import aurora_oc3
from repro.nic.descriptors import RxCompletion
from repro.atm import VcAddress


class TestTables:
    def test_basic_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series_rendering(self):
        series = Series("s", "x")
        series.add_point(1, y=2.0)
        text = format_series(series, title="Fig")
        assert "Fig" in text and "x" in text and "y" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[float("inf")], [123456.0], [0.000123]])
        assert "inf" in text
        assert "123,456" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3", "T4", "T5",
            "F2", "F3", "F4", "F5", "F6", "F7", "F8",
            "A1", "A2", "A3", "A4", "R1", "R2", "O1", "P1", "C1", "S1",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("T99")

    def test_case_insensitive(self):
        assert run_experiment("t1").experiment_id == "T1"


class TestCheapRunners:
    def test_t1_table_shape(self):
        result = run_t1()
        assert result.experiment_id == "T1"
        assert result.headers == ["operation", "cycles", "time (us)"]
        assert len(result.rows) >= 8
        assert "cell_middle_us" in result.metrics
        assert result.to_text()

    def test_t2_reports_both_lookup_modes(self):
        result = run_t2()
        assert "cell_middle_cam_us" in result.metrics
        assert "cell_middle_sw_us" in result.metrics
        assert (
            result.metrics["cell_middle_sw_us"]
            > result.metrics["cell_middle_cam_us"]
        )


class TestHelpers:
    def _completion(self, t, size=100):
        return RxCompletion(
            vc=VcAddress(0, 100),
            sdu=b"x" * size,
            buffer=None,
            received_at=t,
            delivered_at=t,
            cells=1,
        )

    def test_steady_goodput_excludes_rampup(self):
        completions = [self._completion(t) for t in (0.0, 1.0, 2.0)]
        # 200 bytes over 2 seconds.
        assert steady_goodput_mbps(completions) == pytest.approx(
            200 * 8 / 2 / 1e6
        )

    def test_steady_goodput_needs_three(self):
        assert steady_goodput_mbps([self._completion(0.0)]) == 0.0

    def test_windowed_goodput(self):
        completions = [self._completion(t) for t in (0.1, 0.5, 0.9)]
        mbps = windowed_goodput_mbps(completions, 0.4, 1.0)
        assert mbps == pytest.approx(200 * 8 / 0.6 / 1e6)

    def test_lab_host_zeroes_software(self):
        config = lab_host(aurora_oc3())
        assert config.os_costs.syscall_cycles == 0
        assert config.interrupt.entry_cycles == 0
        # Adaptor untouched.
        assert config.tx_costs == aurora_oc3().tx_costs


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F8" in out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2

    def test_unknown_experiment(self, capsys):
        assert main(["T99"]) == 2

    def test_runs_cheap_experiment(self, capsys):
        assert main(["T1"]) == 0
        out = capsys.readouterr().out
        assert "TX segmentation budget" in out
