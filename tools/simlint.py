#!/usr/bin/env python3
"""Stand-alone launcher for simlint (``python -m repro lint``).

Adds ``src/`` to ``sys.path`` so the linter runs from a bare checkout
without installation.  All behaviour lives in
:mod:`repro.devtools.cli`; see docs/STATIC_ANALYSIS.md for the rule
catalogue.

Run:  python tools/simlint.py [PATH ...] [--docs] [--format json]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.devtools.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
