#!/usr/bin/env python3
"""Documentation hygiene check, run by CI (shim).

The checks themselves moved into :mod:`repro.devtools.docs` so that
``python -m repro lint --docs`` is the one lint front door; this shim
keeps the historical invocation working from a bare checkout.

Two invariants:

1. Every package and module under ``src/repro`` carries a docstring
   (the observability layer made the docstrings part of the public
   API surface, so an undocumented module is a regression).
2. Every relative Markdown link in the repo's documentation resolves
   to a file that exists — README.md, DESIGN.md, EXPERIMENTS.md,
   ROADMAP.md, CHANGES.md and everything under docs/.

Exit status is non-zero with one line per violation, so the CI step
output is the fix list.

Run:  python tools/check_docs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.devtools.docs import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(REPO))
