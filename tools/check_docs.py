#!/usr/bin/env python3
"""Documentation hygiene check, run by CI.

Two invariants:

1. Every package and module under ``src/repro`` carries a docstring
   (the observability layer made the docstrings part of the public
   API surface, so an undocumented module is a regression).
2. Every relative Markdown link in the repo's documentation resolves
   to a file that exists — README.md, DESIGN.md, EXPERIMENTS.md,
   ROADMAP.md, CHANGES.md and everything under docs/.

Exit status is non-zero with one line per violation, so the CI step
output is the fix list.

Run:  python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

# [text](target) — capture the target; fenced code is stripped first.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def missing_docstrings() -> list[str]:
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            problems.append(
                f"{path.relative_to(REPO)}: missing module docstring"
            )
    return problems


def _doc_files() -> list[Path]:
    files = [p for p in REPO.glob("*.md")]
    files += sorted((REPO / "docs").glob("*.md"))
    return files


def broken_links() -> list[str]:
    problems = []
    for doc in _doc_files():
        text = _FENCE.sub("", doc.read_text())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            # Strip any #fragment; an empty path means same-file anchor.
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def main() -> int:
    problems = missing_docstrings() + broken_links()
    for line in problems:
        print(line)
    if problems:
        print(f"\n{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    n_modules = len(list(SRC.rglob("*.py")))
    n_docs = len(_doc_files())
    print(f"docs check OK: {n_modules} modules documented, "
          f"{n_docs} markdown files with resolving links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
