"""F7: engine-clock ablation against the STS-12c link.

Claims reproduced: a ~25 MHz engine is enough for STS-3c in both
directions; transmit reaches its STS-12c per-cell budget at ~25 MHz
while receive needs ~33 MHz -- the quantified case for receive-side
hardware assists; capacity grows with clock until the (engine-external)
DMA/link bounds take over; simulation matches the model at every point.
"""

from repro.results.experiments import run_f7

CLOCKS = (10, 20, 25, 33, 50)


def test_f7_clock_sweep(run_once):
    result = run_once(run_f7, clocks_mhz=CLOCKS, window=0.015)
    print()
    print(result.to_text())

    series = result.series
    for direction in ("tx", "rx"):
        model = series.column(f"{direction}_model_mbps")
        sim = series.column(f"{direction}_sim_mbps")
        # Monotone non-decreasing in clock.
        assert all(b >= a - 1e-6 for a, b in zip(model, model[1:]))
        # Simulation matches the DMA-aware model within 2%.
        for s, m in zip(sim, model):
            assert abs(s - m) / m < 0.02

    # Threshold clocks: the architecture's go/no-go numbers.
    assert result.metrics["rx_mhz_for_oc3"] <= 16
    assert result.metrics["tx_mhz_for_oc12"] == 25
    assert result.metrics["rx_mhz_for_oc12"] == 33

    # Crossover: at low clocks the engines bind and transmit (cheaper
    # per-cell budget) wins; at higher clocks the per-PDU overheads bind
    # and receive (whose completion DMA overlaps the engine) wins.
    tx = series.column("tx_model_mbps")
    rx = series.column("rx_model_mbps")
    assert tx[0] > rx[0]
    assert rx[-1] > tx[-1]
