"""T2: receive-path cycle budget table.

Claims reproduced: receive is the per-cell-expensive direction, the CAM
assist is what keeps classification cheap, and the middle-cell service
time sits between the STS-12c and STS-3c cell slots -- the margin whose
absence motivates per-cell hardware assists at 622 Mb/s.
"""

from repro.results.experiments import run_t1, run_t2


def test_t2_rx_budget(run_once):
    result = run_once(run_t2)
    print()
    print(result.to_text())

    t1 = run_t1()
    # RX per-cell exceeds TX per-cell (classification + context state).
    assert (
        result.metrics["cell_middle_cam_us"] > t1.metrics["cell_middle_us"]
    )
    # The CAM is load-bearing: software lookup at least doubles the cost.
    assert (
        result.metrics["cell_middle_sw_us"]
        > 2 * result.metrics["cell_middle_cam_us"]
    )
    # Clears the STS-3c slot, misses the STS-12c slot (0.708 us).
    assert result.metrics["cell_middle_cam_us"] < result.metrics["cell_slot_us"]
    assert result.metrics["cell_middle_cam_us"] > 424 / 599.04e6 * 1e6
