"""F5: receive-FIFO sizing under bursty overload.

Claims reproduced: with the engine slower than the STS-12c cell rate,
shallow FIFOs lose cells during bursts; loss falls monotonically (to
zero) as depth grows because inter-burst idle drains the backlog.
"""

from repro.results.experiments import run_f5

DEPTHS = (8, 16, 32, 64, 128)


def test_f5_fifo_sizing(run_once):
    result = run_once(run_f5, fifo_depths=DEPTHS, window=0.03)
    print()
    print(result.to_text())

    loss = result.series.column("loss_ratio")
    peaks = result.series.column("peak_occupancy")

    # Shallow FIFO loses, deep FIFO does not.
    assert loss[0] > 0.01
    assert loss[-1] == 0.0
    # Loss is (weakly) monotone decreasing in depth.
    assert all(a >= b - 1e-9 for a, b in zip(loss, loss[1:]))
    # Shallow FIFOs are driven to their limit.
    assert peaks[0] == DEPTHS[0]
