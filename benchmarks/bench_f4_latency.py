"""F4: end-to-end latency decomposition.

Claims reproduced: short-PDU latency is dominated by fixed per-PDU
software (OS paths, interrupt), not the wire; large-PDU latency at
STS-3c is serialization-dominated; the unloaded simulation matches the
stage model almost exactly.
"""

from repro.analysis import latency_model
from repro.nic import aurora_oc3
from repro.results.experiments import run_f4

SIZES = (64, 1024, 9180, 65535)


def test_f4_latency_decomposition(run_once):
    result = run_once(run_f4, sizes=SIZES)
    print()
    print(result.to_text())

    # Model vs simulation: the unloaded path is deterministic, so the
    # decomposition must match to sub-percent.
    for row in result.rows:
        model_total, simulated = row[-2], row[-1]
        assert abs(simulated - model_total) / model_total < 0.01

    # Short PDUs: software-dominated.
    assert result.metrics["small_pdu_dominant"] == 1.0
    small = latency_model(aurora_oc3(), 64)
    assert small.link_serialization / small.total < 0.25

    # Large PDUs at STS-3c: wire-dominated.
    large = latency_model(aurora_oc3(), 65535)
    assert large.dominant_stage() == "link_serialization"
