"""A4 (ablation): host-bus DMA burst length.

Claim reproduced: arbitration/setup cycles make short bursts waste the
bus; effective bandwidth (and with it the large-PDU transmit ceiling at
STS-12c) climbs steeply to 64-word bursts and flattens after -- the
sizing rationale for burst-mode DMA on the 100 MB/s-class bus.
"""

from repro.results.experiments import run_a4

BURSTS = (8, 32, 128)


def test_a4_bus_bursts(run_once):
    result = run_once(run_a4, burst_words=BURSTS)
    print()
    print(result.to_text())

    eff = result.series.column("effective_bus_mbps")
    tx = result.series.column("tx_model_mbps")
    # Strictly increasing effective bandwidth and TX ceiling.
    assert eff == sorted(eff)
    assert tx == sorted(tx)
    # Short bursts leave >1.5x on the table.
    assert result.metrics["burst_gain"] > 1.5
    # The TX ceiling moves by a meaningful margin (bus-bound regime).
    assert tx[-1] > tx[0] * 1.2
