"""F6: receive goodput vs number of interleaved VCs.

Claims reproduced: with the CAM the classification cost is flat in the
VC count, so goodput holds up across two orders of magnitude of VCs;
without the CAM the software probe's cost grows with the table and
erodes goodput substantially.
"""

from repro.results.experiments import run_f6

VC_COUNTS = (1, 4, 16, 64, 128)


def test_f6_multi_vc(run_once):
    result = run_once(run_f6, vc_counts=VC_COUNTS, window=0.02)
    print()
    print(result.to_text())

    cam = result.series.column("cam_mbps")
    software = result.series.column("software_mbps")

    # At few VCs the lookup cost difference is invisible (link-bound).
    assert abs(cam[0] - software[0]) / cam[0] < 0.05
    # At many VCs the software probe has eroded goodput well below CAM.
    assert software[-1] < 0.75 * cam[-1]
    # CAM goodput retains most of its capacity across the sweep.
    assert result.metrics["cam_retention"] > 0.75
    assert result.metrics["software_retention"] < result.metrics["cam_retention"]
