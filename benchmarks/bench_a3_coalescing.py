"""A3 (ablation): interrupt coalescing.

Claim reproduced: coalescing completion interrupts trades delivery
latency (roughly the window, end to end) for a modest host-cycle
saving -- modest precisely because the offloaded design already
interrupts per PDU, not per cell.
"""

from repro.results.experiments import run_a3

WINDOWS_US = (0, 200, 500)


def test_a3_interrupt_coalescing(run_once):
    result = run_once(run_a3, windows_us=WINDOWS_US, pdus=40)
    print()
    print(result.to_text())

    latencies = [row[3] for row in result.rows]
    cycles = [row[2] for row in result.rows]
    # Latency grows with the window...
    assert latencies[-1] > latencies[0] + 100
    # ...host cycles shrink (weakly -- light load merges few interrupts).
    assert cycles[-1] <= cycles[0]
    # The lever is small compared to the offload lever itself (T3: >10x).
    assert result.metrics["cycles_saved_ratio"] < 1.5
