"""T5: the four interface architectures under one workload.

Claims reproduced: the offloaded programmable interface beats host
software SAR by well over an order of magnitude in deliverable
throughput and in host cost; hardwired VLSI holds the ceiling; a single
shared engine pays measurably under full-duplex load -- the reason the
architecture uses one engine per direction.
"""

from repro.results.experiments import run_t5


def test_t5_architecture_comparison(run_once):
    result = run_once(run_t5, window=0.03)
    print()
    print(result.to_text())

    rows = {row[0]: row for row in result.rows}
    dual = rows["offloaded dual-engine"]
    shared = rows["offloaded shared-engine"]
    hardwired = rows["hardwired VLSI"]
    hostsar = rows["host-software SAR"]

    # Offload vs host software: > 10x in duplex throughput, > 10x in
    # host cycles per PDU.
    assert result.metrics["offloaded_vs_hostsar"] > 10
    assert hostsar[4] > 10 * dual[4]

    # Hardwired holds the ceiling but by less than 2x over programmable.
    assert 1.0 < result.metrics["hardwired_vs_offloaded"] < 2.0

    # One engine per direction: duplex aggregate suffers when shared.
    assert result.metrics["dual_vs_shared"] > 1.3
    # Single-direction capacities are identical dual vs shared.
    assert shared[1] == dual[1]
    assert shared[2] == dual[2]

    # Flexibility column: only hardwired gives it up.
    assert hardwired[5] == "no" and dual[5] == "yes"
