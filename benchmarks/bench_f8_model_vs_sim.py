"""F8: analytic model vs discrete-event simulation.

Claim reproduced: the paper's style of closed-form analysis is an
accurate predictor of the simulated interface -- throughput within a
few percent across the size range, unloaded latency essentially exact.
Where the two diverge, the residual is the queueing/pipelining detail
the closed forms deliberately ignore.
"""

from repro.results.experiments import run_f8

SIZES = (64, 1024, 9180, 32768)


def test_f8_model_vs_sim(run_once):
    result = run_once(run_f8, sizes=SIZES, window=0.02)
    print()
    print(result.to_text())

    assert result.metrics["worst_throughput_error_pct"] < 5.0
    assert result.metrics["worst_latency_error_pct"] < 1.0
