"""A1 (ablation): AAL5-class vs AAL3/4 data-path efficiency.

Claim reproduced: AAL3/4's 4-bytes-per-cell SAR fields cost ~44/48 of
the zero-overhead layer's goodput at saturation -- the arithmetic that
decided the adaptation-layer argument of the era.
"""

import pytest

from repro.results.experiments import run_a1

SIZES = (512, 9180)


def test_a1_aal_efficiency(run_once):
    result = run_once(run_a1, sizes=SIZES, window=0.02)
    print()
    print(result.to_text())

    aal5 = result.series.column("aal5_mbps")
    aal34 = result.series.column("aal34_mbps")
    # AAL3/4 always below AAL5; ratio at saturation ~= 44/48.
    assert all(b < a for a, b in zip(aal5, aal34))
    assert result.metrics["efficiency_ratio_at_mtu"] == pytest.approx(
        44 / 48, rel=0.03
    )
