"""R1: goodput vs cell-loss rate, frame discard (EPD/PPD) on vs off.

Claims reproduced: with the receive engine overloaded (default 25 MHz
engine at OC-12c), undirected cell drops hole nearly every frame, so
goodput without frame discard collapses; EPD/PPD spends the same engine
budget on whole frames and holds substantially higher goodput at every
loss rate up to the point where loss alone kills all large frames.
"""

from repro.results.experiments import run_r1

LOSS_RATES = (0.0, 0.005, 0.01, 0.02)


def test_r1_goodput_under_loss(run_once):
    result = run_once(run_r1, loss_rates=LOSS_RATES, window=0.01)
    print()
    print(result.to_text())

    off = result.series.column("discard_off_mbps")
    on = result.series.column("epd_ppd_mbps")

    # EPD/PPD never makes things worse.
    assert all(a >= b - 1e-9 for a, b in zip(on, off))
    # At >= 1% cell loss the gain is decisive, not marginal.
    at_1pct = LOSS_RATES.index(0.01)
    assert on[at_1pct] > off[at_1pct] + 10.0  # Mb/s
    # Under pure overload (no link loss) frame discard rescues the
    # receive path from total collapse.
    assert on[0] > 100.0
    # Loss can only reduce the deliverable goodput.
    assert all(a >= b - 1e-9 for a, b in zip(on, on[1:]))
