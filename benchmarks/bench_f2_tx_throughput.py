"""F2: transmit throughput vs PDU size.

Claims reproduced: throughput rises with PDU size (per-PDU overhead
amortises), the interface saturates the link above the knee, the
simulation tracks the closed-form model, and the end-to-end curve sits
below the interface curve for small PDUs (host software floor).
"""

from repro.results.experiments import run_f2

SIZES = (40, 128, 512, 2048, 9180, 32768)


def test_f2_tx_throughput(run_once):
    result = run_once(run_f2, sizes=SIZES, window=0.02)
    print()
    print(result.to_text())

    series = result.series
    interface = series.column("interface_sim_mbps")
    model = series.column("interface_model_mbps")
    e2e = series.column("end_to_end_sim_mbps")

    # Monotone rise to saturation.
    assert interface[0] < interface[-1]
    # Large PDUs reach within 10% of the link's user rate ceiling... or
    # the DMA-corrected model, whichever binds.
    assert interface[-2] > 0.9 * min(
        result.metrics["link_user_mbps"], model[-2]
    )
    # Simulation tracks the model within 15% everywhere.
    for sim_v, model_v in zip(interface, model):
        assert abs(sim_v - model_v) / model_v < 0.15
    # Host software caps small-PDU goodput well below interface capability.
    assert e2e[0] < 0.5 * interface[0]
    # The knee exists and is small (tens of bytes to ~1 KB at STS-3c).
    assert 0 < result.metrics["tx_knee_bytes"] < 1024
