"""A2 (ablation): CRC in hardware vs in engine software.

Claim reproduced: moving the CRC onto the protocol engine multiplies
the per-cell budget roughly ninefold and at least halves achievable
throughput even at STS-3c -- per-byte work belongs in hardware.
"""

from repro.results.experiments import run_a2


def test_a2_software_crc(run_once):
    result = run_once(run_a2)
    print()
    print(result.to_text())

    for row in result.rows:
        _size, hw_tx, sw_tx, hw_rx, sw_rx = row
        assert sw_tx < hw_tx / 2
        assert sw_rx < hw_rx / 2
    assert result.metrics["tx_slowdown"] > 2.0
    assert result.metrics["rx_slowdown"] > 2.0
