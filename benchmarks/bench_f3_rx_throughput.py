"""F3: receive throughput vs PDU size.

Claims reproduced: the receive path saturates the STS-3c link above a
small knee, the simulation tracks the model, and the RX knee sits left
of the TX knee (transmit pays the serial staging DMA per PDU; receive
overlaps its completion DMA).
"""

from repro.results.experiments import run_f3

SIZES = (40, 128, 512, 2048, 9180, 32768)


def test_f3_rx_throughput(run_once):
    result = run_once(run_f3, sizes=SIZES, window=0.02)
    print()
    print(result.to_text())

    series = result.series
    simulated = series.column("simulated_mbps")
    model = series.column("model_mbps")

    assert simulated[0] < simulated[-1]
    for sim_v, model_v in zip(simulated, model):
        assert abs(sim_v - model_v) / model_v < 0.15
    # Knee exists at STS-3c and is left of the transmit knee.
    from repro.analysis import saturating_pdu_size
    from repro.nic import aurora_oc3

    rx_knee = result.metrics["rx_knee_bytes"]
    assert 0 < rx_knee < saturating_pdu_size(aurora_oc3(), "tx")
    # At saturation the receive path runs the link.
    assert simulated[-2] > 130.0
