"""T3: host CPU cycles per received PDU -- the offload dividend.

Claims reproduced: the offloaded interface's host cost is per-PDU while
the software-SAR baseline's grows with the PDU's cell count, giving an
order-of-magnitude (and growing) advantage at MTU-class sizes; the
cycle simulations agree with the closed forms.
"""

from repro.results.experiments import run_t3

SIZES = (64, 1500, 9180)


def test_t3_host_cycles(run_once):
    result = run_once(run_t3, sizes=SIZES, pdus=20)
    print()
    print(result.to_text())

    # Simulated cycle counts corroborate the models (within 10%).
    for row in result.rows:
        _size, offl_model, offl_sim, sar_model, sar_sim, _adv = row
        assert abs(offl_sim - offl_model) / offl_model < 0.10
        assert abs(sar_sim - sar_model) / sar_model < 0.10

    # Advantage exceeds 10x at the IP-over-ATM MTU and grows with size.
    advantages = [row[-1] for row in result.rows]
    assert advantages == sorted(advantages)
    assert result.metrics["max_advantage"] > 10
