"""T1: transmit-path cycle budget table.

Claim reproduced: every per-cell transmit operation fits comfortably
inside the link cell slot on the default engine; per-PDU overhead is a
handful of microseconds, so it dominates only small PDUs.
"""

from repro.results.experiments import run_t1


def test_t1_tx_budget(run_once):
    result = run_once(run_t1)
    print()
    print(result.to_text())

    # Middle-cell service time clears the STS-3c slot with margin.
    assert result.metrics["cell_middle_us"] < result.metrics["cell_slot_us"] / 2
    # The last cell pays the trailer; it is strictly costlier.
    assert result.metrics["cell_last_us"] > result.metrics["cell_middle_us"]
    # Per-PDU overhead is microseconds, not tens of microseconds.
    assert 1.0 < result.metrics["pdu_overhead_us"] < 10.0
