"""T4: adaptor buffer-memory bandwidth budget.

Claims reproduced: every user byte is written once and read once, so
memory traffic is ~2x goodput, and the dual-ported memory keeps a
headroom factor above 1 at both link rates -- the design is buildable.
"""

import pytest

from repro.results.experiments import run_t4


def test_t4_memory_bandwidth(run_once):
    result = run_once(run_t4, window=0.02)
    print()
    print(result.to_text())

    for row in result.rows:
        _link, offered, traffic, available, headroom = row
        # Write-once read-once: traffic close to 2x goodput.
        assert traffic == pytest.approx(2 * offered, rel=0.15)
        assert headroom > 1.0
        assert available > traffic

    assert result.metrics["headroom_STS-3c"] > 1.0
    assert result.metrics["headroom_STS-12c"] > 1.0
