"""Benchmark harness conventions.

Each benchmark regenerates one table/figure of the evaluation (see
DESIGN.md §3) with reduced-but-representative parameters, asserts the
qualitative claim it exists to reproduce, and prints the regenerated
table so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction report.  ``pedantic(rounds=1)`` is used throughout: each
experiment is a deterministic simulation, so repeated timing rounds
would only re-run identical work.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run *fn* exactly once under the benchmark clock; return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
