"""Setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` (and plain ``pip install -e .`` via
pip's automatic legacy fallback) work offline.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
