"""SL3 -- trace-taxonomy conformance: every event and drop has a name.

The observability layer's contract is that every lifecycle event a
component can emit is declared in
:data:`repro.obs.trace.EVENT_TAXONOMY` and every cell/PDU death
carries a ``reason`` from :data:`repro.obs.trace.DROP_REASONS` -- and,
further, that every drop reason lands in a named bucket of the
cell-conservation ledger (:mod:`repro.faults.audit`) or the
reassembly-failure taxonomy, so "offered == delivered + accounted
drops" stays itemisable.  The recorder enforces the first half at run
time, but only on paths a test happens to execute; these rules enforce
all of it at lint time, on every emission site.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.rules import (
    ModuleContext,
    register_rule,
    string_arg,
    terminal_attribute,
)

#: Receiver names that carry a TraceRecorder at emission sites.
TRACE_RECEIVERS = {"trace", "recorder"}

DROP_EVENTS = {"cell.drop", "pdu.drop"}


def _emit_call(node: ast.AST) -> Optional[ast.Call]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "emit"
        and terminal_attribute(node.func.value) in TRACE_RECEIVERS
    ):
        return node
    return None


def _reason_keyword(call: ast.Call) -> Optional[ast.keyword]:
    for keyword in call.keywords:
        if keyword.arg == "reason":
            return keyword
    return None


@register_rule(
    "SL301",
    "SL3 trace-taxonomy",
    "trace event name missing from EVENT_TAXONOMY",
    hint=(
        "declare the event (and its meaning) in "
        "repro.obs.trace.EVENT_TAXONOMY and docs/OBSERVABILITY.md first"
    ),
)
def check_event_names(ctx: ModuleContext) -> None:
    taxonomy = ctx.model.event_names
    if not taxonomy:
        return
    for node in ast.walk(ctx.tree):
        call = _emit_call(node)
        if call is None:
            continue
        name = string_arg(call, 0, "name")
        if name is not None and name not in taxonomy:
            ctx.report(
                "SL301",
                call,
                f"event {name!r} is not in EVENT_TAXONOMY",
            )


@register_rule(
    "SL302",
    "SL3 trace-taxonomy",
    "drop event with a missing or undeclared reason",
    hint=(
        "every cell/PDU death needs reason=<key of DROP_REASONS>; "
        "declare new causes there first"
    ),
)
def check_drop_reasons(ctx: ModuleContext) -> None:
    reasons = ctx.model.drop_reasons
    for node in ast.walk(ctx.tree):
        call = _emit_call(node)
        if call is None:
            continue
        name = string_arg(call, 0, "name")
        if name not in DROP_EVENTS:
            continue
        keyword = _reason_keyword(call)
        if keyword is None:
            ctx.report(
                "SL302",
                call,
                f"{name} emitted without a reason= argument",
            )
            continue
        if (
            reasons
            and isinstance(keyword.value, ast.Constant)
            and isinstance(keyword.value.value, str)
            and keyword.value.value not in reasons
        ):
            ctx.report(
                "SL302",
                call,
                f"drop reason {keyword.value.value!r} is not in DROP_REASONS",
            )


@register_rule(
    "SL303",
    "SL3 trace-taxonomy",
    "drop reason with no conservation-ledger bucket",
    hint=(
        "pair the drop with an auditor bucket: add a ConservationLedger "
        "field (faults/audit.py) or use a reassembly-failure verdict, so "
        "offered == delivered + accounted drops stays itemisable"
    ),
)
def check_reason_has_bucket(ctx: ModuleContext) -> None:
    if not ctx.model.ledger_buckets:
        return
    for node in ast.walk(ctx.tree):
        call = _emit_call(node)
        if call is None:
            continue
        name = string_arg(call, 0, "name")
        if name not in DROP_EVENTS:
            continue
        keyword = _reason_keyword(call)
        if keyword is None or not isinstance(keyword.value, ast.Constant):
            continue
        reason = keyword.value.value
        if not isinstance(reason, str):
            continue
        if not ctx.model.reason_has_ledger_bucket(reason):
            ctx.report(
                "SL303",
                call,
                f"drop reason {reason!r} has no cell-conservation ledger "
                "bucket",
            )
