"""Extract the repo's conformance tables for the rules to check against.

The linter needs four pieces of ground truth:

- the trace-event taxonomy and drop-reason table
  (:data:`repro.obs.trace.EVENT_TAXONOMY` / ``DROP_REASONS``);
- the cell-conservation ledger buckets
  (:class:`repro.faults.audit.ConservationLedger` field names);
- the reassembly-failure taxonomy
  (:class:`repro.aal.interface.ReassemblyFailure` values);
- the canonical observability hook signatures
  (:class:`repro.obs.trace.TraceRecorder`,
  :class:`repro.obs.profiler.CycleProfiler`).

Each is extracted *statically* from the tree being linted when the
defining module is inside it, so the linter checks the same revision
it is scanning; when a table's module is not under the lint root (for
example when linting the fixture corpus) the shipped
:mod:`repro` package provides the fallback.  Extraction is pure AST
walking -- the linter never executes the code under analysis.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class HookSignature:
    """Shape of one canonical hook method (``self`` excluded)."""

    name: str
    params: List[str]  #: positional-or-keyword parameter names, in order
    required: List[str]  #: the subset without defaults
    has_var_keyword: bool  #: accepts ``**kwargs``
    has_var_positional: bool  #: accepts ``*args``

    def max_positional(self) -> int:
        return len(self.params)


@dataclass
class RepoModel:
    """Every conformance table the rule families consult."""

    event_names: Set[str] = field(default_factory=set)
    drop_reasons: Set[str] = field(default_factory=set)
    ledger_buckets: Set[str] = field(default_factory=set)
    reassembly_failures: Set[str] = field(default_factory=set)
    cost_fields: Set[str] = field(default_factory=set)
    #: receiver attribute name (``trace``/``profiler``...) ->
    #: {method name -> signature}
    hooks: Dict[str, Dict[str, HookSignature]] = field(default_factory=dict)
    #: receiver attribute name -> every method the canonical hook class
    #: defines (so "unknown method" means unknown, not merely unchecked)
    hook_methods: Dict[str, Set[str]] = field(default_factory=dict)

    def reason_has_ledger_bucket(self, reason: str) -> bool:
        """Does a drop *reason* land in a conservation-ledger bucket?

        A reason maps to the auditor's books if it names a ledger field
        directly (``link_lost``), names one modulo the ``_discarded``
        suffix convention (``hec`` -> ``hec_discarded``), or is one of
        the reassembly verdicts the ledger itemises under
        ``discarded_by``.
        """
        return (
            reason in self.ledger_buckets
            or f"{reason}_discarded" in self.ledger_buckets
            or reason in self.reassembly_failures
        )


# ---------------------------------------------------------------------------
# static extraction helpers
# ---------------------------------------------------------------------------


def _parse(path: Path) -> Optional[ast.Module]:
    try:
        return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except (OSError, SyntaxError):
        return None


def _dict_literal_keys(tree: ast.Module, name: str) -> Optional[Set[str]]:
    """String keys of the module-level ``name = {...}`` assignment."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        if isinstance(value, ast.Dict):
            keys = set()
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.add(key.value)
            return keys
    return None


def _class_node(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(tree: ast.Module, class_name: str) -> Optional[Set[str]]:
    """Annotated field names of a (data)class body."""
    node = _class_node(tree, class_name)
    if node is None:
        return None
    fields = set()
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            fields.add(statement.target.id)
    return fields or None


def _enum_values(tree: ast.Module, class_name: str) -> Optional[Set[str]]:
    """String values of an enum class's members."""
    node = _class_node(tree, class_name)
    if node is None:
        return None
    values = set()
    for statement in node.body:
        if isinstance(statement, ast.Assign) and isinstance(
            statement.value, ast.Constant
        ):
            if isinstance(statement.value.value, str):
                values.add(statement.value.value)
    return values or None


def _method_names(tree: ast.Module, class_name: str) -> Optional[Set[str]]:
    """Every method (and property) name a class body defines."""
    node = _class_node(tree, class_name)
    if node is None:
        return None
    names = {
        statement.name
        for statement in node.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return names or None


def _method_names_from_object(obj: type) -> Set[str]:
    return {
        name
        for name, value in vars(obj).items()
        if callable(value) or isinstance(value, property)
    }


def _method_signatures(
    tree: ast.Module, class_name: str, methods: Set[str]
) -> Optional[Dict[str, HookSignature]]:
    node = _class_node(tree, class_name)
    if node is None:
        return None
    signatures: Dict[str, HookSignature] = {}
    for statement in node.body:
        if not isinstance(statement, ast.FunctionDef):
            continue
        if statement.name not in methods:
            continue
        arguments = statement.args
        params = [a.arg for a in arguments.args[1:]]  # drop self
        n_defaults = len(arguments.defaults)
        required = params[: len(params) - n_defaults] if params else []
        signatures[statement.name] = HookSignature(
            name=statement.name,
            params=params,
            required=required,
            has_var_keyword=arguments.kwarg is not None,
            has_var_positional=arguments.vararg is not None,
        )
    return signatures or None


def _signatures_from_object(obj: type, methods: Set[str]) -> Dict[str, HookSignature]:
    signatures: Dict[str, HookSignature] = {}
    for name in methods:
        method = getattr(obj, name, None)
        if method is None:
            continue
        parameters = list(inspect.signature(method).parameters.values())[1:]
        params = [
            p.name
            for p in parameters
            if p.kind
            in (p.POSITIONAL_OR_KEYWORD, p.POSITIONAL_ONLY)
        ]
        required = [
            p.name
            for p in parameters
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.POSITIONAL_ONLY)
            and p.default is p.empty
        ]
        signatures[name] = HookSignature(
            name=name,
            params=params,
            required=required,
            has_var_keyword=any(p.kind == p.VAR_KEYWORD for p in parameters),
            has_var_positional=any(
                p.kind == p.VAR_POSITIONAL for p in parameters
            ),
        )
    return signatures


#: Hook receivers the pipeline threads through (attribute/variable
#: names at call sites) and the methods each exposes.
TRACE_METHODS = {"emit", "tag_cell"}
PROFILER_METHODS = {"record_cell", "record_pdu", "record_oam", "record_ops"}


def build_model(root: Path) -> RepoModel:
    """Extract every table, preferring files under *root*."""
    model = RepoModel()

    def find(relative: str) -> Optional[ast.Module]:
        for candidate in (root / relative, root / "repro" / relative):
            if candidate.is_file():
                return _parse(candidate)
        matches = sorted(root.rglob(relative))
        return _parse(matches[0]) if matches else None

    trace_tree = find("obs/trace.py")
    if trace_tree is not None:
        model.event_names = _dict_literal_keys(trace_tree, "EVENT_TAXONOMY") or set()
        model.drop_reasons = _dict_literal_keys(trace_tree, "DROP_REASONS") or set()
        model.hooks["trace"] = (
            _method_signatures(trace_tree, "TraceRecorder", TRACE_METHODS) or {}
        )
        model.hook_methods["trace"] = (
            _method_names(trace_tree, "TraceRecorder") or set()
        )
    audit_tree = find("faults/audit.py")
    if audit_tree is not None:
        model.ledger_buckets = (
            _dataclass_fields(audit_tree, "ConservationLedger") or set()
        )
    interface_tree = find("aal/interface.py")
    if interface_tree is not None:
        model.reassembly_failures = (
            _enum_values(interface_tree, "ReassemblyFailure") or set()
        )
    costs_tree = find("nic/costs.py")
    if costs_tree is not None:
        fields = set()
        for class_name in ("TxCostModel", "RxCostModel"):
            fields |= _dataclass_fields(costs_tree, class_name) or set()
        model.cost_fields = fields
    profiler_tree = find("obs/profiler.py")
    if profiler_tree is not None:
        model.hooks["profiler"] = (
            _method_signatures(profiler_tree, "CycleProfiler", PROFILER_METHODS)
            or {}
        )
        model.hook_methods["profiler"] = (
            _method_names(profiler_tree, "CycleProfiler") or set()
        )

    _fill_fallbacks(model)
    model.hooks.setdefault("recorder", model.hooks.get("trace", {}))
    model.hook_methods.setdefault("recorder", model.hook_methods.get("trace", set()))
    return model


def _fill_fallbacks(model: RepoModel) -> None:
    """Backfill any table the lint root did not provide from repro."""
    if not model.event_names or not model.drop_reasons or not model.hooks.get(
        "trace"
    ):
        try:
            from repro.obs import trace as trace_module
        except ImportError:  # pragma: no cover - repro is always importable
            trace_module = None
        if trace_module is not None:
            if not model.event_names:
                model.event_names = set(trace_module.EVENT_TAXONOMY)
            if not model.drop_reasons:
                model.drop_reasons = set(trace_module.DROP_REASONS)
            if not model.hooks.get("trace"):
                model.hooks["trace"] = _signatures_from_object(
                    trace_module.TraceRecorder, TRACE_METHODS
                )
            if not model.hook_methods.get("trace"):
                model.hook_methods["trace"] = _method_names_from_object(
                    trace_module.TraceRecorder
                )
    if not model.ledger_buckets:
        try:
            from repro.faults.audit import ConservationLedger
        except ImportError:  # pragma: no cover
            pass
        else:
            model.ledger_buckets = set(
                ConservationLedger.__dataclass_fields__
            )
    if not model.reassembly_failures:
        try:
            from repro.aal.interface import ReassemblyFailure
        except ImportError:  # pragma: no cover
            pass
        else:
            model.reassembly_failures = {
                member.value for member in ReassemblyFailure
            }
    if not model.cost_fields:
        try:
            from repro.nic.costs import RxCostModel, TxCostModel
        except ImportError:  # pragma: no cover
            pass
        else:
            model.cost_fields = set(
                TxCostModel.__dataclass_fields__
            ) | set(RxCostModel.__dataclass_fields__)
    if not model.hooks.get("profiler"):
        try:
            from repro.obs.profiler import CycleProfiler
        except ImportError:  # pragma: no cover
            pass
        else:
            model.hooks["profiler"] = _signatures_from_object(
                CycleProfiler, PROFILER_METHODS
            )
            if not model.hook_methods.get("profiler"):
                model.hook_methods["profiler"] = _method_names_from_object(
                    CycleProfiler
                )
