"""SL5 -- hook-shape conformance: call sites match the installed hooks.

The observability hooks are duck-typed on purpose: ``repro.nic`` never
imports ``repro.obs``; each component just guards ``if self.trace is
not None`` and calls the recorder the runner installed.  Duck typing
means a drifted call site -- a misspelled method, a dropped required
argument, a keyword the recorder does not take -- fails only when a
traced run happens to execute that line.  These rules pin every
``trace``/``recorder``/``profiler`` call site to the exact signatures
:mod:`repro.obs` ships, so the contract breaks at lint time instead.
"""

from __future__ import annotations

import ast

from repro.devtools.model import HookSignature
from repro.devtools.rules import ModuleContext, register_rule, terminal_attribute


def _hook_call(ctx: ModuleContext, node: ast.AST):
    """(receiver kind, method, call) for hook call sites, else None."""
    if not isinstance(node, ast.Call) or not isinstance(
        node.func, ast.Attribute
    ):
        return None
    receiver = terminal_attribute(node.func.value)
    if receiver not in ctx.model.hooks:
        return None
    return receiver, node.func.attr, node


@register_rule(
    "SL501",
    "SL5 hook-shape",
    "call to a method the canonical hook class does not define",
    hint=(
        "the hook is duck-typed; only methods of "
        "repro.obs.trace.TraceRecorder / repro.obs.profiler.CycleProfiler "
        "exist at run time"
    ),
)
def check_hook_method_exists(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        found = _hook_call(ctx, node)
        if found is None:
            continue
        receiver, method, call = found
        known = ctx.model.hook_methods.get(receiver)
        if known and method not in known:
            ctx.report(
                "SL501",
                call,
                f".{receiver} hook has no method {method!r}",
            )


def _check_signature(
    ctx: ModuleContext, call: ast.Call, receiver: str, signature: HookSignature
) -> None:
    n_positional = len(call.args)
    has_star = any(isinstance(a, ast.Starred) for a in call.args)
    if (
        not has_star
        and not signature.has_var_positional
        and n_positional > signature.max_positional()
    ):
        ctx.report(
            "SL502",
            call,
            f".{receiver}.{signature.name}() takes at most "
            f"{signature.max_positional()} positional argument(s), "
            f"{n_positional} given",
        )
        return
    keywords = {kw.arg for kw in call.keywords if kw.arg is not None}
    has_double_star = any(kw.arg is None for kw in call.keywords)
    if not signature.has_var_keyword:
        unknown = keywords - set(signature.params)
        if unknown:
            ctx.report(
                "SL502",
                call,
                f".{receiver}.{signature.name}() got unexpected keyword(s) "
                f"{', '.join(sorted(unknown))}",
            )
            return
    if has_star or has_double_star:
        return
    covered = set(signature.params[:n_positional]) | keywords
    missing = [p for p in signature.required if p not in covered]
    if missing:
        ctx.report(
            "SL502",
            call,
            f".{receiver}.{signature.name}() missing required "
            f"argument(s) {', '.join(missing)}",
        )


@register_rule(
    "SL502",
    "SL5 hook-shape",
    "hook call incompatible with the installed signature",
    hint=(
        "match the exact signature obs/runner.py installs (see "
        "repro.obs.trace / repro.obs.profiler)"
    ),
)
def check_hook_call_shapes(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        found = _hook_call(ctx, node)
        if found is None:
            continue
        receiver, method, call = found
        signature = ctx.model.hooks[receiver].get(method)
        if signature is not None:
            _check_signature(ctx, call, receiver, signature)


def _dispatch_table_values(tree: ast.Module) -> "set[str] | None":
    """Names referenced as values of a top-level INSTRUMENT_DISPATCH dict.

    Returns None when the module defines no such table.
    """
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "INSTRUMENT_DISPATCH"
            for t in targets
        ):
            continue
        if isinstance(value, ast.Dict):
            return {
                v.id for v in value.values if isinstance(v, ast.Name)
            }
        return set()
    return None


@register_rule(
    "SL503",
    "SL5 hook-shape",
    "instrumenter unreachable from the instrument() dispatch table",
    hint=(
        "every top-level _instrument_* in a module with a typed "
        "instrument() front door must be a value of INSTRUMENT_DISPATCH; "
        "an unlisted one is dead dispatch -- wire it in or delete it"
    ),
)
def check_instrumenters_dispatched(ctx: ModuleContext) -> None:
    """A ``_instrument_*`` the dispatch table misses is silent drift.

    ``instrument(registry, obj)`` is the single front door: it resolves
    the instrumenter by the object's class through INSTRUMENT_DISPATCH.
    An instrumenter defined but not listed can never be reached through
    the front door, so objects of its type raise TypeError at run time
    while the code reads as covered.
    """
    dispatched = _dispatch_table_values(ctx.tree)
    if dispatched is None:
        return
    has_front_door = any(
        isinstance(node, ast.FunctionDef) and node.name == "instrument"
        for node in ctx.tree.body
    )
    if not has_front_door:
        return
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.FunctionDef)
            and node.name.startswith("_instrument_")
            and node.name not in dispatched
        ):
            ctx.report(
                "SL503",
                node,
                f"{node.name} is not a value of INSTRUMENT_DISPATCH",
            )
