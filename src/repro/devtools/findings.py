"""Structured lint findings and their text/JSON renderings.

A :class:`Finding` is one rule violation pinned to a file and line;
the reporters keep a stable, machine-consumable shape so CI can diff
reports across runs and upload them as artifacts.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


class Severity(enum.Enum):
    """How bad a finding is; orders error > warning > info."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: stable rule id, e.g. ``SL101``
    severity: Severity
    path: str  #: path relative to the lint root
    line: int  #: 1-based line of the offending node
    message: str  #: what is wrong, in one sentence
    hint: str = ""  #: how to fix it (or how to suppress, with a reason)
    data: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.hint:
            record["hint"] = self.hint
        if self.data:
            record["data"] = self.data
        return record

    def format(self) -> str:
        text = (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity.value}] {self.message}"
        )
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def render_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one block per finding, sorted by location."""
    ordered = sorted(findings, key=Finding.sort_key)
    if not ordered:
        return "simlint: clean"
    lines = [finding.format() for finding in ordered]
    by_rule: Dict[str, int] = {}
    for finding in ordered:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    tally = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
    lines.append(f"\nsimlint: {len(ordered)} finding(s) ({tally})")
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding], root: str = "", extra: Dict[str, Any] | None = None
) -> str:
    """Machine-readable report (the CI artifact format)."""
    ordered = sorted(findings, key=Finding.sort_key)
    by_rule: Dict[str, int] = {}
    for finding in ordered:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    document: Dict[str, Any] = {
        "tool": "simlint",
        "version": 1,
        "root": root,
        "findings": [finding.to_dict() for finding in ordered],
        "summary": {"total": len(ordered), "by_rule": by_rule},
    }
    if extra:
        document.update(extra)
    return json.dumps(document, indent=2, sort_keys=True)


#: SARIF 2.1.0 result levels for each finding severity.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_sarif(
    findings: Iterable[Finding],
    root: str = "",
    path_prefix: str = "",
    rule_titles: Dict[str, str] | None = None,
) -> str:
    """SARIF 2.1.0 report, the GitHub code-scanning upload format.

    *path_prefix* (e.g. ``src/repro``) is prepended to every finding
    path so locations are repository-relative, which is what the
    code-scanning annotator expects; *rule_titles* supplies the
    ``shortDescription`` per rule id (the CLI passes the registry).
    *root* is unused by consumers but recorded as a run property so a
    report can be traced back to the tree it linted.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    titles = rule_titles or {}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": titles.get(rule_id, rule_id)},
        }
        for rule_id in sorted({finding.rule for finding in ordered})
    ]
    results = []
    for finding in ordered:
        uri = (
            f"{path_prefix.rstrip('/')}/{finding.path}"
            if path_prefix
            else finding.path
        )
        text = finding.message
        if finding.hint:
            text += f" (hint: {finding.hint})"
        results.append(
            {
                "ruleId": finding.rule,
                "level": _SARIF_LEVELS[finding.severity.value],
                "message": {"text": text},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": uri},
                            "region": {"startLine": finding.line},
                        }
                    }
                ],
            }
        )
    document: Dict[str, Any] = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "version": "1",
                        "rules": rules,
                    }
                },
                "properties": {"root": root},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def worst_severity(findings: Iterable[Finding]) -> Severity | None:
    """The most severe level present, or None for an empty report."""
    worst: Severity | None = None
    for finding in findings:
        if worst is None or finding.severity.rank < worst.rank:
            worst = finding.severity
    return worst


#: Type alias for the list the linter accumulates into.
FindingList = List[Finding]
