"""SL4 -- sim-time hygiene: no float equality, no wall-clock waits.

Simulation timestamps are floats produced by accumulating event
durations; two logically simultaneous events can differ by an ULP, so
``==``/``!=`` on timestamps encodes a latent heisenbug -- compare with
an ordering (``<=``) or an explicit tolerance.  And nothing inside the
simulated machine may block the real clock: a ``time.sleep`` in
``sim/``/``nic/``/``atm/`` freezes the process, not the model.
"""

from __future__ import annotations

import ast

from repro.devtools.rules import ModuleContext, register_rule

#: Attribute / variable names that denote a simulation timestamp.
_TIMESTAMP_ATTRS = {"now", "ts", "sim_time"}
_TIMESTAMP_NAMES = {"now", "ts", "sim_time", "timestamp"}

#: Tree prefixes where a wall-clock sleep is always a modelling bug.
MODEL_PATHS = ("sim/", "nic/", "atm/", "host/", "aal/")


def _is_timestamp(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Attribute):
        return expr.attr in _TIMESTAMP_ATTRS
    if isinstance(expr, ast.Name):
        return expr.id in _TIMESTAMP_NAMES
    return False


@register_rule(
    "SL401",
    "SL4 sim-time",
    "float equality on simulation timestamps",
    hint=(
        "timestamps accumulate float durations; use an ordering test or "
        "an explicit tolerance (abs(a - b) < eps)"
    ),
)
def check_timestamp_equality(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for operator, left, right in zip(
            node.ops, operands[:-1], operands[1:]
        ):
            if not isinstance(operator, (ast.Eq, ast.NotEq)):
                continue
            # `x == None`-style comparisons are not timestamp math.
            if any(
                isinstance(side, ast.Constant) and side.value is None
                for side in (left, right)
            ):
                continue
            if _is_timestamp(left) or _is_timestamp(right):
                ctx.report(
                    "SL401",
                    node,
                    "equality comparison on a simulation timestamp",
                )
                break


@register_rule(
    "SL402",
    "SL4 sim-time",
    "wall-clock sleep inside the simulated machine",
    hint=(
        "block on simulated time instead: yield sim.timeout(duration)"
    ),
)
def check_wall_clock_sleep(ctx: ModuleContext) -> None:
    if not ctx.in_paths(*MODEL_PATHS):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if ctx.resolve_call(node.func) == "time.sleep":
            ctx.report(
                "SL402",
                node,
                "time.sleep() blocks the real clock, not the model",
            )
