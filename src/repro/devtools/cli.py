"""Argument parsing for ``python -m repro lint`` / ``tools/simlint.py``.

Exit status: 0 when clean, 1 when any finding survives suppression,
2 on usage errors -- so CI can gate on the process status alone while
also uploading the ``--out`` JSON report as an artifact.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence, Set

from repro.devtools.docs import check_docs, default_repo_root
from repro.devtools.findings import render_json, render_sarif, render_text
from repro.devtools.linter import lint_paths
from repro.devtools.rules import RULE_REGISTRY


def default_lint_root() -> Path:
    """The shipped source tree: the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-atm lint",
        description=(
            "simlint: enforce the simulator's determinism, cost-model, "
            "trace-taxonomy, sim-time, hook-shape, and dual-path "
            "invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="also write the JSON report here (the CI artifact)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids or family prefixes (e.g. SL1,SL302)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help=(
            "report findings only for files modified per "
            "'git diff --name-only HEAD' (the whole tree is still "
            "analysed so interprocedural rules see the full call "
            "graph); outside a git checkout, lints the full tree"
        ),
    )
    parser.add_argument(
        "--docs",
        action="store_true",
        help="also run the documentation hygiene checks (DOC101-DOC103)",
    )
    parser.add_argument(
        "--repo-root",
        metavar="DIR",
        help="repository root for --docs (default: auto-detected)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in RULE_REGISTRY.values():
        print(f"{rule.id}  [{rule.severity.value:7s}] {rule.family}: {rule.title}")
    print("DOC101 [error  ] docs: missing module docstring (--docs)")
    print("DOC102 [error  ] docs: broken relative Markdown link (--docs)")
    print("DOC103 [error  ] docs: documented repro CLI does not parse (--docs)")
    return 0


def _changed_files(anchor: Path) -> Optional[Set[Path]]:
    """Absolute paths ``git diff --name-only HEAD`` reports, or ``None``.

    ``None`` means "not a usable git checkout" and the caller falls
    back to full-tree reporting.
    """
    probe = anchor if anchor.is_dir() else anchor.parent
    try:
        toplevel = subprocess.run(
            ["git", "-C", str(probe), "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        names = subprocess.run(
            ["git", "-C", toplevel, "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        (Path(toplevel) / name).resolve()
        for name in names.splitlines()
        if name.strip()
    }


def _sarif_path_prefix(lint_root: str) -> str:
    """The lint root relative to the repo root, for SARIF locations."""
    try:
        return (
            Path(lint_root).resolve().relative_to(default_repo_root().resolve())
        ).as_posix()
    except ValueError:
        return ""


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()

    paths = args.paths or [str(default_lint_root())]
    rules = args.rules.split(",") if args.rules else None
    restrict_to: Optional[Set[Path]] = None
    if args.changed:
        restrict_to = _changed_files(Path(paths[0]))
        if restrict_to is None:
            print(
                "simlint: --changed outside a git checkout; "
                "linting the full tree",
                file=sys.stderr,
            )
    result = lint_paths(paths, rules=rules, restrict_to=restrict_to)

    findings = list(result.findings)
    if args.docs:
        repo = Path(args.repo_root) if args.repo_root else default_repo_root()
        findings.extend(check_docs(repo))

    extra = {"files_scanned": result.files_scanned}
    if args.out:
        Path(args.out).write_text(
            render_json(findings, root=result.root, extra=extra) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json(findings, root=result.root, extra=extra))
    elif args.format == "sarif":
        print(
            render_sarif(
                findings,
                root=result.root,
                path_prefix=_sarif_path_prefix(result.root),
                rule_titles={
                    rule.id: rule.title for rule in RULE_REGISTRY.values()
                },
            )
        )
    else:
        print(render_text(findings))
        if not findings:
            print(
                f"  scanned {result.files_scanned} file(s) under {result.root}"
                + (" (+docs)" if args.docs else "")
            )
    return 0 if not findings else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
