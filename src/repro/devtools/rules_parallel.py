"""SL6 -- parallel determinism: worker identity never seeds anything.

The sweep runner's guarantee (see :mod:`repro.runner.executor`) is
that ``--workers N`` produces byte-identical results to a serial run.
That holds only because every point's randomness derives from the
point's *content hash* -- a pure function of its parameters.  The
moment a kernel reads ``os.getpid()``, the multiprocessing worker
name, a thread id, or a pool slot index -- and above all the moment it
folds any of those into an RNG seed -- its output depends on which
worker happened to pick the point up, and the guarantee is gone in a
way no test that only runs serially will ever notice.

SL601 flags the identity reads themselves; SL602 flags the sharper
failure of seeding a :class:`~repro.sim.random.RandomStreams` or
``random.Random`` from one (or from a variable that names itself after
the worker, e.g. ``worker_id`` / ``rank``).
"""

from __future__ import annotations

import ast

from repro.devtools.rules import ModuleContext, register_rule

#: Calls that answer "which worker am I?" -- scheduling-dependent all.
_IDENTITY_CALLS = {
    "os.getpid",
    "os.getppid",
    "multiprocessing.current_process",
    "multiprocessing.parent_process",
    "threading.get_ident",
    "threading.get_native_id",
    "threading.current_thread",
}

#: Variable names that declare themselves to be worker/pool identity.
_SUSPECT_NAMES = {
    "worker_id",
    "worker_index",
    "worker_rank",
    "rank",
    "pid",
    "ppid",
    "tid",
    "process_index",
    "slot_index",
}


def _identity_call(ctx: ModuleContext, node: ast.AST) -> str:
    """The resolved identity call at *node*, or ``""``."""
    if isinstance(node, ast.Call):
        resolved = ctx.resolve_call(node.func)
        if resolved in _IDENTITY_CALLS:
            return resolved
    return ""


def _is_rng_constructor(resolved: str) -> bool:
    return (
        resolved == "RandomStreams"
        or resolved.endswith(".RandomStreams")
        or resolved == "random.Random"
    )


@register_rule(
    "SL601",
    "SL6 parallel determinism",
    "worker/process identity read in simulation code",
    hint=(
        "derive behaviour from the sweep point's parameters or content "
        "hash; which worker runs a point varies with scheduling"
    ),
)
def check_identity_reads(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        resolved = _identity_call(ctx, node)
        if resolved:
            ctx.report(
                "SL601",
                node,
                f"{resolved}() reads worker/process identity",
            )


@register_rule(
    "SL602",
    "SL6 parallel determinism",
    "RNG seeded from worker identity or pool position",
    hint=(
        "seed from the point's content hash (Point.seed), never from "
        "the worker executing it -- otherwise --workers N diverges "
        "from a serial run"
    ),
)
def check_identity_seeding(ctx: ModuleContext) -> None:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not _is_rng_constructor(ctx.resolve_call(node.func)):
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        culprit = ""
        for argument in arguments:
            for child in ast.walk(argument):
                identity = _identity_call(ctx, child)
                if identity:
                    culprit = f"{identity}()"
                elif (
                    isinstance(child, ast.Name)
                    and child.id in _SUSPECT_NAMES
                ):
                    culprit = child.id
                if culprit:
                    break
            if culprit:
                break
        if culprit:
            ctx.report(
                "SL602",
                node,
                f"RNG seed derived from worker identity ({culprit})",
            )
