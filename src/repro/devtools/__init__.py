"""``simlint``: repo-native static analysis for the simulator's invariants.

The reproduction's credibility rests on conventions that ordinary test
suites cannot see: every source of randomness flows through
:class:`repro.sim.random.RandomStreams` (the common-random-numbers
discipline), every engine cycle charged traces back to a named budget
in :mod:`repro.nic.costs` (the paper's instruction-level accounting
method), every trace event belongs to the validated taxonomy of
:mod:`repro.obs.trace`, simulation timestamps are never compared with
float equality, and the duck-typed observability hooks keep the exact
call shapes :mod:`repro.obs.runner` installs.  This package turns each
convention into an AST-checked rule with a stable id, a severity, a
fix hint, and a suppression syntax -- so a drift between the code and
the paper's accounting argument fails CI instead of silently skewing
the T1/T2/F8 tables.

Entry points::

    python -m repro lint             # lint src/repro, text report
    python -m repro lint --docs      # also run the docs hygiene checks
    python tools/simlint.py          # same, without installing

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the
rationale tying each rule family back to the paper.
"""

from repro.devtools.findings import Finding, Severity
from repro.devtools.linter import LintResult, lint_paths
from repro.devtools.rules import RULE_REGISTRY, Rule, register_rule

__all__ = [
    "Finding",
    "Severity",
    "LintResult",
    "lint_paths",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
]
