"""SL2 -- cost-model conformance: no magic cycle numbers.

Davie's evaluation is an accounting argument: every engine cycle in
the T1/T2 tables traces to a named per-operation budget, and the
simulation's claim to reproduce the paper rests on charging *exactly*
those budgets.  A literal ``yield clock.work(16, ...)`` is a number
with no provenance -- if the cost table changes, the call site
silently diverges from the tables the CLI prints.  Cycle expressions
at charge sites must therefore be built from named
:mod:`repro.nic.costs` fields (or other named constants); the same
goes for the per-operation maps handed to the cycle profiler.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.devtools.rules import (
    ModuleContext,
    numeric_literals,
    register_rule,
    terminal_attribute,
)

#: Methods that charge cycles to an engine clock (or host CPU) ledger.
CHARGE_METHODS = {"work", "charge", "charge_at"}

#: Cycle-profiler accounting methods (repro.obs.profiler.CycleProfiler).
PROFILER_METHODS = {"record_cell", "record_pdu", "record_oam", "record_ops"}

#: The module that *defines* the budgets may use literals freely.
BUDGET_HOME = "nic/costs.py"


def _cycles_expression(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "cycles":
            return keyword.value
    return None


@register_rule(
    "SL201",
    "SL2 cost-model",
    "magic cycle literal at an engine charge site",
    hint=(
        "name the budget: add a field to the cost model in nic/costs.py "
        "(or a named constant) and charge that"
    ),
)
def check_charge_literals(ctx: ModuleContext) -> None:
    if ctx.path.endswith(BUDGET_HOME):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in CHARGE_METHODS:
            continue
        cycles = _cycles_expression(node)
        if cycles is None:
            continue
        literals = numeric_literals(cycles)
        if literals:
            values = ", ".join(repr(lit.value) for lit in literals)
            ctx.report(
                "SL201",
                node,
                f"cycle charge uses unnamed literal(s) {values}; every "
                "cycle must trace to a named budget",
                values=[lit.value for lit in literals],
            )


@register_rule(
    "SL202",
    "SL2 cost-model",
    "magic cycle literal in profiler phase accounting",
    hint=(
        "the profiler's measured tables must be built from the same "
        "named cost-model fields the engine charges"
    ),
)
def check_profiler_literals(ctx: ModuleContext) -> None:
    if ctx.path.endswith(BUDGET_HOME):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in PROFILER_METHODS:
            continue
        if terminal_attribute(node.func.value) != "profiler":
            continue
        offenders = []
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            offenders.extend(numeric_literals(argument))
        if offenders:
            values = ", ".join(repr(lit.value) for lit in offenders)
            ctx.report(
                "SL202",
                node,
                f"profiler accounting uses unnamed literal(s) {values}",
                values=[lit.value for lit in offenders],
            )
