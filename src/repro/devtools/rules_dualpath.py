"""SL7 -- dual-path equivalence, plus the SL204 budget cross-check.

PR 7's fast path re-implements the per-cell datapath as batched
``CellBurst`` replay whose contract is "byte-identical stats, charges
and trace events to the scalar path".  The equivalence tests prove
that dynamically on the scenarios they run; these rules prove the
*static* half on every branch: each scalar handler and its declared
burst counterpart must reach the same effect sets
(:mod:`repro.devtools.effects`) over the project call graph
(:mod:`repro.devtools.callgraph`).

Pairs are declared where the handlers live, as a module-level pure
literal::

    PATH_PAIRS = [
        {
            "scalar": "TxEngine._emit_cells_scalar",
            "burst": "TxEngine._emit_cells_fast",
            "scalar_only": ["event:tx.cell.paced"],
            "burst_only": ["event:burst.form"],
            "why": "pacing never rides the burst lane",
        },
    ]

``scalar_only``/``burst_only`` list *declared* asymmetries (tokens
``stat:``/``event:``/``reason:``/``cost:``); anything one-sided and
undeclared is a finding:

- **SL701** a stat mutated on one path only;
- **SL702** a trace event or drop reason emitted on one path only;
- **SL703** a cost-model field charged on one path only;
- **SL704** a fast-path entry point (burst/fast naming, or a
  ``CellBurst`` parameter) in ``nic/``/``atm/``/``host/`` that is in
  no pair and unreachable from any declared burst side -- or a
  PATH_PAIRS entry that does not resolve.

**SL204** is the sibling budget check: the cost fields statically
charged at engine-clock sites are cross-checked *both ways* against
the T1/T2 ``breakdown()`` tables in ``nic/costs.py`` -- a table key
never charged, or a charged field missing from its table, means the
budget tables drifted from the code that charges them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.devtools.callgraph import FunctionInfo, annotation_name
from repro.devtools.effects import EffectAnalysis
from repro.devtools.rules import ProjectContext, register_rule

#: Tree prefixes where fast-path handlers live (SL704's search scope).
PAIR_SCOPE = ("nic/", "atm/", "host/")

#: Function names that look like fast-path entry points.
_FAST_NAME = re.compile(r"(?:^|_)bursts?(?:_|$)|_fast$|^fast_")

_EFFECT_KINDS = ("stat", "event", "reason", "cost")


@dataclass
class ResolvedPair:
    """One PATH_PAIRS entry with both sides resolved to functions."""

    module: str
    line: int
    scalar: FunctionInfo
    burst: FunctionInfo
    #: ``("scalar"|"burst", kind) -> declared one-sided effect names``.
    allowed: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)


@dataclass
class PairDiff:
    """One undeclared one-sided effect between a pair's closures."""

    pair: ResolvedPair
    kind: str  #: ``stat`` / ``event`` / ``reason`` / ``cost``
    name: str  #: The effect, without its ``kind:`` prefix.
    present: str  #: ``"scalar"`` or ``"burst"`` -- the side that has it.


def _analysis(ctx: ProjectContext) -> EffectAnalysis:
    cached = ctx.cache.get("effects")
    if not isinstance(cached, EffectAnalysis):
        cached = EffectAnalysis(ctx.index, ctx.model)
        ctx.cache["effects"] = cached
    return cached


def _split_token(token: object) -> Optional[Tuple[str, str]]:
    if not isinstance(token, str) or ":" not in token:
        return None
    kind, name = token.split(":", 1)
    if kind not in _EFFECT_KINDS or not name:
        return None
    return kind, name


def _resolve_pairs(
    ctx: ProjectContext,
) -> Tuple[List[ResolvedPair], List[Tuple[str, int, str]]]:
    """``(pairs, problems)`` -- problems are (module, line, message)."""
    cached = ctx.cache.get("pairs")
    if isinstance(cached, tuple):
        pairs_cached, problems_cached = cached
        return list(pairs_cached), list(problems_cached)
    pairs: List[ResolvedPair] = []
    problems: List[Tuple[str, int, str]] = []
    for decl in ctx.index.path_pairs:
        if decl.entries is None:
            problems.append((decl.module, decl.line, decl.error))
            continue
        for position, entry in enumerate(decl.entries):
            if not isinstance(entry, dict):
                problems.append(
                    (decl.module, decl.line, f"entry {position} is not a dict")
                )
                continue
            sides: Dict[str, FunctionInfo] = {}
            bad = False
            for side in ("scalar", "burst"):
                qualname = entry.get(side)
                if not isinstance(qualname, str):
                    problems.append(
                        (
                            decl.module,
                            decl.line,
                            f"entry {position} lacks a string {side!r} key",
                        )
                    )
                    bad = True
                    continue
                found = ctx.index.functions.get(f"{decl.module}::{qualname}")
                if found is None:
                    problems.append(
                        (
                            decl.module,
                            decl.line,
                            f"entry {position} names unknown function "
                            f"{qualname!r} (must be defined in this module)",
                        )
                    )
                    bad = True
                    continue
                sides[side] = found
            if bad:
                continue
            pair = ResolvedPair(
                module=decl.module,
                line=decl.line,
                scalar=sides["scalar"],
                burst=sides["burst"],
            )
            for side in ("scalar_only", "burst_only"):
                tokens = entry.get(side, [])
                if not isinstance(tokens, list):
                    problems.append(
                        (
                            decl.module,
                            decl.line,
                            f"entry {position}: {side} must be a list of "
                            "'kind:name' tokens",
                        )
                    )
                    continue
                owner = "scalar" if side == "scalar_only" else "burst"
                for token in tokens:
                    parsed = _split_token(token)
                    if parsed is None:
                        problems.append(
                            (
                                decl.module,
                                decl.line,
                                f"entry {position}: bad effect token "
                                f"{token!r} (want 'stat:...', 'event:...', "
                                "'reason:...' or 'cost:...')",
                            )
                        )
                        continue
                    kind, name = parsed
                    pair.allowed.setdefault((owner, kind), set()).add(name)
            pairs.append(pair)
    ctx.cache["pairs"] = (list(pairs), list(problems))
    return pairs, problems


def _pair_diffs(ctx: ProjectContext) -> List[PairDiff]:
    cached = ctx.cache.get("diffs")
    if isinstance(cached, list):
        return cached
    analysis = _analysis(ctx)
    pairs, _ = _resolve_pairs(ctx)
    diffs: List[PairDiff] = []
    for pair in pairs:
        scalar = analysis.closure(pair.scalar.key)
        burst = analysis.closure(pair.burst.key)
        for kind, prefix_sets in (
            ("stat", (scalar.stats, burst.stats)),
            ("event", (scalar.events, burst.events)),
            ("reason", (scalar.reasons, burst.reasons)),
            ("cost", (scalar.costs, burst.costs)),
        ):
            scalar_set, burst_set = prefix_sets
            if kind == "cost":
                scalar_names, burst_names = set(scalar_set), set(burst_set)
            else:
                scalar_names = {name.split(":", 1)[1] for name in scalar_set}
                burst_names = {name.split(":", 1)[1] for name in burst_set}
            scalar_only = (
                scalar_names
                - burst_names
                - pair.allowed.get(("scalar", kind), set())
            )
            burst_only = (
                burst_names
                - scalar_names
                - pair.allowed.get(("burst", kind), set())
            )
            for name in sorted(scalar_only):
                diffs.append(PairDiff(pair, kind, name, present="scalar"))
            for name in sorted(burst_only):
                diffs.append(PairDiff(pair, kind, name, present="burst"))
    ctx.cache["diffs"] = diffs
    return diffs


def _report_diff(ctx: ProjectContext, rule_id: str, diff: PairDiff, verb: str) -> None:
    pair = diff.pair
    if diff.present == "scalar":
        lacking, having = pair.burst, pair.scalar
        lane, other_lane = "burst", "scalar"
    else:
        lacking, having = pair.scalar, pair.burst
        lane, other_lane = "scalar", "burst"
    ctx.report(
        rule_id,
        path=lacking.module,
        line=lacking.line,
        message=(
            f"{diff.kind} '{diff.name}' is {verb} on the {other_lane} path "
            f"{having.qualname} but never on its {lane} counterpart "
            f"{lacking.qualname}"
        ),
    )


@register_rule(
    "SL701",
    "SL7 dual-path",
    "stat mutated on one path of a scalar/burst pair only",
    hint=(
        "mirror the mutation in the lacking handler, or declare the "
        "asymmetry in PATH_PAIRS (scalar_only/burst_only: 'stat:...') "
        "with a why"
    ),
    scope="project",
)
def check_stat_parity(ctx: ProjectContext) -> None:
    for diff in _pair_diffs(ctx):
        if diff.kind == "stat":
            _report_diff(ctx, "SL701", diff, "mutated")


@register_rule(
    "SL702",
    "SL7 dual-path",
    "trace event or drop reason emitted on one path only",
    hint=(
        "the burst replay must emit the same lifecycle events and drop "
        "reasons as the scalar reference; mirror the emission or declare "
        "it in PATH_PAIRS ('event:...' / 'reason:...')"
    ),
    scope="project",
)
def check_trace_parity(ctx: ProjectContext) -> None:
    for diff in _pair_diffs(ctx):
        if diff.kind == "event":
            _report_diff(ctx, "SL702", diff, "emitted")
        elif diff.kind == "reason":
            _report_diff(ctx, "SL702", diff, "booked")


@register_rule(
    "SL703",
    "SL7 dual-path",
    "cost-model field charged on one path only",
    hint=(
        "every cycle the scalar reference charges must be replayed by "
        "the burst path (and vice versa); mirror the charge or declare "
        "it in PATH_PAIRS ('cost:<field>')"
    ),
    scope="project",
)
def check_cost_parity(ctx: ProjectContext) -> None:
    for diff in _pair_diffs(ctx):
        if diff.kind == "cost":
            _report_diff(ctx, "SL703", diff, "charged")


@register_rule(
    "SL704",
    "SL7 dual-path",
    "fast-path entry point not declared in any PATH_PAIRS registry",
    hint=(
        "pair the handler with its scalar counterpart in a module-level "
        "PATH_PAIRS literal so SL701-SL703 can check it; helpers only "
        "reachable from a declared burst side are already covered"
    ),
    scope="project",
)
def check_unpaired_entry_points(ctx: ProjectContext) -> None:
    pairs, problems = _resolve_pairs(ctx)
    for module, line, message in problems:
        ctx.report("SL704", path=module, line=line, message=message)
    declared: Set[str] = set()
    burst_roots: List[str] = []
    for pair in pairs:
        declared.add(pair.scalar.key)
        declared.add(pair.burst.key)
        burst_roots.append(pair.burst.key)
    covered = ctx.index.reachable(burst_roots) | declared
    for key in sorted(ctx.index.functions):
        fn = ctx.index.functions[key]
        if not _in_scope(fn.module) or fn.module.endswith("atm/burst.py"):
            continue
        if fn.class_name == "CellBurst":
            continue
        if not _looks_fast(fn):
            continue
        if key in covered:
            continue
        ctx.report(
            "SL704",
            path=fn.module,
            line=fn.line,
            message=(
                f"fast-path entry point {fn.qualname!r} is not declared in "
                "any PATH_PAIRS registry and is not reachable from a "
                "declared burst handler"
            ),
        )


def _in_scope(module: str) -> bool:
    return any(
        module.startswith(prefix) or f"/{prefix}" in f"/{module}"
        for prefix in PAIR_SCOPE
    )


def _looks_fast(fn: FunctionInfo) -> bool:
    if _FAST_NAME.search(fn.node.name):
        return True
    for arg in list(fn.node.args.posonlyargs) + list(fn.node.args.args):
        if arg.annotation is not None:
            name = annotation_name(arg.annotation)
            if name is not None and name.split(".")[-1] == "CellBurst":
                return True
    return False


@register_rule(
    "SL204",
    "SL2 cost-model",
    "budget table and charge sites disagree on the cost-field set",
    hint=(
        "nic/costs.py breakdown() tables and the engine charge sites "
        "must cover the same fields: charge the missing field, add it "
        "to the table, or delete the dead table row"
    ),
    scope="project",
)
def check_budget_table_composition(ctx: ProjectContext) -> None:
    analysis = _analysis(ctx)
    models = analysis.cost_models
    if not models:
        return
    charged: Dict[str, Set[str]] = {name: set() for name in models}
    for record in analysis.charge_records:
        for field_name, owner in record.direct:
            if owner is not None:
                charged.setdefault(owner, set()).add(field_name)
            else:
                for info in models.values():
                    if field_name in info.fields:
                        charged[info.name].add(field_name)
        for owner, fields in record.expanded.items():
            charged.setdefault(owner, set()).update(fields)
    # Direction A: a table key nothing ever charges is a dead budget row.
    for name in sorted(models):
        info = models[name]
        if not charged.get(name):
            continue  # model never charged at all: out of linted scope
        for key in sorted(info.breakdown_keys):
            if key in info.fields and key not in charged[name]:
                ctx.report(
                    "SL204",
                    path=info.module,
                    line=info.breakdown_line,
                    message=(
                        f"budget-table key {key!r} of {info.name}.breakdown() "
                        "is never charged at any engine charge site"
                    ),
                )
    # Direction B: a charged field absent from its budget table.
    for record in analysis.charge_records:
        for field_name, owner in record.direct:
            if owner is not None:
                info = models.get(owner)
                if (
                    info is not None
                    and field_name in info.fields
                    and field_name not in info.breakdown_keys
                ):
                    ctx.report(
                        "SL204",
                        path=record.module,
                        line=record.line,
                        message=(
                            f"charged cost field {field_name!r} is missing "
                            f"from the {info.name}.breakdown() budget table"
                        ),
                    )
            else:
                owners = [
                    info
                    for info in models.values()
                    if field_name in info.fields
                ]
                if owners and all(
                    field_name not in info.breakdown_keys for info in owners
                ):
                    names = ", ".join(sorted(info.name for info in owners))
                    ctx.report(
                        "SL204",
                        path=record.module,
                        line=record.line,
                        message=(
                            f"charged cost field {field_name!r} is missing "
                            f"from the budget table(s) of {names}"
                        ),
                    )
