"""Project-wide call graph for interprocedural simlint rules.

The per-module rules (SL1--SL6) judge one AST at a time.  The SL7
dual-path family needs to compare *everything a handler transitively
does* against its fast-path counterpart, which requires a call graph
spanning the whole linted tree.  This module builds one, with the
approximations that make a Python call graph tractable:

- **import/alias resolution** -- ``from x import Y as Z`` and local
  aliases like ``charge_at = clock.charge_at`` (the fast-path modules
  hoist bound methods into locals for speed) are followed;
- **typed receivers** -- ``self.fifo.try_put(...)`` resolves through
  the annotated ``__init__`` parameter that initialised ``self.fifo``
  (``Optional[X]``/``X | None`` unwrap to ``X``);
- **name approximation** -- an untyped receiver falls back to *every*
  project class defining the method, capped at
  :data:`AMBIGUITY_CAP` candidates so a generic name like ``get``
  cannot explode the graph;
- **method references** -- ``sim.schedule_call_at(t, self._complete,
  ...)`` passes a bound method as data; a ``self.<method>`` attribute
  that is not the callee of a call still contributes an edge, because
  the scheduler will call it later;
- **opaque receivers** -- calls on the engine clock and the obs hooks
  (``clock``/``trace``/``recorder``/``profiler``) never create edges:
  their side effects are modelled *at the call site* by
  :mod:`repro.devtools.effects`, and following them would double-count
  (``work`` emits ``engine.stall`` internally while the fast path
  replays the same stall through ``take_stall``).

Nested function definitions are folded into their enclosing function:
a closure passed to a resource callback executes on behalf of the
function that created it.

The module also collects every module-level ``PATH_PAIRS`` literal --
the declared scalar/burst handler registry that the SL7 rules check.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

#: Receiver names whose calls are modelled as effects, never as edges.
OPAQUE_RECEIVER_NAMES = frozenset({"clock", "trace", "recorder", "profiler"})

#: Classes treated the same way when the receiver resolves by type.
OPAQUE_CLASS_NAMES = frozenset({"EngineClock", "TraceRecorder", "CycleProfiler"})

#: An untyped method call fans out to at most this many candidates.
AMBIGUITY_CAP = 8


@dataclass
class FunctionInfo:
    """One function or method in the linted tree."""

    key: str  #: ``"<module>::<qualname>"`` -- the graph node id.
    qualname: str  #: ``"Class.method"`` or a bare function name.
    module: str  #: Module path relative to the lint root.
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""  #: Empty for module-level functions.

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition plus what the index learned about it."""

    name: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> annotation-derived type name (unresolved).
    attr_type_names: Dict[str, str] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)


@dataclass
class PathPairsDecl:
    """A module-level ``PATH_PAIRS = [...]`` declaration."""

    module: str
    line: int
    entries: Optional[List[object]]  #: ``None`` when not a pure literal.
    error: str = ""


def import_table(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in *tree*."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                local = alias.asname or alias.name
                origin = f"{module}.{alias.name}" if module else alias.name
                table[local] = origin
    return table


def annotation_name(node: ast.expr) -> Optional[str]:
    """The class name an annotation denotes, unwrapping ``Optional``.

    Handles ``X``, ``pkg.X``, ``Optional[X]``, ``X | None`` and string
    annotations; anything fancier returns ``None`` (untyped fallback).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return None
        return annotation_name(parsed.body)
    if isinstance(node, ast.Name):
        return None if node.id == "None" else node.id
    if isinstance(node, ast.Attribute):
        base = annotation_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Subscript):
        base = annotation_name(node.value)
        if base is not None and base.split(".")[-1] == "Optional":
            index = node.slice
            return annotation_name(index) if isinstance(index, ast.expr) else None
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_name(node.left)
        right = annotation_name(node.right)
        if left is None:
            return right
        if right is None:
            return left
        return None
    return None


def self_attribute_path(
    expr: ast.expr, env: Mapping[str, Tuple[str, ...]]
) -> Optional[Tuple[str, ...]]:
    """The ``self``-rooted attribute path *expr* denotes, if any.

    ``self`` -> ``()``; ``self.fifo`` -> ``("fifo",)``; a local alias
    recorded in *env* expands to the path it was assigned from.
    """
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return ()
        return env.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base = self_attribute_path(expr.value, env)
        if base is None:
            return None
        return base + (expr.attr,)
    return None


def local_alias_env(func: ast.AST) -> Dict[str, Tuple[str, ...]]:
    """``local name -> self-rooted path`` for hoisted-attribute aliases.

    Two passes so chains like ``clock = self.clock`` followed by
    ``charge_at = clock.charge_at`` resolve regardless of walk order.
    """
    env: Dict[str, Tuple[str, ...]] = {}
    for _ in range(2):
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                path = self_attribute_path(node.value, env)
                if path:
                    env[node.targets[0].id] = path
    return env


def terminal_name(expr: ast.expr) -> Optional[str]:
    """The last name component of a receiver expression."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


@dataclass
class CallTarget:
    """A resolved view of what a call expression invokes."""

    method: str  #: The invoked attribute/function name.
    receiver: Optional[Tuple[str, ...]]  #: Self-rooted path, or ``None``.
    terminal: Optional[str]  #: Last name component of the receiver.


def call_target(
    func: ast.expr, env: Mapping[str, Tuple[str, ...]]
) -> Optional[CallTarget]:
    """Resolve a ``Call.func`` into a :class:`CallTarget`, if method-like.

    Bare names that are not local aliases return ``None`` -- they are
    module-level function calls, handled separately by the edge builder.
    """
    if isinstance(func, ast.Name):
        path = env.get(func.id)
        if path and len(path) >= 1:
            receiver = path[:-1]
            terminal = receiver[-1] if receiver else "self"
            return CallTarget(method=path[-1], receiver=receiver, terminal=terminal)
        return None
    if isinstance(func, ast.Attribute):
        base = self_attribute_path(func.value, env)
        if base is not None:
            terminal = base[-1] if base else "self"
            return CallTarget(method=func.attr, receiver=base, terminal=terminal)
        return CallTarget(
            method=func.attr, receiver=None, terminal=terminal_name(func.value)
        )
    return None


class ProjectIndex:
    """Classes, functions, call edges and PATH_PAIRS across the tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ast.Module] = {}
        self.imports: Dict[str, Dict[str, str]] = {}
        self.classes: Dict[str, ClassInfo] = {}  #: key "<module>::<name>"
        self.classes_by_name: Dict[str, List[str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.edges: Dict[str, Set[str]] = {}
        self.path_pairs: List[PathPairsDecl] = []

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, modules: Mapping[str, ast.Module]) -> "ProjectIndex":
        index = cls()
        index.modules = dict(modules)
        for module, tree in sorted(index.modules.items()):
            index.imports[module] = import_table(tree)
            index._index_module(module, tree)
        for info in index.classes.values():
            index._collect_attr_types(info)
        for key in sorted(index.functions):
            index.edges[key] = index._build_edges(index.functions[key])
        return index

    def _index_module(self, module: str, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, node.name, node, class_name="")
            elif isinstance(node, ast.ClassDef):
                key = f"{module}::{node.name}"
                info = ClassInfo(name=node.name, module=module, node=node)
                for base in node.bases:
                    base_name = annotation_name(base)
                    if base_name is not None:
                        info.base_names.append(base_name)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(
                            module,
                            f"{node.name}.{item.name}",
                            item,
                            class_name=node.name,
                        )
                        info.methods[item.name] = fn
                        self.methods_by_name.setdefault(item.name, []).append(
                            fn.key
                        )
                self.classes[key] = info
                self.classes_by_name.setdefault(node.name, []).append(key)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "PATH_PAIRS"
            ):
                self.path_pairs.append(self._parse_path_pairs(module, node))

    def _add_function(
        self,
        module: str,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str,
    ) -> FunctionInfo:
        info = FunctionInfo(
            key=f"{module}::{qualname}",
            qualname=qualname,
            module=module,
            node=node,
            class_name=class_name,
        )
        self.functions[info.key] = info
        return info

    @staticmethod
    def _parse_path_pairs(module: str, node: ast.Assign) -> PathPairsDecl:
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            return PathPairsDecl(
                module=module,
                line=node.lineno,
                entries=None,
                error="PATH_PAIRS must be a pure literal list of dicts",
            )
        if not isinstance(value, list):
            return PathPairsDecl(
                module=module,
                line=node.lineno,
                entries=None,
                error="PATH_PAIRS must be a list of dicts",
            )
        return PathPairsDecl(module=module, line=node.lineno, entries=value)

    def _collect_attr_types(self, info: ClassInfo) -> None:
        for method in info.methods.values():
            params: Dict[str, str] = {}
            for arg in (
                list(method.node.args.posonlyargs)
                + list(method.node.args.args)
                + list(method.node.args.kwonlyargs)
            ):
                if arg.annotation is not None:
                    name = annotation_name(arg.annotation)
                    if name is not None:
                        params[arg.arg] = name
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                ann: Optional[str] = None
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    value = node.value
                    ann = annotation_name(node.annotation)
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    value = node.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                type_name = ann if ann is not None else self._value_type(
                    value, params
                )
                if type_name is not None and attr not in info.attr_type_names:
                    info.attr_type_names[attr] = type_name

    def _value_type(
        self, value: Optional[ast.expr], params: Mapping[str, str]
    ) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.Call):
            callee = value.func
            name = annotation_name(callee) if isinstance(
                callee, (ast.Name, ast.Attribute)
            ) else None
            if name is not None and name.split(".")[-1] in self.classes_by_name:
                return name
            return None
        if isinstance(value, ast.IfExp):
            return self._value_type(value.body, params) or self._value_type(
                value.orelse, params
            )
        return None

    # -- resolution ----------------------------------------------------

    def resolve_class(self, type_name: str, module: str) -> Optional[ClassInfo]:
        """The project :class:`ClassInfo` a type name denotes, if any."""
        simple = type_name.split(".")[-1]
        candidates = self.classes_by_name.get(simple, [])
        if not candidates:
            return None
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        same_module = [key for key in candidates if key.startswith(f"{module}::")]
        if len(same_module) == 1:
            return self.classes[same_module[0]]
        origin = self.imports.get(module, {}).get(type_name.split(".")[0], "")
        if origin:
            tail = origin.replace(".", "/")
            for key in candidates:
                class_module = key.split("::", 1)[0]
                stem = class_module[:-3] if class_module.endswith(".py") else class_module
                if tail.endswith(stem) or stem.endswith(tail.rsplit("/", 1)[0]):
                    return self.classes[key]
        return None

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if not fn.class_name:
            return None
        return self.classes.get(f"{fn.module}::{fn.class_name}")

    def attr_class(self, info: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """Resolve one attribute hop, walking base classes if needed."""
        seen: Set[str] = set()
        current: Optional[ClassInfo] = info
        while current is not None and current.name not in seen:
            seen.add(current.name)
            type_name = current.attr_type_names.get(attr)
            if type_name is not None:
                return self.resolve_class(type_name, current.module)
            current = self._first_base(current)
        return None

    def _first_base(self, info: ClassInfo) -> Optional[ClassInfo]:
        for base_name in info.base_names:
            base = self.resolve_class(base_name, info.module)
            if base is not None:
                return base
        return None

    def receiver_class(
        self, fn: FunctionInfo, receiver: Tuple[str, ...]
    ) -> Optional[ClassInfo]:
        """The class a ``self``-rooted receiver path resolves to."""
        current = self.class_of(fn)
        if current is None:
            return None
        for attr in receiver:
            current = self.attr_class(current, attr)
            if current is None:
                return None
        return current

    def find_method(self, info: ClassInfo, method: str) -> Optional[FunctionInfo]:
        """*method* on *info* or the nearest base defining it."""
        seen: Set[str] = set()
        current: Optional[ClassInfo] = info
        while current is not None and current.name not in seen:
            seen.add(current.name)
            found = current.methods.get(method)
            if found is not None:
                return found
            current = self._first_base(current)
        return None

    # -- edges ---------------------------------------------------------

    def _build_edges(self, fn: FunctionInfo) -> Set[str]:
        env = local_alias_env(fn.node)
        edges: Set[str] = set()
        call_funcs = {
            id(node.func)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
        }
        own_class = self.class_of(fn)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                self._add_call_edges(fn, own_class, node, env, edges)
            elif (
                isinstance(node, ast.Attribute)
                and id(node) not in call_funcs
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and own_class is not None
            ):
                # A bound method passed as data (scheduler callbacks).
                referenced = self.find_method(own_class, node.attr)
                if referenced is not None:
                    edges.add(referenced.key)
        edges.discard(fn.key)
        return edges

    def _add_call_edges(
        self,
        fn: FunctionInfo,
        own_class: Optional[ClassInfo],
        call: ast.Call,
        env: Mapping[str, Tuple[str, ...]],
        edges: Set[str],
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id not in env:
            self._add_name_call(fn, func.id, edges)
            return
        target = call_target(func, env)
        if target is None:
            return
        if target.receiver is None:
            # Not self-rooted: a ClassName.method or module.func call.
            if isinstance(func, ast.Attribute):
                self._add_external_attribute_call(fn, func, edges)
            return
        if target.receiver == ():
            if own_class is not None:
                method = self.find_method(own_class, target.method)
                if method is not None:
                    edges.add(method.key)
            return
        if target.terminal in OPAQUE_RECEIVER_NAMES:
            return
        receiver_cls = self.receiver_class(fn, target.receiver)
        if receiver_cls is not None:
            if receiver_cls.name in OPAQUE_CLASS_NAMES:
                return
            method = self.find_method(receiver_cls, target.method)
            if method is not None:
                edges.add(method.key)
            return
        self._add_approximate_edges(target.method, edges)

    def _add_name_call(self, fn: FunctionInfo, name: str, edges: Set[str]) -> None:
        local = self.functions.get(f"{fn.module}::{name}")
        if local is not None and not local.class_name:
            edges.add(local.key)
            return
        origin = self.imports.get(fn.module, {}).get(name)
        if origin is None:
            return
        parts = origin.rsplit(".", 1)
        if len(parts) != 2:
            return
        module_dotted, func_name = parts
        tail = module_dotted.replace(".", "/") + ".py"
        for module in self.modules:
            if module == tail or module.endswith(f"/{tail}") or tail.endswith(
                f"/{module}"
            ):
                imported = self.functions.get(f"{module}::{func_name}")
                if imported is not None:
                    edges.add(imported.key)
                    return

    def _add_external_attribute_call(
        self, fn: FunctionInfo, func: ast.Attribute, edges: Set[str]
    ) -> None:
        if not isinstance(func.value, ast.Name):
            return
        base = func.value.id
        candidates = self.classes_by_name.get(base, [])
        info: Optional[ClassInfo] = None
        if len(candidates) == 1:
            info = self.classes[candidates[0]]
        elif candidates:
            info = self.resolve_class(base, fn.module)
        if info is not None:
            method = self.find_method(info, func.attr)
            if method is not None:
                edges.add(method.key)

    def _add_approximate_edges(self, method: str, edges: Set[str]) -> None:
        keys = [
            key
            for key in self.methods_by_name.get(method, [])
            if self.functions[key].class_name not in OPAQUE_CLASS_NAMES
        ]
        if 0 < len(keys) <= AMBIGUITY_CAP:
            edges.update(keys)

    # -- traversal -----------------------------------------------------

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """All function keys reachable from *roots*, roots included."""
        seen: Set[str] = set()
        stack = [key for key in roots if key in self.functions]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.edges.get(key, ()) - seen)
        return seen
