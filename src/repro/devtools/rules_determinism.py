"""SL1 -- determinism: all randomness flows through RandomStreams.

The evaluation compares configurations under common random numbers
(:mod:`repro.sim.random`): every logical noise source draws from its
own named, seed-derived stream, so adding a consumer never perturbs
the draws of existing ones.  Any direct use of the :mod:`random`
module -- or of wall-clock entropy -- outside ``sim/random.py`` breaks
that discipline, and iterating a bare ``set`` in scheduling code makes
event order depend on hash seeds rather than simulated time.
"""

from __future__ import annotations

import ast

from repro.devtools.rules import ModuleContext, register_rule

#: The one module allowed to touch :mod:`random` directly.
SANCTIONED = "sim/random.py"

#: Module-level draw functions of :mod:`random` (the shared global RNG).
_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "expovariate",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "seed",
}

#: Wall-clock / OS entropy calls that have no place in simulated time.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")

#: Tree prefixes whose event ordering must be hash-independent.
SCHEDULING_PATHS = ("sim/", "nic/", "atm/", "host/", "aal/")


def _sanctioned(ctx: ModuleContext) -> bool:
    return ctx.path.endswith(SANCTIONED)


@register_rule(
    "SL101",
    "SL1 determinism",
    "direct random.Random construction outside sim/random.py",
    hint=(
        "draw from a named stream: RandomStreams(seed).stream('component')"
        " keeps the common-random-numbers discipline"
    ),
)
def check_random_construction(ctx: ModuleContext) -> None:
    if _sanctioned(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if resolved in ("random.Random", "random.SystemRandom"):
            ctx.report(
                "SL101",
                node,
                f"{resolved}() constructed outside {SANCTIONED}",
            )


@register_rule(
    "SL102",
    "SL1 determinism",
    "module-level random.* draw (the shared global RNG)",
    hint=(
        "the global RNG couples every consumer's draws; use a "
        "RandomStreams stream instead"
    ),
)
def check_global_random_draw(ctx: ModuleContext) -> None:
    if _sanctioned(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if not resolved.startswith("random."):
            continue
        if resolved.split(".", 1)[1] in _RANDOM_DRAWS:
            ctx.report(
                "SL102",
                node,
                f"{resolved}() draws from the process-global RNG",
            )


@register_rule(
    "SL103",
    "SL1 determinism",
    "wall-clock or OS entropy in simulation code",
    hint=(
        "simulated time is sim.now; wall-clock reads make runs "
        "unreproducible (CLI progress timing may use time.perf_counter)"
    ),
)
def check_wall_clock_entropy(ctx: ModuleContext) -> None:
    if _sanctioned(ctx):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_call(node.func)
        if not resolved:
            continue
        if resolved in _WALL_CLOCK or resolved.endswith(_WALL_CLOCK_SUFFIXES):
            ctx.report(
                "SL103",
                node,
                f"{resolved}() reads wall-clock/OS entropy",
            )


def _is_set_expression(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset")
    )


@register_rule(
    "SL104",
    "SL1 determinism",
    "iteration over an unordered set in event-scheduling code",
    hint=(
        "set order follows the hash seed, not simulated time; iterate "
        "sorted(...) or keep an ordered container"
    ),
)
def check_set_iteration(ctx: ModuleContext) -> None:
    if not ctx.in_paths(*SCHEDULING_PATHS):
        return
    for node in ast.walk(ctx.tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            iters.extend(gen.iter for gen in node.generators)
        for candidate in iters:
            if _is_set_expression(candidate):
                ctx.report(
                    "SL104",
                    candidate,
                    "iterating a set yields hash-seed-dependent order",
                )
