"""Documentation hygiene checks behind ``python -m repro lint --docs``.

Two invariants, both findings-producing so they ride the same
reporters and CI artifact as the AST rules:

- **DOC101**: every package and module under ``src/repro`` carries a
  module docstring (the observability layer made docstrings part of
  the public API surface, so an undocumented module is a regression);
- **DOC102**: every relative Markdown link in the repo's documentation
  resolves to a file that exists -- the top-level ``*.md`` files and
  everything under ``docs/``.

``tools/check_docs.py`` is a thin shim over this module, kept so the
historical invocation keeps working.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import List

from repro.devtools.findings import Finding, Severity

# [text](target) -- capture the target; fenced code is stripped first.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def default_repo_root() -> Path:
    """The repository root, assuming the src-layout checkout."""
    return Path(__file__).resolve().parents[3]


def missing_docstrings(src: Path, repo: Path) -> List[Finding]:
    """DOC101 findings for undocumented modules under *src*."""
    findings = []
    for path in sorted(src.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="DOC101",
                    severity=Severity.ERROR,
                    path=_rel(path, repo),
                    line=exc.lineno or 1,
                    message=f"module does not parse: {exc.msg}",
                )
            )
            continue
        if ast.get_docstring(tree) is None:
            findings.append(
                Finding(
                    rule="DOC101",
                    severity=Severity.ERROR,
                    path=_rel(path, repo),
                    line=1,
                    message="missing module docstring",
                    hint=(
                        "module docstrings are the narrative API surface; "
                        "say what the module models and why"
                    ),
                )
            )
    return findings


def _rel(path: Path, repo: Path) -> str:
    try:
        return path.resolve().relative_to(repo.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def doc_files(repo: Path) -> List[Path]:
    files = sorted(repo.glob("*.md"))
    docs_dir = repo / "docs"
    if docs_dir.is_dir():
        files += sorted(docs_dir.glob("*.md"))
    return files


def broken_links(repo: Path) -> List[Finding]:
    """DOC102 findings for relative Markdown links that do not resolve."""
    findings = []
    for doc in doc_files(repo):
        raw = doc.read_text(encoding="utf-8")
        text = _FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), raw)
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                # Strip any #fragment; empty path = same-file anchor.
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    findings.append(
                        Finding(
                            rule="DOC102",
                            severity=Severity.ERROR,
                            path=_rel(doc, repo),
                            line=lineno,
                            message=f"broken link -> {target}",
                            hint="fix the path or drop the link",
                        )
                    )
    return findings


def check_docs(repo: Path | None = None) -> List[Finding]:
    """All documentation findings for the repository at *repo*."""
    repo = repo if repo is not None else default_repo_root()
    src = repo / "src" / "repro"
    findings: List[Finding] = []
    if src.is_dir():
        findings.extend(missing_docstrings(src, repo))
    findings.extend(broken_links(repo))
    return findings


def main(repo: Path | None = None) -> int:
    """Stand-alone runner used by ``tools/check_docs.py``."""
    repo = repo if repo is not None else default_repo_root()
    findings = check_docs(repo)
    for finding in sorted(findings, key=Finding.sort_key):
        print(finding.format())
    if findings:
        print(f"\n{len(findings)} documentation problem(s)")
        return 1
    n_modules = len(
        [
            p
            for p in (repo / "src" / "repro").rglob("*.py")
            if "__pycache__" not in p.parts
        ]
    )
    print(
        f"docs check OK: {n_modules} modules documented, "
        f"{len(doc_files(repo))} markdown files with resolving links"
    )
    return 0
