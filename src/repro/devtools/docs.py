"""Documentation hygiene checks behind ``python -m repro lint --docs``.

Three invariants, all findings-producing so they ride the same
reporters and CI artifact as the AST rules:

- **DOC101**: every package and module under ``src/repro`` carries a
  module docstring (the observability layer made docstrings part of
  the public API surface, so an undocumented module is a regression);
- **DOC102**: every relative Markdown link in the repo's documentation
  resolves to a file that exists -- the top-level ``*.md`` files and
  everything under ``docs/``;
- **DOC103**: every ``python -m repro ...`` invocation inside a fenced
  ``console``/``bash``/``sh``/``shell`` block in those files parses
  against the live argparse registry -- subcommand flags must exist,
  experiment ids must be registered -- so a quickstart the docs show
  cannot drift from the CLI that ships.

``tools/check_docs.py`` is a thin shim over this module, kept so the
historical invocation keeps working.
"""

from __future__ import annotations

import ast
import contextlib
import io
import re
import shlex
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.devtools.findings import Finding, Severity

# [text](target) -- capture the target; fenced code is stripped first.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)

# Fence opener with its info string, e.g. ```console or ```bash.
_FENCE_OPEN = re.compile(r"^\s*```+\s*([A-Za-z0-9_+-]*)\s*$")
#: Info strings marking a fence as shell commands to be DOC103-checked
#: (``text`` blocks stay exempt: they hold usage *patterns* with
#: ``<placeholders>``, not runnable commands).
COMMAND_LANGS = frozenset({"console", "bash", "sh", "shell"})
# The entry point inside a command line (any env-var/prompt prefix ok).
_REPRO_CMD = re.compile(r"python\s+-m\s+repro\b")
# Where the repro invocation ends: a pipe, redirect, chain, or comment.
_SHELL_BREAK = re.compile(r"\s(?:\|\|?|&&|;|\d?>>?|#)")


def default_repo_root() -> Path:
    """The repository root, assuming the src-layout checkout."""
    return Path(__file__).resolve().parents[3]


def missing_docstrings(src: Path, repo: Path) -> List[Finding]:
    """DOC101 findings for undocumented modules under *src*."""
    findings = []
    for path in sorted(src.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="DOC101",
                    severity=Severity.ERROR,
                    path=_rel(path, repo),
                    line=exc.lineno or 1,
                    message=f"module does not parse: {exc.msg}",
                )
            )
            continue
        if ast.get_docstring(tree) is None:
            findings.append(
                Finding(
                    rule="DOC101",
                    severity=Severity.ERROR,
                    path=_rel(path, repo),
                    line=1,
                    message="missing module docstring",
                    hint=(
                        "module docstrings are the narrative API surface; "
                        "say what the module models and why"
                    ),
                )
            )
    return findings


def _rel(path: Path, repo: Path) -> str:
    try:
        return path.resolve().relative_to(repo.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def doc_files(repo: Path) -> List[Path]:
    files = sorted(repo.glob("*.md"))
    docs_dir = repo / "docs"
    if docs_dir.is_dir():
        files += sorted(docs_dir.glob("*.md"))
    return files


def broken_links(repo: Path) -> List[Finding]:
    """DOC102 findings for relative Markdown links that do not resolve."""
    findings = []
    for doc in doc_files(repo):
        raw = doc.read_text(encoding="utf-8")
        text = _FENCE.sub(lambda m: "\n" * m.group(0).count("\n"), raw)
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _LINK.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                # Strip any #fragment; empty path = same-file anchor.
                path_part = target.split("#", 1)[0]
                if not path_part:
                    continue
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    findings.append(
                        Finding(
                            rule="DOC102",
                            severity=Severity.ERROR,
                            path=_rel(doc, repo),
                            line=lineno,
                            message=f"broken link -> {target}",
                            hint="fix the path or drop the link",
                        )
                    )
    return findings


def iter_command_lines(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, line)`` for lines inside command fences."""
    in_command_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        opener = _FENCE_OPEN.match(line)
        if opener is not None:
            if in_command_block:
                in_command_block = False
            else:
                in_command_block = opener.group(1).lower() in COMMAND_LANGS
            continue
        if in_command_block:
            yield lineno, line


def _parse_quietly(parser, argv: List[str]):
    """``(accepted, namespace)`` without letting argparse print or exit.

    ``--help``-style zero exits count as accepted (with no namespace);
    a nonzero exit means argparse rejected the arguments.
    """
    try:
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            return True, parser.parse_args(argv)
    except SystemExit as exc:
        return exc.code in (0, None), None


def validate_repro_argv(tokens: List[str]) -> Optional[str]:
    """Why ``python -m repro <tokens>`` would not parse, or ``None``.

    Mirrors :func:`repro.cli.main`'s dispatch: ``trace``/``lint``/
    ``bench`` route to their subcommand parsers, everything else to the
    top-level experiment parser -- where, beyond argparse acceptance,
    every positional id must exist in the experiment registry and the
    invocation must actually name something to do.
    """
    if tokens and tokens[0] in ("trace", "lint", "bench"):
        subcommand, rest = tokens[0], tokens[1:]
        if subcommand == "trace":
            from repro.obs.runner import build_parser
        elif subcommand == "lint":
            from repro.devtools.cli import build_parser
        else:
            from repro.runner.bench import build_parser
        accepted, _ = _parse_quietly(build_parser(), rest)
        if not accepted:
            return f"'repro {subcommand}' rejects {' '.join(rest) or '(no args)'}"
        return None

    from repro.cli import build_parser
    from repro.runner.registry import REGISTRY

    accepted, args = _parse_quietly(build_parser(), tokens)
    if not accepted:
        return f"top-level CLI rejects {' '.join(tokens)}"
    if args is None:  # --help-style exit: accepted, nothing to validate
        return None
    unknown = [
        word for word in args.experiments if word.upper() not in REGISTRY
    ]
    if unknown:
        return f"unknown experiment id(s): {', '.join(unknown)}"
    if not args.experiments and not (args.all or args.list):
        return "names no experiment and no --all/--list (prints help, exits 2)"
    return None


def cli_drift(repo: Path) -> List[Finding]:
    """DOC103 findings: documented CLI invocations that do not parse."""
    findings = []
    for doc in doc_files(repo):
        for lineno, line in iter_command_lines(
            doc.read_text(encoding="utf-8")
        ):
            started = _REPRO_CMD.search(line)
            if started is None:
                continue
            tail = line[started.end():]
            cut = _SHELL_BREAK.search(tail)
            if cut is not None:
                tail = tail[: cut.start()]
            try:
                tokens = shlex.split(tail)
            except ValueError as exc:
                findings.append(
                    Finding(
                        rule="DOC103",
                        severity=Severity.ERROR,
                        path=_rel(doc, repo),
                        line=lineno,
                        message=f"unparseable shell syntax: {exc}",
                    )
                )
                continue
            problem = validate_repro_argv(tokens)
            if problem is not None:
                findings.append(
                    Finding(
                        rule="DOC103",
                        severity=Severity.ERROR,
                        path=_rel(doc, repo),
                        line=lineno,
                        message=f"documented CLI does not parse: {problem}",
                        hint=(
                            "the docs show a command the shipped argparse "
                            "registry rejects; fix the example or the CLI"
                        ),
                    )
                )
    return findings


def check_docs(repo: Path | None = None) -> List[Finding]:
    """All documentation findings for the repository at *repo*."""
    repo = repo if repo is not None else default_repo_root()
    src = repo / "src" / "repro"
    findings: List[Finding] = []
    if src.is_dir():
        findings.extend(missing_docstrings(src, repo))
    findings.extend(broken_links(repo))
    findings.extend(cli_drift(repo))
    return findings


def main(repo: Path | None = None) -> int:
    """Stand-alone runner used by ``tools/check_docs.py``."""
    repo = repo if repo is not None else default_repo_root()
    findings = check_docs(repo)
    for finding in sorted(findings, key=Finding.sort_key):
        print(finding.format())
    if findings:
        print(f"\n{len(findings)} documentation problem(s)")
        return 1
    n_modules = len(
        [
            p
            for p in (repo / "src" / "repro").rglob("*.py")
            if "__pycache__" not in p.parts
        ]
    )
    print(
        f"docs check OK: {n_modules} modules documented, "
        f"{len(doc_files(repo))} markdown files with resolving links"
    )
    return 0
