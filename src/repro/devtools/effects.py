"""Per-function effect summaries over the project call graph.

The SL7 dual-path rules compare what a scalar handler and its burst
counterpart *do to the simulated world*.  This module computes, for
every function in the linted tree, the externally observable effects
reachable from it:

- ``stat:<Class>.<attr path>.<method>`` -- a stats object mutated via
  one of the known mutator methods (``increment``/``add``/``record``/
  ``record_read``/``record_write``/``account``);
- ``event:<name>`` -- a trace event emitted on a ``trace``/``recorder``
  receiver (dynamic names collapse to ``event:<dynamic>``);
- ``reason:<value>`` -- the ``reason=`` keyword of a drop emission;
- cost-model fields charged at an engine-clock site
  (``work``/``charge``/``charge_at``), both fields referenced directly
  (``costs.fifo_pop``) and fields reached *symbolically* through
  cost-model helper methods (``costs.cell_cycles(...)`` expands to the
  fields that method transitively sums in ``nic/costs.py``).

Direct effects are extracted per function; a transitive closure over
:class:`repro.devtools.callgraph.ProjectIndex` edges folds in callee
effects.  Effects are *unions* (there is no kill set), so the closure
of a function is exactly the union of direct effects over its
reachable set -- no fixpoint needed.

Clock and obs-hook receivers are opaque in the call graph (their
internals would double-count: ``work`` replays a pending stall that
the fast path books through ``take_stall``); their semantics live here
instead, at the call site.  Receiver paths with a ``_private``
component are not treated as stats -- sets like ``Resource._holders``
use ``add`` too.

The same walk records every charge site as a :class:`ChargeRecord`,
which the SL204 budget-table cross-check consumes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.devtools.callgraph import (
    CallTarget,
    FunctionInfo,
    ProjectIndex,
    call_target,
    local_alias_env,
    self_attribute_path,
)
from repro.devtools.model import RepoModel
from repro.devtools.rules import string_arg

#: Engine-clock methods that charge cycles.
CHARGE_METHODS = frozenset({"work", "charge", "charge_at"})

#: Methods that mutate a stats/counter object in place.
MUTATOR_METHODS = frozenset(
    {"increment", "add", "account", "record", "record_read", "record_write"}
)

#: Receiver names that carry a TraceRecorder at emission sites.
EMIT_RECEIVERS = frozenset({"trace", "recorder"})

#: Receiver terminal names that carry the engine clock.
CLOCK_RECEIVERS = frozenset({"clock"})

#: Placeholder for event names / reasons that are not string literals.
DYNAMIC = "<dynamic>"


@dataclass
class EffectSummary:
    """The observable-effect sets of one function (or a closure)."""

    stats: Set[str] = field(default_factory=set)
    events: Set[str] = field(default_factory=set)
    reasons: Set[str] = field(default_factory=set)
    costs: Set[str] = field(default_factory=set)

    def update(self, other: "EffectSummary") -> None:
        self.stats |= other.stats
        self.events |= other.events
        self.reasons |= other.reasons
        self.costs |= other.costs


@dataclass
class CostModelInfo:
    """One budget-table class discovered in a ``nic/costs.py`` module."""

    name: str
    module: str
    line: int
    breakdown_line: int
    fields: Set[str] = field(default_factory=set)
    #: method name -> cost fields it transitively sums.
    method_fields: Dict[str, Set[str]] = field(default_factory=dict)
    breakdown_keys: Set[str] = field(default_factory=set)


@dataclass
class ChargeRecord:
    """One engine-clock charge site, for the SL204 cross-check."""

    function: str  #: Function key the site lives in.
    module: str
    line: int
    #: ``(field, owning model name or None when the receiver is untyped)``
    direct: Tuple[Tuple[str, Optional[str]], ...] = ()
    #: model name -> fields reached through symbolic method expansion.
    expanded: Dict[str, Set[str]] = field(default_factory=dict)


def _is_cost_module(module: str) -> bool:
    return module == "nic/costs.py" or module.endswith("/nic/costs.py")


def _collect_cost_models(index: ProjectIndex) -> Dict[str, CostModelInfo]:
    models: Dict[str, CostModelInfo] = {}
    for key, cls in sorted(index.classes.items()):
        if not _is_cost_module(cls.module) or "breakdown" not in cls.methods:
            continue
        fields: Set[str] = set()
        for item in cls.node.body:
            if (
                isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
                and not item.target.id.startswith("_")
            ):
                fields.add(item.target.id)
        if not fields:
            continue
        info = CostModelInfo(
            name=cls.name,
            module=cls.module,
            line=cls.node.lineno,
            breakdown_line=cls.methods["breakdown"].line,
            fields=fields,
        )
        _fill_method_fields(cls_methods=cls.methods, info=info)
        _fill_breakdown_keys(cls.methods["breakdown"].node, info)
        models[cls.name] = info
    return models


def _fill_method_fields(
    cls_methods: Mapping[str, FunctionInfo], info: CostModelInfo
) -> None:
    direct: Dict[str, Set[str]] = {}
    calls: Dict[str, Set[str]] = {}
    for name, method in cls_methods.items():
        refs: Set[str] = set()
        callees: Set[str] = set()
        for node in ast.walk(method.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                if node.attr in info.fields:
                    refs.add(node.attr)
                elif node.attr in cls_methods:
                    callees.add(node.attr)
        direct[name] = refs
        calls[name] = callees
    for name in cls_methods:
        seen: Set[str] = set()
        stack = [name]
        fields: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            fields |= direct.get(current, set())
            stack.extend(calls.get(current, set()) - seen)
        info.method_fields[name] = fields


def _fill_breakdown_keys(node: ast.AST, info: CostModelInfo) -> None:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Dict):
            for key in sub.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    info.breakdown_keys.add(key.value)


class EffectAnalysis:
    """Direct and transitive effect summaries for a linted tree."""

    def __init__(self, index: ProjectIndex, model: RepoModel) -> None:
        self.index = index
        self.cost_models = _collect_cost_models(index)
        self.universe: Set[str] = {
            name for name in model.cost_fields if not name.startswith("_")
        }
        for info in self.cost_models.values():
            self.universe |= info.fields
        self.charge_records: List[ChargeRecord] = []
        self.direct: Dict[str, EffectSummary] = {}
        for key in sorted(index.functions):
            self.direct[key] = self._direct_effects(index.functions[key])
        self._closures: Dict[str, EffectSummary] = {}

    # -- public API ----------------------------------------------------

    def closure(self, key: str) -> EffectSummary:
        """Effects of *key* plus everything it transitively calls."""
        cached = self._closures.get(key)
        if cached is not None:
            return cached
        summary = EffectSummary()
        for reached in self.index.reachable([key]):
            direct = self.direct.get(reached)
            if direct is not None:
                summary.update(direct)
        self._closures[key] = summary
        return summary

    # -- extraction ----------------------------------------------------

    def _direct_effects(self, fn: FunctionInfo) -> EffectSummary:
        summary = EffectSummary()
        env = local_alias_env(fn.node)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = call_target(node.func, env)
            if target is None:
                continue
            if target.method in CHARGE_METHODS and self._is_clock(fn, target):
                self._record_charge(fn, node, target, env, summary)
            elif target.method == "emit" and target.terminal in EMIT_RECEIVERS:
                name = string_arg(node, 0, "name")
                summary.events.add(f"event:{name if name is not None else DYNAMIC}")
                for item in node.keywords:
                    if item.arg == "reason":
                        if isinstance(item.value, ast.Constant) and isinstance(
                            item.value.value, str
                        ):
                            summary.reasons.add(f"reason:{item.value.value}")
                        else:
                            summary.reasons.add(f"reason:{DYNAMIC}")
            elif (
                target.method in MUTATOR_METHODS
                and target.receiver
                and fn.class_name
                and not any(part.startswith("_") for part in target.receiver)
            ):
                path = ".".join(target.receiver)
                summary.stats.add(f"stat:{fn.class_name}.{path}.{target.method}")
        return summary

    def _is_clock(self, fn: FunctionInfo, target: CallTarget) -> bool:
        if target.terminal in CLOCK_RECEIVERS:
            return True
        if target.receiver:
            receiver = self.index.receiver_class(fn, target.receiver)
            if receiver is not None and receiver.name == "EngineClock":
                return True
        return False

    def _record_charge(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        target: CallTarget,
        env: Mapping[str, Tuple[str, ...]],
        summary: EffectSummary,
    ) -> None:
        cycles: Optional[ast.expr] = call.args[0] if call.args else None
        if cycles is None:
            for item in call.keywords:
                if item.arg == "cycles":
                    cycles = item.value
        if cycles is None:
            return
        direct: List[Tuple[str, Optional[str]]] = []
        expanded: Dict[str, Set[str]] = {}
        for node in ast.walk(cycles):
            if isinstance(node, ast.Call):
                inner = call_target(node.func, env)
                if inner is None:
                    continue
                for info in self._models_for(fn, inner):
                    fields = info.method_fields.get(inner.method)
                    if fields:
                        expanded.setdefault(info.name, set()).update(fields)
            elif isinstance(node, ast.Attribute) and node.attr in self.universe:
                owner: Optional[str] = None
                receiver = self_attribute_path(node.value, env)
                if receiver is not None:
                    cls = self.index.receiver_class(fn, receiver)
                    if cls is not None and cls.name in self.cost_models:
                        owner = cls.name
                direct.append((node.attr, owner))
        if not direct and not expanded:
            return
        self.charge_records.append(
            ChargeRecord(
                function=fn.key,
                module=fn.module,
                line=call.lineno,
                direct=tuple(direct),
                expanded=expanded,
            )
        )
        summary.costs.update(name for name, _ in direct)
        for fields in expanded.values():
            summary.costs |= fields

    def _models_for(
        self, fn: FunctionInfo, target: CallTarget
    ) -> List[CostModelInfo]:
        if target.receiver:
            cls = self.index.receiver_class(fn, target.receiver)
            if cls is not None:
                info = self.cost_models.get(cls.name)
                return [info] if info is not None else []
        return [
            info
            for info in self.cost_models.values()
            if target.method in info.method_fields and info.method_fields[target.method]
        ]
