"""Suppression comments: ``# simlint: disable=RULE[,RULE] -- reason``.

Two scopes:

- **line**: a ``# simlint: disable=...`` comment suppresses matching
  findings on its own physical line; a comment-only line additionally
  covers the line directly below it (for statements that do not fit an
  end-of-line comment).
- **file**: ``# simlint: disable-file=RULE[,RULE] -- reason`` anywhere
  in the file suppresses matching findings in the whole file
  (conventionally placed right under the module docstring).

A rule token matches a finding if it equals the finding's id
(``SL101``) or is a family prefix of it (``SL1`` matches every
``SL1xx`` rule).  Everything after ``--`` is the human reason; the
linter does not parse it but the review convention is that every
suppression carries one.  Suppressions that never fire are themselves
reported (rule ``SL001``) so stale ones cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set

_DIRECTIVE = re.compile(
    r"#\s*simlint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass
class Suppression:
    """One parsed directive."""

    line: int  #: line the comment sits on
    scope: str  #: ``"line"`` or ``"file"``
    rules: Set[str] = field(default_factory=set)
    reason: str = ""
    comment_only: bool = False  #: True when nothing but the comment is there
    used: bool = False


def _matches(token: str, rule_id: str) -> bool:
    token = token.upper()
    return rule_id == token or (
        rule_id.startswith(token) and len(token) < len(rule_id)
    )


class SuppressionIndex:
    """All directives in one file, queryable by finding location."""

    def __init__(self, source: str) -> None:
        self.suppressions: List[Suppression] = []
        self._by_line: Dict[int, Suppression] = {}
        self._file_scope: List[Suppression] = []
        self._parse(source)

    def _parse(self, source: str) -> None:
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError):
            return
        code_lines: Set[int] = set()
        comments: List[tokenize.TokenInfo] = []
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append(tok)
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                for lineno in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(lineno)
        for tok in comments:
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            rules = {
                part.strip().upper()
                for part in match.group("rules").split(",")
                if part.strip()
            }
            if not rules:
                continue
            suppression = Suppression(
                line=tok.start[0],
                scope="file" if match.group("scope") == "disable-file" else "line",
                rules=rules,
                reason=(match.group("reason") or "").strip(),
                comment_only=tok.start[0] not in code_lines,
            )
            self.suppressions.append(suppression)
            if suppression.scope == "file":
                self._file_scope.append(suppression)
            else:
                self._by_line[suppression.line] = suppression

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True (and mark the directive used) if a directive covers it."""
        hit = False
        for suppression in self._file_scope:
            if any(_matches(token, rule_id) for token in suppression.rules):
                suppression.used = True
                hit = True
        for candidate_line in (line, line - 1):
            suppression = self._by_line.get(candidate_line)
            if suppression is None:
                continue
            if candidate_line == line - 1 and not suppression.comment_only:
                continue
            if any(_matches(token, rule_id) for token in suppression.rules):
                suppression.used = True
                hit = True
        return hit

    def unused(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.used]
