"""The simlint driver: collect files, run rules, apply suppressions.

:func:`lint_paths` is the programmatic entry point; the CLI in
:mod:`repro.devtools.cli` is a thin argument parser around it.  The
driver parses each module once, hands the tree to every selected
module-scoped rule, then builds a project-wide
:class:`~repro.devtools.callgraph.ProjectIndex` over all parsed trees
and runs the project-scoped rules (the SL7 dual-path family and
SL204) once.  Every finding -- module or project -- is then filtered
through its file's suppression directives, and stale directives are
reported last so a suppression consumed by a project rule is never
also flagged as unused.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.devtools.callgraph import ProjectIndex
from repro.devtools.findings import Finding, Severity
from repro.devtools.model import RepoModel, build_model
from repro.devtools.rules import (
    RULE_REGISTRY,
    ModuleContext,
    ProjectContext,
    register_rule,
)
from repro.devtools.suppress import SuppressionIndex

# Importing a rule module registers its rules; this list is the
# extension point for new families (see docs/STATIC_ANALYSIS.md).
from repro.devtools import (  # noqa: F401  (imported for registration)
    rules_costmodel,
    rules_determinism,
    rules_dualpath,
    rules_hooks,
    rules_parallel,
    rules_simtime,
    rules_taxonomy,
)


@register_rule(
    "SL000",
    "SL0 meta",
    "file does not parse",
    hint="simlint needs a syntactically valid module",
)
def _parse_error_placeholder(ctx: ModuleContext) -> None:
    """Registered for id/severity only; the driver reports SL000 itself."""


@register_rule(
    "SL001",
    "SL0 meta",
    "suppression directive that never fires",
    severity=Severity.WARNING,
    hint="delete the stale '# simlint: disable' comment",
)
def _unused_suppression_placeholder(ctx: ModuleContext) -> None:
    """Registered for id/severity only; the driver reports SL001 itself."""


_META_RULES = {"SL000", "SL001"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressions_used: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _selected_rules(rule_filter: Optional[Iterable[str]]) -> Set[str]:
    if not rule_filter:
        return set(RULE_REGISTRY)
    selected: Set[str] = set()
    for token in rule_filter:
        token = token.strip().upper()
        if not token:
            continue
        for rule_id in RULE_REGISTRY:
            if rule_id == token or (
                rule_id.startswith(token) and len(token) < len(rule_id)
            ):
                selected.add(rule_id)
    return selected | _META_RULES


def _parse_failure(path_relative: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="SL000",
        severity=Severity.ERROR,
        path=path_relative,
        line=exc.lineno or 1,
        message=f"syntax error: {exc.msg}",
        hint=RULE_REGISTRY["SL000"].hint,
    )


def _unused_finding(path_relative: str, line: int, rules: Set[str]) -> Finding:
    return Finding(
        rule="SL001",
        severity=Severity.WARNING,
        path=path_relative,
        line=line,
        message=(
            f"suppression for {', '.join(sorted(rules))} never fired"
        ),
        hint=RULE_REGISTRY["SL001"].hint,
    )


def lint_file(
    path: Path,
    root: Path,
    model: RepoModel,
    selected: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one module with the module-scoped rules only.

    Kept as the single-file API (used by tests and tooling); the
    project-scoped rules need the whole tree and therefore only run
    under :func:`lint_paths`.
    """
    if selected is None:
        selected = set(RULE_REGISTRY)
    relative = _relative_to_root(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [_parse_failure(relative, exc)]

    context = ModuleContext(
        path=relative, tree=tree, source=source, model=model
    )
    for rule_id, rule in RULE_REGISTRY.items():
        if rule_id in _META_RULES or rule_id not in selected:
            continue
        if rule.scope != "module":
            continue
        rule.check(context)

    index = SuppressionIndex(source)
    kept = [
        finding
        for finding in context.findings
        if not index.is_suppressed(finding.rule, finding.line)
    ]
    if "SL001" in selected:
        for suppression in index.unused():
            kept.append(
                _unused_finding(relative, suppression.line, suppression.rules)
            )
    return kept


def lint_paths(
    paths: Sequence[str | Path],
    root: Optional[str | Path] = None,
    rules: Optional[Iterable[str]] = None,
    restrict_to: Optional[Set[Path]] = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*.

    *root* anchors relative paths in findings and path-scoped rules;
    it defaults to the first directory argument (or the first file's
    parent), which is the right thing both for ``src/repro`` and for
    the fixture corpus.

    *restrict_to* (absolute, resolved paths) keeps only findings whose
    file is in the set -- the whole tree is still parsed and analysed,
    because the project-scoped rules need the full call graph, but
    only the named files are reported (``repro lint --changed``).
    """
    resolved = [Path(p) for p in paths]
    if root is None:
        first = resolved[0]
        root_path = first if first.is_dir() else first.parent
    else:
        root_path = Path(root)
    model = build_model(root_path)
    selected = _selected_rules(rules)
    result = LintResult(root=str(root_path))

    raw: List[Finding] = []  #: pre-suppression rule findings
    meta: List[Finding] = []  #: SL000 -- never suppressible
    trees: Dict[str, ast.Module] = {}
    suppressions: Dict[str, SuppressionIndex] = {}
    absolute: Dict[str, Path] = {}

    for path in _collect_files(resolved):
        result.files_scanned += 1
        relative = _relative_to_root(path, root_path)
        absolute[relative] = path.resolve()
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            meta.append(_parse_failure(relative, exc))
            continue
        context = ModuleContext(
            path=relative, tree=tree, source=source, model=model
        )
        for rule_id, rule in RULE_REGISTRY.items():
            if rule_id in _META_RULES or rule_id not in selected:
                continue
            if rule.scope != "module":
                continue
            rule.check(context)
        raw.extend(context.findings)
        trees[relative] = tree
        suppressions[relative] = SuppressionIndex(source)

    project_rules = [
        rule
        for rule in RULE_REGISTRY.values()
        if rule.scope == "project" and rule.id in selected
    ]
    if project_rules and trees:
        project = ProjectContext(index=ProjectIndex.build(trees), model=model)
        for rule in project_rules:
            rule.check(project)
        raw.extend(project.findings)

    kept = list(meta)
    for finding in raw:
        index = suppressions.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule, finding.line):
            result.suppressions_used += 1
            continue
        kept.append(finding)
    if "SL001" in selected:
        for relative in suppressions:
            for suppression in suppressions[relative].unused():
                kept.append(
                    _unused_finding(
                        relative, suppression.line, suppression.rules
                    )
                )

    if restrict_to is not None:
        reported = {
            relative
            for relative, path in absolute.items()
            if path in restrict_to
        }
        kept = [finding for finding in kept if finding.path in reported]

    result.findings = sorted(kept, key=Finding.sort_key)
    return result
