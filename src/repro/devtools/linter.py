"""The simlint driver: collect files, run rules, apply suppressions.

:func:`lint_paths` is the programmatic entry point; the CLI in
:mod:`repro.devtools.cli` is a thin argument parser around it.  The
driver parses each module once, hands the tree to every selected rule,
filters the findings through the file's suppression directives, and
reports stale directives so suppressions cannot outlive the code they
excused.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.devtools.findings import Finding, Severity
from repro.devtools.model import RepoModel, build_model
from repro.devtools.rules import RULE_REGISTRY, ModuleContext, register_rule
from repro.devtools.suppress import SuppressionIndex

# Importing a rule module registers its rules; this list is the
# extension point for new families (see docs/STATIC_ANALYSIS.md).
from repro.devtools import (  # noqa: F401  (imported for registration)
    rules_costmodel,
    rules_determinism,
    rules_hooks,
    rules_parallel,
    rules_simtime,
    rules_taxonomy,
)


@register_rule(
    "SL000",
    "SL0 meta",
    "file does not parse",
    hint="simlint needs a syntactically valid module",
)
def _parse_error_placeholder(ctx: ModuleContext) -> None:
    """Registered for id/severity only; the driver reports SL000 itself."""


@register_rule(
    "SL001",
    "SL0 meta",
    "suppression directive that never fires",
    severity=Severity.WARNING,
    hint="delete the stale '# simlint: disable' comment",
)
def _unused_suppression_placeholder(ctx: ModuleContext) -> None:
    """Registered for id/severity only; the driver reports SL001 itself."""


_META_RULES = {"SL000", "SL001"}


@dataclass
class LintResult:
    """Everything one lint run produced."""

    root: str
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressions_used: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.clean else 1


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                p
                for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
                and not any(part.endswith(".egg-info") for part in p.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
    return files


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _selected_rules(rule_filter: Optional[Iterable[str]]) -> Set[str]:
    if not rule_filter:
        return set(RULE_REGISTRY)
    selected: Set[str] = set()
    for token in rule_filter:
        token = token.strip().upper()
        if not token:
            continue
        for rule_id in RULE_REGISTRY:
            if rule_id == token or (
                rule_id.startswith(token) and len(token) < len(rule_id)
            ):
                selected.add(rule_id)
    return selected | _META_RULES


def lint_file(
    path: Path,
    root: Path,
    model: RepoModel,
    selected: Optional[Set[str]] = None,
) -> List[Finding]:
    """Lint one module; returns post-suppression findings."""
    if selected is None:
        selected = set(RULE_REGISTRY)
    relative = _relative_to_root(path, root)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="SL000",
                severity=Severity.ERROR,
                path=relative,
                line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
                hint=RULE_REGISTRY["SL000"].hint,
            )
        ]

    context = ModuleContext(
        path=relative, tree=tree, source=source, model=model
    )
    for rule_id, rule in RULE_REGISTRY.items():
        if rule_id in _META_RULES or rule_id not in selected:
            continue
        rule.check(context)

    index = SuppressionIndex(source)
    kept = [
        finding
        for finding in context.findings
        if not index.is_suppressed(finding.rule, finding.line)
    ]
    if "SL001" in selected:
        for suppression in index.unused():
            kept.append(
                Finding(
                    rule="SL001",
                    severity=Severity.WARNING,
                    path=relative,
                    line=suppression.line,
                    message=(
                        "suppression for "
                        f"{', '.join(sorted(suppression.rules))} never fired"
                    ),
                    hint=RULE_REGISTRY["SL001"].hint,
                )
            )
    return kept


def lint_paths(
    paths: Sequence[str | Path],
    root: Optional[str | Path] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under *paths*.

    *root* anchors relative paths in findings and path-scoped rules;
    it defaults to the first directory argument (or the first file's
    parent), which is the right thing both for ``src/repro`` and for
    the fixture corpus.
    """
    resolved = [Path(p) for p in paths]
    if root is None:
        first = resolved[0]
        root_path = first if first.is_dir() else first.parent
    else:
        root_path = Path(root)
    model = build_model(root_path)
    selected = _selected_rules(rules)
    result = LintResult(root=str(root_path))
    for path in _collect_files(resolved):
        result.files_scanned += 1
        result.findings.extend(lint_file(path, root_path, model, selected))
    result.findings.sort(key=Finding.sort_key)
    return result
