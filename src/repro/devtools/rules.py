"""Rule protocol, registry, and shared AST helpers.

A rule is a named check over one module's AST.  Rules self-register
into :data:`RULE_REGISTRY` at import time via :func:`register_rule`,
which is also the extension point: a new rule family is a new module
that registers its rules and is imported by
:mod:`repro.devtools.linter` (see docs/STATIC_ANALYSIS.md, "adding a
rule").
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.devtools.findings import Finding, Severity
from repro.devtools.model import RepoModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.devtools.callgraph import ProjectIndex


@dataclass
class ModuleContext:
    """Everything a rule may look at while checking one file."""

    path: str  #: posix path relative to the lint root
    tree: ast.Module
    source: str
    model: RepoModel
    findings: List[Finding] = field(default_factory=list)
    _imports: Optional[Dict[str, str]] = None

    def report(
        self,
        rule_id: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        **data: Any,
    ) -> None:
        rule = RULE_REGISTRY[rule_id]
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                path=self.path,
                line=getattr(node, "lineno", 1),
                message=message,
                hint=hint or rule.hint,
                data=data,
            )
        )

    def in_paths(self, *prefixes: str) -> bool:
        """Is this module under one of the given tree prefixes?"""
        return any(
            self.path.startswith(prefix) or f"/{prefix}" in f"/{self.path}"
            for prefix in prefixes
        )

    # -- import resolution -------------------------------------------------

    @property
    def imports(self) -> Dict[str, str]:
        """Local name -> dotted origin, for every import in the module.

        ``import random as r`` maps ``r -> random``; ``from os import
        urandom`` maps ``urandom -> os.urandom``.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        table[alias.asname or alias.name.split(".")[0]] = (
                            alias.name
                        )
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        table[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
            self._imports = table
        return self._imports

    def resolve_call(self, func: ast.expr) -> str:
        """Dotted path of a call target with import aliases expanded.

        ``r.Random`` (after ``import random as r``) resolves to
        ``random.Random``; unresolvable shapes return ``""``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        origin = self.imports.get(node.id, node.id)
        parts.append(origin)
        return ".".join(reversed(parts))


@dataclass
class ProjectContext:
    """What a project-scoped rule may look at: the whole linted tree.

    Built once per lint run after every module parsed; project rules
    (``scope="project"``) receive it instead of a
    :class:`ModuleContext`.  ``cache`` lets rules of one family share
    expensive analyses (the SL7 rules all need the same effect
    closures) within a single run.
    """

    index: "ProjectIndex"
    model: RepoModel
    findings: List[Finding] = field(default_factory=list)
    cache: Dict[str, Any] = field(default_factory=dict)

    def report(
        self,
        rule_id: str,
        path: str,
        line: int,
        message: str,
        hint: str = "",
        **data: Any,
    ) -> None:
        rule = RULE_REGISTRY[rule_id]
        self.findings.append(
            Finding(
                rule=rule.id,
                severity=rule.severity,
                path=path,
                line=line,
                message=message,
                hint=hint or rule.hint,
                data=data,
            )
        )


#: A check is ``Callable[[ModuleContext], None]`` for module-scoped
#: rules and ``Callable[[ProjectContext], None]`` for project-scoped
#: ones; the registry stores both behind one loose signature.
CheckFunction = Callable[..., None]


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    id: str  #: e.g. ``SL101``
    family: str  #: e.g. ``SL1 determinism``
    title: str
    severity: Severity
    hint: str
    check: CheckFunction
    scope: str = "module"  #: ``"module"`` or ``"project"``


#: id -> rule, in registration order (dicts preserve it).
RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    family: str,
    title: str,
    severity: Severity = Severity.ERROR,
    hint: str = "",
    scope: str = "module",
) -> Callable[[CheckFunction], CheckFunction]:
    """Decorator: register *check* under *rule_id*."""

    def wrap(check: CheckFunction) -> CheckFunction:
        if rule_id in RULE_REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULE_REGISTRY[rule_id] = Rule(
            id=rule_id,
            family=family,
            title=title,
            severity=severity,
            hint=hint,
            check=check,
            scope=scope,
        )
        return check

    return wrap


# ---------------------------------------------------------------------------
# shared AST predicates
# ---------------------------------------------------------------------------


def numeric_literals(node: ast.expr) -> List[ast.Constant]:
    """Non-zero int/float literals anywhere inside an expression.

    Zero is exempt everywhere: charging zero cycles is the idiom for
    "this operation is a hardware assist in this configuration".
    """
    literals = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Constant)
            and isinstance(child.value, (int, float))
            and not isinstance(child.value, bool)
            and child.value != 0
        ):
            literals.append(child)
    return literals


def terminal_attribute(expr: ast.expr) -> str:
    """The last name in ``a.b.c`` / ``c`` shapes, else ``""``."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


def string_arg(call: ast.Call, position: int, keyword: str) -> Optional[str]:
    """A literal string argument by position or keyword, else None."""
    if len(call.args) > position:
        candidate = call.args[position]
        if isinstance(candidate, ast.Constant) and isinstance(
            candidate.value, str
        ):
            return candidate.value
        return None
    for kw in call.keywords:
        if kw.arg == keyword:
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
            return None
    return None
