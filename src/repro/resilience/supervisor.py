"""Per-interface link supervision: evidence in, alarms and state out.

A :class:`LinkSupervisor` guards one interface's *receive* direction.
It runs the I.610 continuity-check machinery of
:mod:`repro.atm.oam` -- a CC heartbeat source toward the peer and a
sliding-window sink on the inbound flow -- and folds every piece of
fault evidence into a four-state machine::

                 loss rate > threshold
        UP  ------------------------------>  DEGRADED
         ^  <------------------------------     |
         |        loss rate recovered           | LOC / alarm
         |                                      v
    RECOVERING  <--------------------------  DOWN
         |        CC resumed / RDI silent    ^  |
         +-----------------------------------+  |
              LOC or alarm during hold ---------+

Evidence sources:

- **local LOC**: the CC sink went silent past its window -- our
  inbound path is dead.  While the condition lasts the supervisor
  repeats RDI cells *upstream* (on the management VC and on every
  protected VC) so the far end learns its transmit path failed, and
  repeats AIS *downstream* through ``downstream_inject`` when this
  interface relays a path (mux/switch deployment).
- **remote alarms**: an RDI (or relayed AIS) arriving on the inbound
  flow marks the VC it rode in on as alarmed and takes the link DOWN.
  The condition clears by *absence*: alarm cells repeat while the
  defect persists, so a silence window on alarm arrivals is the
  all-clear.
- **loss rate / loopback**: :meth:`report_loss_rate` (or the built-in
  probe over a watched :class:`~repro.atm.link.PhysicalLink`) and
  :meth:`note_ping_timeout` degrade the link without taking it down.

Recovery is deliberate: a defect-free ``recovery_hold`` in RECOVERING
is required before the supervisor declares UP, at which point
``on_recovered`` fires with the set of VCs that were alarmed -- the
hook :class:`repro.resilience.restore.CallRestorer` uses to re-place
calls.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Set

from repro.atm.addressing import VcAddress
from repro.atm.oam import (
    AIS,
    RDI,
    AlarmCell,
    ContinuityCell,
    ContinuityCheckSink,
    ContinuityCheckSource,
)

#: Well-known management channel for supervisor heartbeats: VPI 0,
#: VCI 4 -- the conventional end-to-end F4 OAM channel of I.361,
#: inside the reserved VCI range of :mod:`repro.atm.addressing`.
OAM_MGMT_VC = VcAddress(0, 4)


class LinkState(enum.Enum):
    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"
    RECOVERING = "recovering"


@dataclass(frozen=True)
class SupervisorConfig:
    """Timing and thresholds for one supervised interface."""

    cc_period: float = 2e-4  #: heartbeat spacing toward the peer (s)
    cc_silence: float = 7e-4  #: silence before LOC (s); >= 2-3 periods
    alarm_repeat: float = 2e-4  #: RDI/AIS re-send spacing while defect lasts
    alarm_silence: float = 7e-4  #: alarm-free window that clears a remote defect
    recovery_hold: float = 5e-4  #: defect-free RECOVERING time before UP
    degraded_loss_rate: float = 0.05  #: probe loss rate that degrades the link
    probe_period: float = 1e-3  #: loss-rate sampling interval (s)

    def __post_init__(self) -> None:
        for label in ("cc_period", "cc_silence", "alarm_repeat",
                      "alarm_silence", "recovery_hold", "probe_period"):
            if getattr(self, label) <= 0:
                raise ValueError(f"{label} must be positive")


class LinkSupervisor:
    """Fault detection and alarm generation for one interface."""

    def __init__(
        self,
        sim,
        nic,
        config: Optional[SupervisorConfig] = None,
        watch_link=None,
        downstream_inject: Optional[Callable] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.config = config or SupervisorConfig()
        #: Optional PhysicalLink whose loss counters feed the DEGRADED
        #: evidence (typically the *inbound* link of this interface).
        self.watch_link = watch_link
        #: Where AIS goes when this interface relays a path (switch /
        #: mux deployment); endpoints leave it None.
        self.downstream_inject = downstream_inject
        self.name = name or f"{nic.name}.sup"
        source_id = self.name.encode("ascii", "replace")[:12].ljust(12, b"\x00")

        self.state = LinkState.UP
        self.alarmed_vcs: Set[VcAddress] = set()
        self._protected: Set[VcAddress] = set()
        self._local_loc = False
        self._remote_defect = False
        self._last_alarm_at = 0.0
        self._generation = 0
        self._running = False

        # counters (plain ints; read via MetricsRegistry lambdas)
        self.transitions = 0
        self.loc_events = 0
        self.alarms_received = 0
        self.rdi_cells_sent = 0
        self.ais_cells_sent = 0
        self.ping_timeouts_noted = 0

        #: Fired on every transition: ``on_state_change(old, new)``.
        self.on_state_change: Optional[Callable[[LinkState, LinkState], None]] = None
        #: Fired on DOWN->...->UP completion with the frozenset of VCs
        #: that were alarmed during the episode.
        self.on_recovered: Optional[Callable[[FrozenSet[VcAddress]], None]] = None
        #: Fired when a VC first enters the alarmed set.
        self.on_vc_alarm: Optional[Callable[[VcAddress, str], None]] = None
        #: Observability hook (TraceRecorder), duck-typed.
        self.trace = None

        self.cc_source = ContinuityCheckSource(
            sim,
            inject=nic.inject_cell,
            vc=OAM_MGMT_VC,
            period=self.config.cc_period,
            source_id=source_id,
        )
        self.cc_sink = ContinuityCheckSink(
            sim,
            silence=self.config.cc_silence,
            on_loc=self._on_loc,
            on_resume=self._on_cc_resume,
            name=f"{self.name}.ccsink",
        )
        nic.on_cc = self._on_cc_cell
        nic.on_alarm = self._on_alarm_cell
        self._source_id = source_id

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.cc_source.start()
        self.cc_sink.start()
        if self.watch_link is not None:
            self.sim.process(self._loss_probe())

    def stop(self) -> None:
        self._running = False
        self.cc_source.stop()
        self.cc_sink.stop()

    def protect(self, vc: VcAddress) -> None:
        """Register a user VC for per-VC alarm insertion."""
        self._protected.add(vc)

    def unprotect(self, vc: VcAddress) -> None:
        self._protected.discard(vc)
        self.alarmed_vcs.discard(vc)

    # -- evidence ----------------------------------------------------------

    def _on_cc_cell(self, cell: ContinuityCell) -> None:
        self.cc_sink.observe(cell)

    def _on_loc(self, now: float) -> None:
        self.loc_events += 1
        self._emit("oam.cc.loc", silence=self.config.cc_silence)
        if not self._local_loc:
            self._local_loc = True
            self.sim.process(self._alarm_repeater())
        self._reassess()

    def _on_cc_resume(self, now: float) -> None:
        self._emit("oam.cc.resumed")
        self._local_loc = False
        self._reassess()

    def _on_alarm_cell(self, alarm: AlarmCell) -> None:
        self.alarms_received += 1
        self._last_alarm_at = self.sim.now
        newly_defective = not self._remote_defect
        if newly_defective:
            self._remote_defect = True
            self.sim.process(self._alarm_clear_watchdog())
            self._emit("oam.alarm.received", kind=alarm.kind, vc=alarm.vc)
        if alarm.vc != OAM_MGMT_VC and alarm.vc not in self.alarmed_vcs:
            self.alarmed_vcs.add(alarm.vc)
            if self.on_vc_alarm is not None:
                self.on_vc_alarm(alarm.vc, alarm.kind)
        if alarm.kind == AIS:
            # An endpoint receiving AIS answers RDI upstream (I.610).
            self._send_alarm(RDI, alarm.vc)
        self._reassess()

    def report_loss_rate(self, rate: float) -> None:
        """External loss-rate evidence (e.g. from a policing tap)."""
        if self.state is LinkState.UP and rate > self.config.degraded_loss_rate:
            self._enter(LinkState.DEGRADED)
        elif (
            self.state is LinkState.DEGRADED
            and rate <= self.config.degraded_loss_rate
        ):
            self._enter(LinkState.UP)

    def note_ping_timeout(self) -> None:
        """A loopback probe on this path went unanswered."""
        self.ping_timeouts_noted += 1
        if self.state is LinkState.UP:
            self._enter(LinkState.DEGRADED)

    def _loss_probe(self):
        prev_sent = self.watch_link.cells_sent.count
        prev_lost = self.watch_link.cells_lost.count
        while self._running:
            yield self.sim.timeout(self.config.probe_period)
            sent = self.watch_link.cells_sent.count
            lost = self.watch_link.cells_lost.count
            delta_sent = sent - prev_sent
            delta_lost = lost - prev_lost
            prev_sent, prev_lost = sent, lost
            if delta_sent > 0:
                self.report_loss_rate(delta_lost / delta_sent)

    # -- alarm generation ---------------------------------------------------

    def _alarm_repeater(self):
        """While the local LOC lasts: RDI upstream, AIS downstream."""
        self._emit("oam.alarm.raised", kind=RDI, vc=OAM_MGMT_VC)
        while self._local_loc and self._running:
            self._send_alarm(RDI, OAM_MGMT_VC)
            for vc in sorted(self._protected):
                self._send_alarm(RDI, vc)
                if self.downstream_inject is not None:
                    self._send_alarm(AIS, vc, inject=self.downstream_inject)
            yield self.sim.timeout(self.config.alarm_repeat)

    def _send_alarm(self, kind: str, vc: VcAddress, inject=None) -> None:
        cell = AlarmCell(vc=vc, kind=kind, source_id=self._source_id).encode()
        if kind == RDI:
            self.rdi_cells_sent += 1
        else:
            self.ais_cells_sent += 1
        (inject or self.nic.inject_cell)(cell)

    def _alarm_clear_watchdog(self):
        """Remote defects clear by absence of alarm cells."""
        while self._remote_defect and self._running:
            deadline = self._last_alarm_at + self.config.alarm_silence
            if self.sim.now >= deadline:
                self._remote_defect = False
                self._reassess()
                return
            yield self.sim.timeout(deadline - self.sim.now)

    # -- state machine ------------------------------------------------------

    def _reassess(self) -> None:
        defect = self._local_loc or self._remote_defect
        if defect:
            self._generation += 1  # cancel any pending hold
            if self.state is not LinkState.DOWN:
                self._enter(LinkState.DOWN)
        elif self.state is LinkState.DOWN:
            self._enter(LinkState.RECOVERING)
            self._generation += 1
            self.sim.process(self._hold(self._generation))

    def _hold(self, generation: int):
        yield self.sim.timeout(self.config.recovery_hold)
        if generation != self._generation or self.state is not LinkState.RECOVERING:
            return
        alarmed = frozenset(self.alarmed_vcs)
        self.alarmed_vcs.clear()
        self._enter(LinkState.UP)
        self._emit("oam.alarm.cleared", vcs=len(alarmed))
        if self.on_recovered is not None:
            self.on_recovered(alarmed)

    def _enter(self, state: LinkState) -> None:
        old, self.state = self.state, state
        self.transitions += 1
        self._emit(
            "link.supervisor.state",
            from_state=old.value,
            to_state=state.value,
        )
        if self.on_state_change is not None:
            self.on_state_change(old, state)

    def _emit(self, name: str, **args) -> None:
        if self.trace is not None:
            self.trace.emit(name, actor=self.name, **args)
