"""The recovery subsystem: fault detection, alarms, and restoration.

Closes the loop the fault-injection layer (:mod:`repro.faults`) opens:
an injected outage is *detected* by continuity-check supervision
(:mod:`repro.resilience.supervisor`), *signalled* with I.610 AIS/RDI
alarm cells (:mod:`repro.atm.oam`), and *healed* by retransmission
timers plus automatic call re-establishment
(:mod:`repro.resilience.restore`).  The R2 experiment
(:mod:`repro.resilience.experiment`) measures the difference that
machinery makes under a seeded link flap.
"""

from repro.resilience.restore import CallRestorer
from repro.resilience.supervisor import (
    LinkState,
    LinkSupervisor,
    OAM_MGMT_VC,
    SupervisorConfig,
)

__all__ = [
    "CallRestorer",
    "LinkState",
    "LinkSupervisor",
    "OAM_MGMT_VC",
    "SupervisorConfig",
]
