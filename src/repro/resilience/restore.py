"""Automatic call re-establishment after a link recovers.

A :class:`CallRestorer` bridges the two halves of the recovery plane:
the :class:`~repro.resilience.supervisor.LinkSupervisor` (which knows
*when* the path is usable again and *which* VCs were alarmed) and the
:class:`~repro.atm.signalling.SignallingAgent` (which can place
calls).  Track each caller-side call with :meth:`track`; when the
supervisor completes a DOWN -> RECOVERING -> UP episode the restorer:

- re-places every tracked call that *failed terminally* during the
  outage (SETUP retry budget exhausted -> ``CallState.FAILED``);
- releases and re-places every tracked call that is still ACTIVE but
  whose VC was alarmed (the data path may have lost reassembly state
  mid-frame, so a fresh VC is the clean restart).

Replacement calls are tracked in turn, so repeated flaps keep being
healed.  ``on_restored(old_call, new_call)`` lets the workload move
its traffic onto the replacement.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

from repro.atm.addressing import VcAddress
from repro.atm.signalling import Call, CallState


class CallRestorer:
    """Re-places tracked calls when the supervisor returns to UP."""

    def __init__(
        self,
        sim,
        agent,
        supervisor,
        on_restored: Optional[Callable[[Call, Call], None]] = None,
    ) -> None:
        self.sim = sim
        self.agent = agent
        self.supervisor = supervisor
        self.on_restored = on_restored
        self.calls_restored = 0
        self._tracked: List[Call] = []

        previous = supervisor.on_recovered

        def chained(alarmed: FrozenSet[VcAddress]) -> None:
            if previous is not None:
                previous(alarmed)
            self.restore(alarmed)

        supervisor.on_recovered = chained

    def track(self, call: Call) -> Call:
        """Watch a caller-side call; returns it for chaining."""
        if not call.is_caller:
            raise ValueError("restorer tracks caller-side calls only")
        self._tracked.append(call)
        return call

    @property
    def tracked(self) -> List[Call]:
        return list(self._tracked)

    def restore(self, alarmed: FrozenSet[VcAddress] = frozenset()) -> None:
        """Heal every tracked call the outage broke."""
        for index, call in enumerate(list(self._tracked)):
            if call.state is CallState.FAILED:
                self._replace(index, call)
            elif (
                call.state is CallState.ACTIVE
                and call.address is not None
                and call.address in alarmed
            ):
                self.sim.process(self._release_then_replace(index, call))

    def _replace(self, index: int, old: Call) -> Call:
        replacement = self.agent.reestablish(old)
        self._tracked[index] = replacement
        self.calls_restored += 1
        if self.on_restored is not None:
            self.on_restored(old, replacement)
        return replacement

    def _release_then_replace(self, index: int, old: Call):
        yield self.agent.release_call(old)
        # The supervisor may have gone DOWN again while we waited.
        if self._tracked[index] is old:
            self._replace(index, old)
