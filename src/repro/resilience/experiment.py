"""R2: goodput across a link flap, recovery plane on vs off.

The scenario: two interfaces joined by a point-to-point link pair, a
signalling agent on each end, and a population of calls placing
traffic -- some before and some *during* a deterministic full outage
of the forward link (a :class:`~repro.faults.plan.LinkFlapPlan`-style
``ScheduledLoss`` window).  Both arms of each point share the seed:

- **recovery off**: the seed repo's behaviour.  Calls placed during
  the flap lose their SETUP and hang in CALL_INITIATED forever; their
  goodput never materialises.
- **recovery on**: SETUP/RELEASE retransmission timers
  (:class:`~repro.atm.signalling.SignallingTimers`), a
  :class:`~repro.resilience.supervisor.LinkSupervisor` per interface
  running CC heartbeats and RDI alarms, and a
  :class:`~repro.resilience.restore.CallRestorer` that re-places
  failed and alarmed calls once the supervisor returns to UP.

The headline metric is the recovery *gain*: on-arm minus off-arm
goodput over the whole run, which the acceptance gate requires to be
strictly positive at every seed.  The kernel also audits the two
invariants the recovery plane must not break: every call ends in
ACTIVE or a terminal state (on-arm), and the
:class:`~repro.faults.audit.CellConservationAuditor` ledger still
balances with CC/alarm cells itemised in its ``oam_cells`` bucket.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.atm.addressing import VcAddress
from repro.atm.errors import ScheduledLoss, UniformLoss
from repro.atm.signalling import (
    CallRefused,
    CallState,
    SignallingAgent,
    SignallingTimers,
)
from repro.faults.audit import CellConservationAuditor
from repro.net import Testbed
from repro.nic.config import aurora_oc3
from repro.resilience.restore import CallRestorer
from repro.resilience.supervisor import LinkSupervisor, SupervisorConfig
from repro.runner import ResultStore, RunLog, SweepSpec, run_sweep
from repro.sim.core import Simulator
from repro.sim.random import RandomStreams

#: R2's retry policy: tight enough that a call placed mid-flap exhausts
#: its budget *during* the outage, handing the baton to the restorer.
R2_TIMERS = SignallingTimers(
    t303=5e-4, t308=5e-4, backoff=2.0, cap=2e-3, max_retries=2, jitter=0.1
)

R2_SUPERVISION = SupervisorConfig(
    cc_period=2e-4,
    cc_silence=7e-4,
    alarm_repeat=2e-4,
    alarm_silence=7e-4,
    recovery_hold=5e-4,
)


def _call_start_times(n_calls: int, flap_start: float, flap_down: float):
    """Half the calls start pre-flap, the rest inside the outage."""
    before = [(i + 1) * 4e-4 for i in range((n_calls + 1) // 2)]
    during = [
        flap_start + min((i + 1) * 4e-4, flap_down / 2)
        for i in range(n_calls // 2)
    ]
    return before + during


def _flap_run(
    seed: int,
    recovery: bool,
    duration: float,
    flap_start: float,
    flap_down: float,
    n_calls: int,
    sdu_size: int,
    send_gap: float,
) -> Dict[str, float]:
    """One arm of an R2 point; returns its scalar observables."""
    sim = Simulator()
    streams = RandomStreams(seed)
    cfg = aurora_oc3()
    flap = ScheduledLoss(
        UniformLoss(1.0, rng=streams.stream("r2.flap")),
        start=flap_start,
        stop=flap_start + flap_down,
    )
    tb = Testbed(default_config=cfg)
    tb.add_host("a").add_host("b")
    tb.connect("a", "b", loss_ab=flap)
    net = tb.build(sim)
    a, b = net.hosts["a"], net.hosts["b"]
    link_ab = net.links["a->b"]
    auditor = CellConservationAuditor(link_ab, b)

    sig_b = SignallingAgent(sim, b, streams=streams, timers=R2_TIMERS if recovery else None)
    sig_a = SignallingAgent(sim, a, streams=streams, timers=R2_TIMERS if recovery else None)

    received: list = []
    sig_b.on_user_pdu = received.append

    restorer: Optional[CallRestorer] = None
    sup_a = sup_b = None
    if recovery:
        sup_a = LinkSupervisor(sim, a, config=R2_SUPERVISION)
        sup_b = LinkSupervisor(sim, b, config=R2_SUPERVISION)
        sig_a.on_call_active = lambda call: sup_a.protect(call.address)
        sig_b.on_call_active = lambda call: sup_b.protect(call.address)
        sup_a.start()
        sup_b.start()
        restorer = CallRestorer(sim, sig_a, sup_a, on_restored=None)

    payload = bytes(sdu_size)
    connected_calls: list = []

    def pump(call):
        try:
            address = yield call.connected
        except CallRefused:
            return
        connected_calls.append(address)
        while sim.now < duration and call.state is CallState.ACTIVE:
            yield a.send(address, payload)
            yield sim.timeout(send_gap)

    if restorer is not None:
        restorer.on_restored = lambda old, new: sim.process(pump(new))

    def place(start_at: float):
        yield sim.timeout(start_at)
        call = sig_a.place_call()
        if restorer is not None:
            restorer.track(call)
        sim.process(pump(call))

    for start_at in _call_start_times(n_calls, flap_start, flap_down):
        sim.process(place(start_at))

    sim.run(until=duration)
    flap_end = flap_start + flap_down

    def window_mbps(t0: float, t1: float) -> float:
        total = sum(c.size for c in received if t0 <= c.received_at < t1)
        return total * 8 / (t1 - t0) / 1e6

    goodput = sum(c.size for c in received) * 8 / duration / 1e6
    pre = window_mbps(0.0, flap_start)
    during = window_mbps(flap_start, flap_end)
    post = window_mbps(flap_end, duration)

    # Drain: retire the heartbeats, then let any retry chain still
    # running reach its terminal state before auditing.  Conservation
    # does not need the (500 ms) reassembly timers: contexts the flap
    # left open are itemised in the ledger's reassembly_open bucket.
    if sup_a is not None:
        sup_a.stop()
        sup_b.stop()
    drain = R2_TIMERS.worst_case_total() + 2e-3
    sim.run(until=duration + drain)
    ledger = auditor.snapshot()
    stuck = len(sig_a.unresolved_calls) + len(sig_b.unresolved_calls)

    return {
        "goodput_mbps": goodput,
        "pre_flap_mbps": pre,
        "during_flap_mbps": during,
        "post_flap_mbps": post,
        "calls_connected": float(len(connected_calls)),
        "calls_restored": float(restorer.calls_restored if restorer else 0),
        "stuck_calls": float(stuck),
        "conserved": 1.0 if ledger.is_conserved else 0.0,
        "unaccounted_cells": float(ledger.unaccounted),
        "oam_cells": float(ledger.oam_cells),
    }


def _r2_point(params: Dict[str, Any], streams: RandomStreams) -> Dict[str, float]:
    """R2 kernel: one seed, both arms.

    The sweep framework hands us per-point streams, but both arms must
    see the *same* flap window and jitter draws, so the kernel derives
    everything from the explicit ``seed`` axis instead (common random
    numbers across the recovery on/off comparison).
    """
    del streams
    common = dict(
        duration=params["duration"],
        flap_start=params["flap_start"],
        flap_down=params["flap_down"],
        n_calls=params["n_calls"],
        sdu_size=params["sdu_size"],
        send_gap=params["send_gap"],
    )
    on = _flap_run(params["seed"], True, **common)
    off = _flap_run(params["seed"], False, **common)
    point = {}
    for key, value in on.items():
        point[f"on_{key}"] = value
    for key, value in off.items():
        point[f"off_{key}"] = value
    point["recovery_gain_mbps"] = on["goodput_mbps"] - off["goodput_mbps"]
    point["post_flap_gain_mbps"] = on["post_flap_mbps"] - off["post_flap_mbps"]
    return point


def run_r2(
    config=None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    duration: float = 0.02,
    flap_start: float = 0.006,
    flap_down: float = 0.005,
    n_calls: int = 4,
    sdu_size: int = 4096,
    send_gap: float = 1.5e-3,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
):
    """R2: goodput timeline across a link-flap campaign, recovery on vs off.

    Each seed runs the same flapped scenario twice -- with and without
    the fault-management plane -- and reports whole-run and per-window
    goodput plus the recovery invariants.  See ``docs/RESILIENCE.md``.
    Sweep points build their configs from JSON parameters, so *config*
    (like *fast_path*) is accepted only for the uniform contract.
    """
    del config, fast_path
    seeds = tuple(seeds) if seeds is not None else (1, 2, 3)
    from repro.results.experiments import ExperimentResult

    spec = SweepSpec.grid(
        "R2",
        axes={"seed": list(seeds)},
        fixed={
            "duration": duration,
            "flap_start": flap_start,
            "flap_down": flap_down,
            "n_calls": n_calls,
            "sdu_size": sdu_size,
            "send_gap": send_gap,
        },
        x_axis="seed",
    )
    sweep_run = run_sweep(spec, _r2_point, workers=workers, store=store, log=log)
    series = sweep_run.series(name="goodput across a link flap", x_label="seed")
    result = ExperimentResult(
        experiment_id="R2",
        title="Link-flap recovery: goodput with the fault-management "
        "plane on vs off (aurora OC-3)",
        series=series,
    )
    gains = series.column("recovery_gain_mbps")
    on_col = series.column("on_goodput_mbps")
    off_col = series.column("off_goodput_mbps")
    result.metrics["mean_recovery_gain_mbps"] = sum(gains) / len(gains)
    result.metrics["min_recovery_gain_mbps"] = min(gains)
    result.metrics["mean_on_goodput_mbps"] = sum(on_col) / len(on_col)
    result.metrics["mean_off_goodput_mbps"] = sum(off_col) / len(off_col)
    result.metrics["stuck_calls_on"] = sum(series.column("on_stuck_calls"))
    result.metrics["calls_restored_total"] = sum(series.column("on_calls_restored"))
    result.metrics["all_conserved"] = min(
        min(series.column("on_conserved")), min(series.column("off_conserved"))
    )
    result.notes.append(
        "without timers a SETUP lost to the flap hangs its call forever; "
        "with the recovery plane the supervisor detects the outage via CC "
        "silence, RDI tells the caller, and the restorer re-places every "
        "failed or alarmed call once the link holds UP"
    )
    return result
