"""Call admission control: SETUPs bid against per-link contract budgets.

A network that polices (GCRA at the UNI) but never says *no* at call
time just moves congestion from the queues to the policer.  CAC closes
the control plane's half of the traffic contract: each SETUP's traffic
descriptor is booked against every link on its path, and the call is
refused -- with a reason code -- when the books would overflow.

Budgets are kept in GCRA terms: an admitted call books its peak cell
rate (the ``1/T`` of the peak-rate GCRA the UPC enforces) against the
link's peak budget, and a derived sustainable rate against the
sustained budget.  The era's signalling message (and ours, see
:mod:`repro.atm.signalling`) carries only the peak rate, so the
sustainable rate is derived via a configured *burstiness* factor --
a documented simplification over carrying a full SCR/MBS descriptor
(docs/TRAFFIC.md).

Wiring: :meth:`CallAdmissionController.guard` installs the controller
onto a :class:`~repro.atm.signalling.SignallingAgent` -- it composes
with any existing ``on_setup`` policy and books release through the
agent's ``on_call_released`` hook, so budgets drain when calls clear
(graceful RELEASE or timer-forced teardown alike).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.atm.cell import CELL_SIZE
from repro.sim.monitor import Counter


class CacReject(enum.Enum):
    """Why a SETUP was refused."""

    PEAK_OVERCOMMIT = "peak_overcommit"
    SUSTAINED_OVERCOMMIT = "sustained_overcommit"


class _LinkBudget:
    __slots__ = ("link", "peak_capacity", "sustained_capacity",
                 "booked_peak", "booked_sustained")

    def __init__(self, link, peak_capacity: float, sustained_capacity: float):
        self.link = link
        self.peak_capacity = peak_capacity
        self.sustained_capacity = sustained_capacity
        self.booked_peak = 0.0
        self.booked_sustained = 0.0


class CallAdmissionController:
    """Books SETUP traffic descriptors against a path of link budgets."""

    def __init__(
        self,
        sim,
        sustained_fraction: float = 0.5,
        name: str = "cac",
    ) -> None:
        if not 0 < sustained_fraction <= 1:
            raise ValueError("sustained fraction must sit in (0, 1]")
        self.sim = sim
        self.sustained_fraction = sustained_fraction
        self.name = name
        self._budgets: List[_LinkBudget] = []
        self._booked: Dict[int, Tuple[float, float]] = {}
        self.calls_admitted = Counter(f"{name}.admitted")
        self.calls_rejected = Counter(f"{name}.rejected")
        #: Rejection tally itemised by :class:`CacReject` value.
        self.rejections: Dict[str, int] = {}
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def add_link(
        self,
        link,
        peak_budget: Optional[float] = None,
        sustained_budget: Optional[float] = None,
    ) -> None:
        """Put *link* under admission control.

        Budgets are in cells per second; both default to the link's
        cell rate (peak-rate allocation with no overbooking).
        """
        capacity = link.spec.cell_rate
        self._budgets.append(
            _LinkBudget(
                link,
                capacity if peak_budget is None else peak_budget,
                capacity if sustained_budget is None else sustained_budget,
            )
        )

    @property
    def booked_peak(self) -> float:
        """Peak cells/s currently booked on the tightest link."""
        if not self._budgets:
            return 0.0
        return max(budget.booked_peak for budget in self._budgets)

    def headroom(self) -> float:
        """Peak cells/s still admittable across every controlled link."""
        if not self._budgets:
            return float("inf")
        return min(
            budget.peak_capacity - budget.booked_peak
            for budget in self._budgets
        )

    # -- the admission decision ---------------------------------------------------

    def admit(self, message) -> bool:
        """``SignallingAgent.on_setup`` hook: True admits the call."""
        peak = message.peak_rate_bps / (CELL_SIZE * 8)
        sustained = peak * self.sustained_fraction
        for budget in self._budgets:
            if budget.booked_peak + peak > budget.peak_capacity:
                return self._reject(message, CacReject.PEAK_OVERCOMMIT)
            if (
                budget.booked_sustained + sustained
                > budget.sustained_capacity
            ):
                return self._reject(message, CacReject.SUSTAINED_OVERCOMMIT)
        for budget in self._budgets:
            budget.booked_peak += peak
            budget.booked_sustained += sustained
        self._booked[message.call_ref] = (peak, sustained)
        self.calls_admitted.increment()
        if self.trace is not None:
            self.trace.emit(
                "cac.admit",
                actor=self.name,
                call_ref=message.call_ref,
                peak_cells=peak,
            )
        return True

    def _reject(self, message, reason: CacReject) -> bool:
        self.calls_rejected.increment()
        self.rejections[reason.value] = self.rejections.get(reason.value, 0) + 1
        if self.trace is not None:
            self.trace.emit(
                "cac.reject",
                actor=self.name,
                call_ref=message.call_ref,
                cause=reason.value,
            )
        return False

    def release(self, call) -> None:
        """``SignallingAgent.on_call_released`` hook: drain the books."""
        booked = self._booked.pop(call.call_ref, None)
        if booked is None:
            return
        peak, sustained = booked
        for budget in self._budgets:
            budget.booked_peak = max(0.0, budget.booked_peak - peak)
            budget.booked_sustained = max(
                0.0, budget.booked_sustained - sustained
            )

    # -- wiring -------------------------------------------------------------------

    def guard(self, agent) -> None:
        """Install onto *agent*, composing with its existing policy."""
        existing = agent.on_setup

        def on_setup(message) -> bool:
            if existing is not None and not existing(message):
                return False
            return self.admit(message)

        agent.on_setup = on_setup
        agent.on_call_released = self.release
