"""ERICA-style explicit-rate allocation at switch output ports.

The Explicit Rate Indication for Congestion Avoidance algorithm (Jain
et al.) runs at each contended output port.  Per measurement interval
it tracks the port's input cell rate and the set of VCs seen; from
those it computes, for each forward RM cell in transit:

- ``target = target_utilization * link cell rate``
- ``z = measured input rate / target`` (the overload factor)
- ``fair share = target * w_vc / sum(w_active)`` (weighted)
- ``er_local = max(fair share, CCR / z)``

and stamps ``ER = min(ER, er_local)`` into the cell.  The ``CCR / z``
term is what drives utilization to the target: while the port is
underloaded (z < 1) every source is offered more than its current
rate, and overloaded sources are scaled back in one round trip.
Weighted fair shares extend stock ERICA (which splits the target
evenly); with every source greedy the weights alone set the
allocation, which is what experiment C1 demonstrates.

The allocator attaches to an :class:`~repro.atm.switch.AtmSwitch`
through the duck-typed ``switch.tm`` hook: the switch hands it every
transiting cell *after* header translation together with the resolved
output port, and forwards whatever cell the allocator returns.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.sim.monitor import Counter
from repro.tm.rm import RmCell, RmFormatError, is_rm_cell


class _PortLoad:
    """One output port's rolling measurement window."""

    __slots__ = (
        "window_end",
        "cells_in",
        "active",
        "measured_rate",
        "measured_active",
    )

    def __init__(self, window_end: float) -> None:
        self.window_end = window_end
        self.cells_in = 0
        self.active: Set[VcAddress] = set()
        #: Input rate over the last *completed* window (cells/s), or
        #: None before the first window closes.
        self.measured_rate: Optional[float] = None
        self.measured_active: Set[VcAddress] = set()


class EricaAllocator:
    """Per-port explicit-rate computation for one switch."""

    def __init__(
        self,
        sim,
        switch,
        target_utilization: float = 0.95,
        interval: float = 1e-3,
        weight_of: Optional[Callable[[VcAddress], Optional[int]]] = None,
        name: str = "",
    ) -> None:
        if not 0 < target_utilization <= 1:
            raise ValueError("target utilization must sit in (0, 1]")
        if interval <= 0:
            raise ValueError("measurement interval must be positive")
        self.sim = sim
        self.switch = switch
        self.target_utilization = target_utilization
        self.interval = interval
        self.weight_of = weight_of
        self.name = name or f"{switch.name}.erica"
        self._loads: Dict[int, _PortLoad] = {}
        self.rm_seen = Counter(f"{self.name}.rm-seen")
        self.rm_stamped = Counter(f"{self.name}.rm-stamped")
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None
        switch.tm = self

    def _weight(self, vc: VcAddress) -> float:
        if self.weight_of is None:
            return 1.0
        weight = self.weight_of(vc)
        return 1.0 if weight is None or weight <= 0 else float(weight)

    def _load_of(self, port) -> _PortLoad:
        load = self._loads.get(id(port))
        if load is None:
            load = _PortLoad(self.sim.now + self.interval)
            self._loads[id(port)] = load
        return load

    def _roll_window(self, load: _PortLoad) -> None:
        now = self.sim.now
        if now < load.window_end:
            return
        elapsed = self.interval + (now - load.window_end)
        load.measured_rate = load.cells_in / elapsed
        load.measured_active = load.active
        load.cells_in = 0
        load.active = set()
        load.window_end = now + self.interval

    def on_cell(self, port, cell: AtmCell) -> AtmCell:
        """Switch hook: account the cell, stamp ER into forward RM cells."""
        load = self._load_of(port)
        self._roll_window(load)
        load.cells_in += 1
        vc = VcAddress(cell.vpi, cell.vci)
        load.active.add(vc)
        if not is_rm_cell(cell):
            return cell
        try:
            rm = RmCell.decode(cell)
        except RmFormatError:
            return cell
        self.rm_seen.increment()
        if not rm.forward:
            return cell

        target = self.target_utilization * port.link.spec.cell_rate
        contenders = load.measured_active or load.active
        total_weight = sum(self._weight(member) for member in contenders)
        fair_share = target * self._weight(vc) / max(total_weight, 1.0)
        if load.measured_rate is None:
            # No completed window yet: offer the fair share only, so
            # startup cannot overshoot before the first measurement.
            er_local = fair_share
        else:
            z = max(load.measured_rate / target, 1e-9)
            er_local = max(fair_share, rm.ccr / z)
        if er_local >= rm.er:
            return cell
        stamped = rm.with_er(er_local).encode()
        stamped.meta.update(cell.meta)
        self.rm_stamped.increment()
        if self.trace is not None:
            self.trace.emit(
                "rm.cell.marked",
                actor=self.name,
                cell=stamped,
                er=er_local,
            )
        return stamped
