"""C1: closed-loop ABR vs open-loop flooding at a 2-switch bottleneck.

N greedy sources, one destination, and a shared bottleneck::

    s0 --access--\\
    s1 --access---> sw1 ==bottleneck port==> mid ==> sw2 --> dest
    s2 --access--/                                    ^
                         dest --return RM---> sw2 ----+--> s0/s1/s2

Every source floods as fast as its interface allows.  The two arms of
each point share the seed (common random numbers):

- **closed loop (on)**: every source VC runs ABR -- dynamic ACR pacing
  with RM cells every Nrm data cells, an ERICA allocator on the
  bottleneck switch stamping weighted-fair explicit rates, EFCI
  marking above a queue threshold, and the destination turning RM
  cells around through switch 2 back to the sources.  Source *i*
  carries weight ``i + 1``, so the converged rates -- and hence the
  delivered goodput split -- must follow a 1:2:...:N ratio.
- **open loop (off)**: the same topology and sources with no rate
  control.  The access links outrun the bottleneck, the port buffer
  fills, tail drops shred most AAL5 frames, and goodput collapses --
  the congestion-collapse baseline the control loop is measured
  against.

Headline gates (frozen in ``benchmarks/baselines/C1.json``): bottleneck
utilization >= 0.9 with the loop closed, per-VC goodput within 10% of
the weighted-fair split, a bounded bottleneck queue, and closed-loop
goodput strictly above open-loop at every seed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.atm.addressing import VcAddress
from repro.net import Testbed
from repro.nic.config import aurora_oc3
from repro.runner import ResultStore, RunLog, SweepSpec, run_sweep
from repro.sim.core import SimConfig, Simulator
from repro.sim.random import RandomStreams
from repro.tm.abr import AbrAgent, AbrParams
from repro.tm.erica import EricaAllocator
from repro.workloads.generators import GreedySource

#: ERICA aims the bottleneck here; the utilization gate sits below it.
C1_TARGET_UTILIZATION = 0.95


def _bottleneck_run(
    seed: int,
    closed_loop: bool,
    duration: float,
    warmup: float,
    n_sources: int,
    buffer_cells: int,
    efci_threshold: int,
    sdu_size: int,
    fast_path: bool = False,
) -> Dict[str, float]:
    """One arm of a C1 point; returns its scalar observables."""
    sim = Simulator(SimConfig(fast_path=fast_path))
    streams = RandomStreams(seed)
    cfg = aurora_oc3()
    spec = cfg.link
    weights = {VcAddress(0, 32 + i): i + 1 for i in range(n_sources)}
    vcs = sorted(weights, key=lambda vc: vc.vci)

    tb = Testbed(default_config=cfg)
    for i in range(n_sources):
        tb.add_host(f"s{i}")
    tb.add_host("d")
    tb.add_switch("sw1").add_switch("sw2")
    tb.link(
        "sw1",
        "sw2",
        buffer_cells=buffer_cells,
        efci_threshold=efci_threshold if closed_loop else None,
        port_name="bottleneck",
    )
    tb.link("sw2", "d", port_name="p-egress")
    for i in range(n_sources):
        tb.link("sw2", f"s{i}", port_name=f"p-ret{i}")
    for i in range(n_sources):
        tb.link(f"s{i}", "sw1")
    tb.link("d", "sw2")
    for i, vc in enumerate(vcs):
        if closed_loop:
            # No static contract: the ABR agent owns the pacing rate.
            peak = None
        else:
            # Open loop, era-style: every VC shaped to a static
            # contract peak, with the contracts overbooking the
            # bottleneck by ~1.7x and no feedback to say stop.  The
            # slightly unequal peaks keep the three CBR streams from
            # phase-locking into a single winner at the drop-tail
            # merge, so the losses hole every source's frames.
            peak = spec.payload_rate_bps * 0.55 * (1.0 + 0.02 * i)
        # Forward data+RM: source i -> bottleneck -> egress -> dest;
        # backward RM: dest -> switch 2 -> source i.
        tb.vc(vc, [f"s{i}", "sw1", "sw2", "d"], peak_rate_bps=peak)
        tb.route(vc, ["d", "sw2", f"s{i}"])
    net = tb.build(sim)
    sources = [net.hosts[f"s{i}"] for i in range(n_sources)]
    dest = net.hosts["d"]
    mid = net.links["sw1->sw2"]
    bottleneck = net.ports["bottleneck"]

    if closed_loop:
        EricaAllocator(
            sim,
            net.switches["sw1"],
            target_utilization=C1_TARGET_UTILIZATION,
            weight_of=weights.get,
        )
        AbrAgent(sim, dest)  # turnaround side
        params = AbrParams(
            pcr=spec.cell_rate,
            icr=spec.cell_rate / 16.0,
            rif=1.0 / 32.0,
            rdf=1.0 / 16.0,
        )
        for i, vc in enumerate(vcs):
            agent = AbrAgent(sim, sources[i])
            agent.add_vc(vc, params)

    completions: list = []
    dest.on_pdu = lambda c: completions.append((sim.now, c.vc, c.size))

    start_rng = streams.stream("c1.start")
    for i, vc in enumerate(vcs):
        source = GreedySource(
            sim, sources[i], vc, sdu_size, name=f"greedy{i}"
        )
        # Seed-jittered start times decorrelate the startup transient
        # across the sweep (the arms of one point share the draws).
        sim.schedule_call(start_rng.uniform(0.0, 2e-3), source.start)
    dest.start()

    snap: Dict[str, Any] = {}

    def take_snapshot() -> None:
        snap["mid_cells"] = mid.cells_sent.count
        snap["delivered"] = {
            vc: sum(size for _, c_vc, size in completions if c_vc == vc)
            for vc in vcs
        }

    sim.schedule_call(warmup, take_snapshot)
    sim.run(until=duration)

    window = duration - warmup
    utilization = (mid.cells_sent.count - snap["mid_cells"]) / (
        window * spec.cell_rate
    )
    delivered = {
        vc: sum(size for _, c_vc, size in completions if c_vc == vc)
        - snap["delivered"][vc]
        for vc in vcs
    }
    total_bytes = sum(delivered.values())
    total_weight = sum(weights.values())
    fair_dev = 0.0
    if total_bytes:
        for vc in vcs:
            ideal = weights[vc] / total_weight
            share = delivered[vc] / total_bytes
            fair_dev = max(fair_dev, abs(share - ideal) / ideal)
    else:
        fair_dev = 1.0

    return {
        "utilization": utilization,
        "goodput_mbps": total_bytes * 8 / window / 1e6,
        "fair_dev": fair_dev,
        "peak_queue": float(bottleneck.occupancy.maximum),
        "loss_ratio": bottleneck.loss_ratio,
        "efci_marked": float(bottleneck.efci_marked.count),
        "dropped_full": float(bottleneck.dropped_full.count),
    }


def _c1_point(
    params: Dict[str, Any], streams: RandomStreams
) -> Dict[str, float]:
    """C1 kernel: one seed, both arms.

    The sweep framework hands us per-point streams, but both arms must
    see the same start-time jitter, so the kernel derives everything
    from the explicit ``seed`` axis instead (common random numbers
    across the closed/open-loop comparison).
    """
    del streams
    common = dict(
        duration=params["duration"],
        warmup=params["warmup"],
        n_sources=params["n_sources"],
        buffer_cells=params["buffer_cells"],
        efci_threshold=params["efci_threshold"],
        sdu_size=params["sdu_size"],
    )
    on = _bottleneck_run(params["seed"], True, **common)
    off = _bottleneck_run(params["seed"], False, **common)
    point = {}
    for key, value in on.items():
        point[f"on_{key}"] = value
    for key, value in off.items():
        point[f"off_{key}"] = value
    point["goodput_gain_mbps"] = on["goodput_mbps"] - off["goodput_mbps"]
    point["queue_headroom_cells"] = (
        float(params["buffer_cells"]) - on["peak_queue"]
    )
    return point


def run_c1(
    config=None,
    *,
    seeds: Optional[Sequence[int]] = None,
    fast_path: bool = False,
    duration: float = 0.06,
    warmup: float = 0.02,
    n_sources: int = 3,
    buffer_cells: int = 256,
    efci_threshold: int = 64,
    sdu_size: int = 1528,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
):
    """C1: weighted-fair convergence of ABR sources at a bottleneck.

    Each seed runs the same contended scenario twice -- with the ABR
    control loop closed and wide open -- and reports bottleneck
    utilization, the weighted-fairness deviation, queue extremes, and
    the goodput gap.  See ``docs/TRAFFIC.md``.  Sweep points build
    their configs from JSON parameters, so *config* (like *fast_path*)
    is accepted only for the uniform contract.
    """
    del config, fast_path
    seeds = tuple(seeds) if seeds is not None else (1, 2, 3)
    from repro.results.experiments import ExperimentResult

    spec = SweepSpec.grid(
        "C1",
        axes={"seed": list(seeds)},
        fixed={
            "duration": duration,
            "warmup": warmup,
            "n_sources": n_sources,
            "buffer_cells": buffer_cells,
            "efci_threshold": efci_threshold,
            "sdu_size": sdu_size,
        },
        x_axis="seed",
    )
    sweep_run = run_sweep(spec, _c1_point, workers=workers, store=store, log=log)
    series = sweep_run.series(
        name="closed-loop ABR vs open-loop flooding", x_label="seed"
    )
    result = ExperimentResult(
        experiment_id="C1",
        title="ABR bottleneck: N weighted greedy sources, closed loop "
        "vs open loop (aurora OC-3)",
        series=series,
    )
    on_util = series.column("on_utilization")
    fair = series.column("on_fair_dev")
    gains = series.column("goodput_gain_mbps")
    on_good = series.column("on_goodput_mbps")
    off_good = series.column("off_goodput_mbps")
    on_queue = series.column("on_peak_queue")
    off_queue = series.column("off_peak_queue")
    result.metrics["min_on_utilization"] = min(on_util)
    result.metrics["max_fair_dev"] = max(fair)
    result.metrics["mean_on_goodput_mbps"] = sum(on_good) / len(on_good)
    result.metrics["mean_off_goodput_mbps"] = sum(off_good) / len(off_good)
    result.metrics["min_goodput_gain_mbps"] = min(gains)
    result.metrics["max_on_peak_queue"] = max(on_queue)
    result.metrics["min_off_peak_queue"] = min(off_queue)
    result.metrics["all_queues_bounded"] = (
        1.0 if max(on_queue) < buffer_cells else 0.0
    )
    result.notes.append(
        "open loop: access links outrun the bottleneck, the port buffer "
        "pins at its cap and tail drops shred AAL5 frames; closed loop: "
        "ERICA stamps weighted-fair explicit rates into transiting RM "
        "cells and the sources' ACRs settle on a 1:2:3 split at ~95% "
        "bottleneck load with the queue far from its cap"
    )
    return result
