"""Per-VC weighted-round-robin transmit scheduling.

The seed transmit path serves PDUs in strict descriptor-ring order, so
one chatty VC starves its neighbours behind it in the ring.  This
module adds the classic fix: per-VC queues drained by a weighted round
robin, so many VCs share the adaptor (and hence the link) in
proportion to configured weights rather than arrival order.

Two pieces:

- :class:`WeightedRoundRobin` -- the pure scheduling discipline, a
  plain data structure with ``push``/``pop`` and no simulator
  dependencies, so its invariants (work conservation, weight
  proportionality) are directly property-testable;
- :class:`WrrTxQueue` -- the sim-side adaptor: a pump process drains
  the host's :class:`~repro.nic.descriptors.DescriptorRing` into
  per-VC queues and re-exposes the ring's ``take()`` contract, so
  :class:`~repro.nic.tx.TxEngine` consumes WRR order unchanged.

Note the flow-control trade documented in docs/TRAFFIC.md: the pump
empties the bounded ring eagerly, so ring backpressure no longer
bounds how far the host runs ahead -- per-VC queues are unbounded, as
in the era's list-per-VC adaptor firmware.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.sim.core import Event, Simulator


class WeightedRoundRobin:
    """Credit-based weighted round robin over named FIFO queues.

    Each backlogged queue is granted ``weight`` credits per cycle; a
    ``pop`` serves one item from the current queue and consumes one
    credit, moving on when the queue's credits (or items) run out.
    The discipline is work-conserving -- ``pop`` returns an item
    whenever any queue is non-empty -- and, under continuous backlog,
    serves queues in proportion to their weights.
    """

    def __init__(self) -> None:
        self._queues: Dict[Any, Deque[Any]] = {}
        self._weights: Dict[Any, int] = {}
        self._credits: Dict[Any, int] = {}
        self._order: List[Any] = []
        self._cursor = 0
        self._size = 0
        #: Items served per queue (for fairness verification).
        self.served: Dict[Any, int] = {}

    def __contains__(self, key: Any) -> bool:
        return key in self._queues

    def __len__(self) -> int:
        return self._size

    @property
    def keys(self) -> List[Any]:
        return list(self._order)

    def add_queue(self, key: Any, weight: int = 1) -> None:
        """Register a queue; re-adding just updates its weight."""
        if weight < 1:
            raise ValueError("WRR weight must be >= 1")
        if key not in self._queues:
            self._queues[key] = deque()
            self._order.append(key)
            self._credits[key] = 0
            self.served[key] = 0
        self._weights[key] = int(weight)

    def weight_of(self, key: Any) -> int:
        return self._weights[key]

    def backlog_of(self, key: Any) -> int:
        return len(self._queues[key])

    def push(self, key: Any, item: Any) -> None:
        """Enqueue *item* on *key*'s queue (auto-registers at weight 1)."""
        if key not in self._queues:
            self.add_queue(key)
        self._queues[key].append(item)
        self._size += 1

    def pop(self) -> Optional[Any]:
        """Serve the next item in WRR order; None when all queues idle."""
        if self._size == 0:
            return None
        n = len(self._order)
        scanned = 0
        while True:
            key = self._order[self._cursor]
            queue = self._queues[key]
            if queue and self._credits[key] > 0:
                self._credits[key] -= 1
                if self._credits[key] == 0:
                    self._cursor = (self._cursor + 1) % n
                self._size -= 1
                self.served[key] += 1
                return queue.popleft()
            self._cursor = (self._cursor + 1) % n
            scanned += 1
            if scanned >= n:
                # Full cycle without service: start a new round by
                # granting every backlogged queue its weight in credits.
                for candidate in self._order:
                    if self._queues[candidate]:
                        self._credits[candidate] = self._weights[candidate]
                scanned = 0


class WrrTxQueue:
    """WRR front end for the transmit engine's descriptor source.

    Interposes between the host's descriptor ring and the engine::

        queue = WrrTxQueue(sim, nic.tx_ring, weight_of=weights.get)
        nic.tx_engine.ring = queue
        queue.start()

    (or just call :func:`install_wrr`).  ``weight_of`` maps a
    :class:`~repro.atm.addressing.VcAddress` to its integer weight;
    unknown VCs default to weight 1.
    """

    def __init__(
        self,
        sim: Simulator,
        ring,
        weight_of: Optional[Callable[[Any], Optional[int]]] = None,
        name: str = "wrr",
    ) -> None:
        self.sim = sim
        self.ring = ring
        self.weight_of = weight_of
        self.name = name
        self.wrr = WeightedRoundRobin()
        self._waiters: Deque[Event] = deque()
        self._process = None

    def __len__(self) -> int:
        return len(self.wrr)

    def start(self) -> None:
        """Launch the ring-drain pump (idempotent)."""
        if self._process is None:
            self._process = self.sim.process(self._pump())

    def _pump(self):
        while True:
            descriptor = yield self.ring.take()
            key = descriptor.vc
            if key not in self.wrr:
                weight = 1
                if self.weight_of is not None:
                    configured = self.weight_of(key)
                    if configured is not None and configured >= 1:
                        weight = int(configured)
                self.wrr.add_queue(key, weight)
            self.wrr.push(key, descriptor)
            while self._waiters and len(self.wrr):
                self._waiters.popleft().trigger(self.wrr.pop())

    def take(self) -> Event:
        """Consumer side; the event fires with the next WRR descriptor."""
        event = self.sim.event()
        item = self.wrr.pop()
        if item is not None:
            event.trigger(item)
        else:
            self._waiters.append(event)
        return event


def install_wrr(
    nic,
    weight_of: Optional[Callable[[Any], Optional[int]]] = None,
) -> WrrTxQueue:
    """Interpose a WRR queue between *nic*'s TX ring and its engine."""
    queue = WrrTxQueue(
        nic.sim, nic.tx_ring, weight_of=weight_of, name=f"{nic.name}.wrr"
    )
    nic.tx_engine.ring = queue
    queue.start()
    return queue
