"""ABR end-system behaviour: the source and destination rate loop.

TM 4.0's available-bit-rate service closes a control loop around every
VC: the source paces itself to a dynamic *allowed cell rate* (ACR) and
emits a forward RM cell every Nrm data cells; the network marks those
cells (EFCI on data cells above a queue threshold, explicit rates
stamped by :class:`~repro.tm.erica.EricaAllocator`); the destination
turns each forward RM cell around with its congestion observation; and
the source applies the returned fields:

- CI set -> multiplicative decrease: ``acr = max(mcr, acr * (1 - RDF))``
- CI clear, NI clear -> additive increase: ``acr = min(pcr, acr + RIF * pcr)``
- always -> clamp to the network's explicit rate: ``acr = min(acr, ER)``

One :class:`AbrAgent` serves a whole interface, playing *source* for
VCs registered with :meth:`AbrAgent.add_vc` and *destination* for any
forward RM cell that arrives.  It plugs into the NIC through three
duck-typed hooks (the nic package never imports this one):
``TxEngine.abr`` (dynamic pacing + RM interleave),
``RxEngine.on_user_cell`` (EFCI observation) and
``HostNetworkInterface.on_rm`` (RM demux off the management lane).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.atm.burst import CellBurst
from repro.sim.monitor import Counter
from repro.tm.rm import RmCell, RmFormatError

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): EFCI
#: observation is the one ABR touchpoint a burst lane can reach, and
#: its burst form must replay the scalar per-cell scan exactly.
PATH_PAIRS = [
    {
        "scalar": "AbrAgent.observe_cell",
        "burst": "AbrAgent.observe_burst",
        "why": (
            "burst EFCI observation replays the scalar per-cell scan "
            "exactly; RM send/turnaround paths are scalar-only since "
            "paced ABR VCs never form bursts"
        ),
    },
]


@dataclass(frozen=True)
class AbrParams:
    """Per-VC ABR contract parameters (rates in cells per second)."""

    pcr: float
    mcr: float = 0.0
    #: Initial cell rate; defaults to PCR/16 (bounded below by MCR).
    icr: Optional[float] = None
    #: Rate-increase factor: additive step is ``rif * pcr`` per RM cell.
    rif: float = 1.0 / 16.0
    #: Rate-decrease factor: multiplicative cut per CI-marked RM cell.
    rdf: float = 1.0 / 16.0
    #: Data cells between forward RM cells.
    nrm: int = 32

    def __post_init__(self) -> None:
        if self.pcr <= 0:
            raise ValueError("PCR must be positive")
        if not 0 <= self.mcr <= self.pcr:
            raise ValueError("MCR must sit in [0, PCR]")
        if not 0 < self.rif <= 1 or not 0 < self.rdf <= 1:
            raise ValueError("RIF/RDF must sit in (0, 1]")
        if self.nrm < 2:
            raise ValueError("Nrm must be >= 2")

    @property
    def initial_rate(self) -> float:
        if self.icr is not None:
            return max(self.mcr, min(self.icr, self.pcr))
        return max(self.mcr, self.pcr / 16.0, self.floor)

    @property
    def floor(self) -> float:
        """Hard lower bound on ACR so pacing intervals stay finite."""
        return max(self.mcr, self.pcr * 1e-3)


class _SourceState:
    __slots__ = ("params", "acr", "since_rm")

    def __init__(self, params: AbrParams) -> None:
        self.params = params
        self.acr = params.initial_rate
        # First data cell triggers an RM cell immediately, so the loop
        # gets feedback within one round trip of the first PDU.
        self.since_rm = params.nrm - 1


class AbrAgent:
    """Source + destination ABR behaviour for one interface."""

    def __init__(self, sim, interface, name: str = "") -> None:
        self.sim = sim
        self.interface = interface
        self.name = name or f"{interface.name}.abr"
        self._sources: Dict[VcAddress, _SourceState] = {}
        self._efci_seen: Dict[VcAddress, bool] = {}
        self.rm_sent = Counter(f"{self.name}.rm-sent")
        self.rm_received = Counter(f"{self.name}.rm-received")
        self.rm_turnaround = Counter(f"{self.name}.rm-turnaround")
        self.rm_bad = Counter(f"{self.name}.rm-bad")
        self.rate_increases = Counter(f"{self.name}.rate-up")
        self.rate_decreases = Counter(f"{self.name}.rate-down")
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None
        # Wire the three duck-typed NIC touchpoints.
        interface.tx_engine.abr = self
        interface.rx_engine.on_user_cell = self.observe_cell
        interface.on_rm = self.receive_rm_cell

    # -- source side -----------------------------------------------------------

    def add_vc(self, vc: VcAddress, params: AbrParams) -> None:
        """Register *vc* as an ABR source on this interface."""
        self._sources[vc] = _SourceState(params)

    def acr_of(self, vc: VcAddress) -> Optional[float]:
        """Current allowed cell rate (cells/s), or None if not managed."""
        state = self._sources.get(vc)
        return None if state is None else state.acr

    def interval_of(self, vc: VcAddress) -> Optional[float]:
        """TxEngine pacing hook: seconds between cells at the ACR."""
        state = self._sources.get(vc)
        return None if state is None else 1.0 / state.acr

    def data_cell_sent(self, vc: VcAddress) -> Optional[AtmCell]:
        """TxEngine interleave hook: a forward RM cell every Nrm cells."""
        state = self._sources.get(vc)
        if state is None:
            return None
        state.since_rm += 1
        if state.since_rm < state.params.nrm:
            return None
        state.since_rm = 0
        rm = RmCell(
            vc=vc,
            forward=True,
            er=state.params.pcr,
            ccr=state.acr,
            mcr=state.params.mcr,
        )
        self.rm_sent.increment()
        if self.trace is not None:
            self.trace.emit(
                "rm.cell.sent", actor=self.name, vc=vc, ccr=state.acr
            )
        return rm.encode()

    def _update_source(self, rm: RmCell) -> None:
        state = self._sources.get(rm.vc)
        if state is None:
            return
        params = state.params
        before = state.acr
        if rm.ci:
            state.acr = max(params.mcr, state.acr * (1.0 - params.rdf))
        elif not rm.ni:
            state.acr = min(params.pcr, state.acr + params.rif * params.pcr)
        state.acr = min(state.acr, max(rm.er, params.mcr))
        state.acr = max(state.acr, params.floor)
        if state.acr > before:
            self.rate_increases.increment()
        elif state.acr < before:
            self.rate_decreases.increment()
        if self.trace is not None:
            self.trace.emit(
                "abr.rate.update",
                actor=self.name,
                vc=rm.vc,
                acr=state.acr,
                er=rm.er,
                ci=rm.ci,
                ni=rm.ni,
            )

    # -- destination side --------------------------------------------------------

    def observe_cell(self, cell: AtmCell) -> None:
        """RxEngine per-user-cell hook: latch EFCI marks per VC."""
        if cell.congestion_experienced:
            self._efci_seen[VcAddress(cell.vpi, cell.vci)] = True

    def observe_burst(self, burst: CellBurst) -> None:
        """Burst form of :meth:`observe_cell` for burst-aware taps."""
        for cell in burst.cells:
            self.observe_cell(cell)

    def _turn_around(self, rm: RmCell) -> None:
        ci = self._efci_seen.pop(rm.vc, False)
        backward = rm.turned_around(ci=ci)
        self.rm_turnaround.increment()
        if self.trace is not None:
            self.trace.emit(
                "rm.cell.turnaround", actor=self.name, vc=rm.vc, ci=ci
            )
        self.interface.inject_cell(backward.encode())

    # -- RM demux ---------------------------------------------------------------

    def receive_rm_cell(self, cell: AtmCell) -> None:
        """NIC ``on_rm`` hook: demux by direction bit."""
        try:
            rm = RmCell.decode(cell)
        except RmFormatError:
            self.rm_bad.increment()
            return
        self.rm_received.increment()
        if rm.forward:
            self._turn_around(rm)
        else:
            self._update_source(rm)
