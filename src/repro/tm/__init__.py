"""Traffic management: the closed-loop control plane over the data path.

The package adds TM 4.0's four cooperating mechanisms to the
reproduction (docs/TRAFFIC.md):

- :mod:`repro.tm.rm` -- the resource-management cell codec ABR's
  feedback loop rides on;
- :mod:`repro.tm.abr` -- source/destination end-system behaviour
  (dynamic ACR pacing, RM interleave, EFCI observation, turnaround);
- :mod:`repro.tm.erica` -- per-port explicit-rate allocation inside
  the switch;
- :mod:`repro.tm.cac` -- call admission against per-link contract
  budgets;
- :mod:`repro.tm.sched` -- weighted-round-robin transmit scheduling;
- :mod:`repro.tm.experiment` -- C1, the closed-loop vs open-loop
  bottleneck experiment.
"""

from repro.tm.abr import AbrAgent, AbrParams
from repro.tm.cac import CacReject, CallAdmissionController
from repro.tm.erica import EricaAllocator
from repro.tm.rm import RM_PROTOCOL_ID, RmCell, RmFormatError, is_rm_cell
from repro.tm.sched import WeightedRoundRobin, WrrTxQueue, install_wrr

__all__ = [
    "AbrAgent",
    "AbrParams",
    "CacReject",
    "CallAdmissionController",
    "EricaAllocator",
    "RM_PROTOCOL_ID",
    "RmCell",
    "RmFormatError",
    "is_rm_cell",
    "WeightedRoundRobin",
    "WrrTxQueue",
    "install_wrr",
]
