"""Resource-management (RM) cell codec for the ABR control loop.

TM 4.0 runs ABR's closed loop over *RM cells*: management cells that
ride inside the data VC (PTI = 0b110) carrying the source's current
cell rate (CCR), the explicit rate the network will tolerate (ER), and
the binary congestion bits (CI -- congestion indication, NI -- no
increase, BN -- backward-notification / non-source-generated).  A
source emits one *forward* RM cell every Nrm data cells; switches on
the path may reduce ER in place; the destination turns the cell around
as a *backward* RM cell, and the source adjusts its allowed cell rate
(ACR) from the returned fields.

Cell payload layout modelled here (48 bytes)::

    | protocol id (1) | flags: DIR/BN/CI/NI (1) |
    | ER (8, IEEE double) | CCR (8) | MCR (8) |
    | unused / 0x6A fill (20) | reserved (6 bits) + CRC-10 |

Documented divergence from TM 4.0 (see docs/TRAFFIC.md): the real
format packs rates as 16-bit binary floating point and carries QL/SN
fields we do not model; we spend the idle payload bytes on IEEE
doubles so the simulated control loop is exact, and keep the CRC-10
trailer convention shared with :mod:`repro.atm.oam`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.aal.crc import crc10
from repro.atm.addressing import VcAddress
from repro.atm.cell import PAYLOAD_SIZE, PTI_RESOURCE_MGMT, AtmCell

#: TM 4.0 RM protocol identifier for the ABR service.
RM_PROTOCOL_ID = 0x01

_FLAG_DIR = 0x80  # 0 = forward (source -> destination), 1 = backward
_FLAG_BN = 0x40  # non-source-generated (backward explicit notification)
_FLAG_CI = 0x20  # congestion indication
_FLAG_NI = 0x10  # no additive increase allowed

_FILL = 0x6A
_RATES = struct.Struct(">ddd")  # ER, CCR, MCR as cells/second


class RmFormatError(ValueError):
    """Malformed or corrupted RM cell payload."""


def is_rm_cell(cell: AtmCell) -> bool:
    """True when the PTI marks *cell* as a resource-management cell."""
    return cell.pti == PTI_RESOURCE_MGMT


@dataclass(frozen=True)
class RmCell:
    """Decoded form of an ABR resource-management cell.

    Rates (``er``, ``ccr``, ``mcr``) are in cells per second.  A
    forward cell (``forward=True``) travels source-to-destination; the
    destination flips the DIR bit when turning it around.
    """

    vc: VcAddress
    forward: bool = True
    er: float = 0.0
    ccr: float = 0.0
    mcr: float = 0.0
    ci: bool = False
    ni: bool = False
    bn: bool = False

    def encode(self) -> AtmCell:
        """Build the on-the-wire cell (PTI marks it resource management)."""
        if self.er < 0 or self.ccr < 0 or self.mcr < 0:
            raise RmFormatError("RM rates must be non-negative")
        flags = 0
        if not self.forward:
            flags |= _FLAG_DIR
        if self.bn:
            flags |= _FLAG_BN
        if self.ci:
            flags |= _FLAG_CI
        if self.ni:
            flags |= _FLAG_NI
        body = (
            bytes((RM_PROTOCOL_ID, flags))
            + _RATES.pack(self.er, self.ccr, self.mcr)
            + bytes([_FILL]) * (PAYLOAD_SIZE - 2 - _RATES.size - 2)
            + bytes(2)  # reserved bits + zeroed CRC field
        )
        trailer = crc10(body)
        payload = body[:-2] + trailer.to_bytes(2, "big")
        return AtmCell(
            vpi=self.vc.vpi,
            vci=self.vc.vci,
            payload=payload,
            pti=PTI_RESOURCE_MGMT,
        )

    @classmethod
    def decode(cls, cell: AtmCell) -> "RmCell":
        """Parse an RM cell; raises :class:`RmFormatError` on damage."""
        if not is_rm_cell(cell):
            raise RmFormatError("not an RM cell (PTI is not 0b110)")
        payload = cell.payload
        if crc10(payload) != 0:
            raise RmFormatError("RM CRC-10 failed")
        if payload[0] != RM_PROTOCOL_ID:
            raise RmFormatError(
                f"unsupported RM protocol id 0x{payload[0]:02x}"
            )
        flags = payload[1]
        er, ccr, mcr = _RATES.unpack_from(payload, 2)
        return cls(
            vc=VcAddress(cell.vpi, cell.vci),
            forward=not flags & _FLAG_DIR,
            er=er,
            ccr=ccr,
            mcr=mcr,
            ci=bool(flags & _FLAG_CI),
            ni=bool(flags & _FLAG_NI),
            bn=bool(flags & _FLAG_BN),
        )

    def turned_around(self, ci: bool = False, ni: bool = False) -> "RmCell":
        """The backward cell a destination reflects to the source.

        The destination preserves ER/CCR/MCR, flips DIR, and may OR in
        its own congestion state (EFCI seen since the last RM cell).
        """
        return RmCell(
            vc=self.vc,
            forward=False,
            er=self.er,
            ccr=self.ccr,
            mcr=self.mcr,
            ci=self.ci or ci,
            ni=self.ni or ni,
            bn=self.bn,
        )

    def with_er(self, er: float) -> "RmCell":
        """Copy with ER replaced (a switch stamping its allocation)."""
        return RmCell(
            vc=self.vc,
            forward=self.forward,
            er=er,
            ccr=self.ccr,
            mcr=self.mcr,
            ci=self.ci,
            ni=self.ni,
            bn=self.bn,
        )
