"""The workstation side: CPU, memory, system bus, DMA, interrupts, OS.

This models a 1991 TURBOchannel-class workstation (DECstation 5000
family): a ~25 MHz scalar RISC CPU, a 32-bit 25 MHz I/O bus with burst
DMA (100 MB/s peak), and an operating system whose syscall, copy and
interrupt costs are charged in CPU cycles.

The central accounting quantity is **host CPU cycles per delivered
PDU/byte** -- the resource the paper's offload architecture exists to
save.  Experiment T3/T5 read it straight off :class:`HostCpu`.
"""

from repro.host.bus import BusSpec, SystemBus, TURBOCHANNEL
from repro.host.cpu import CpuSpec, HostCpu, R3000_25MHZ
from repro.host.dma import DmaEngine, DmaSpec
from repro.host.interrupts import InterruptController, InterruptSpec
from repro.host.memory import Buffer, BufferPool, HostMemory
from repro.host.os_model import HostOs, OsCostModel

__all__ = [
    "Buffer",
    "BufferPool",
    "BusSpec",
    "CpuSpec",
    "DmaEngine",
    "DmaSpec",
    "HostCpu",
    "HostMemory",
    "HostOs",
    "InterruptController",
    "InterruptSpec",
    "OsCostModel",
    "R3000_25MHZ",
    "SystemBus",
    "TURBOCHANNEL",
]
