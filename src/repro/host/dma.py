"""The adaptor's DMA engine: moves PDUs across the host bus.

DMA decouples the protocol engines from host memory: the engine queues a
transfer descriptor (a few cycles), the DMA machine arbitrates for the
bus and streams the bytes, and a completion callback/event fires when the
last word lands.  Transfers are serviced strictly in order per engine --
real adaptors had one DMA context per direction, which is what the
default two-engine wiring in :mod:`repro.nic.nic` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.host.bus import SystemBus
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter, WelfordStat
from repro.sim.resources import Resource

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): the
#: arithmetic transfer span must replay the event-by-event bus walk.
PATH_PAIRS = [
    {
        "scalar": "DmaEngine._span_scalar",
        "burst": "DmaEngine._span_fast",
        "why": (
            "the uncontended fast span charges the same bus accounting "
            "as the event-by-event walk"
        ),
    },
]


@dataclass(frozen=True)
class DmaSpec:
    """Static DMA engine parameters."""

    #: Engine-side cycles to accept and launch one descriptor, expressed
    #: in seconds (already divided by the engine clock by the caller) --
    #: kept as time so host- and NIC-side users share the type.
    setup_time: float = 1e-6
    #: Extra completion-notification latency (status writeback).
    completion_time: float = 4e-7

    def __post_init__(self) -> None:
        if self.setup_time < 0 or self.completion_time < 0:
            raise ValueError("DMA times must be >= 0")


class DmaEngine:
    """One direction's DMA mover, bound to a :class:`SystemBus`."""

    def __init__(
        self,
        sim: Simulator,
        bus: SystemBus,
        spec: Optional[DmaSpec] = None,
        name: str = "dma",
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.spec = spec if spec is not None else DmaSpec()
        self.name = name
        self._channel = Resource(sim, capacity=1, name=f"{name}.channel")
        self.transfers = Counter(f"{name}.transfers")
        self.bytes_moved = Counter(f"{name}.bytes")
        self.latency = WelfordStat()
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def transfer(self, nbytes: int) -> Event:
        """Event firing when *nbytes* have fully moved across the bus."""
        return self.sim.process(self._transfer(nbytes))

    def _transfer(self, nbytes: int):
        if nbytes < 0:
            raise ValueError("negative DMA size")
        started = self.sim.now
        grant = self._channel.request()
        yield grant
        if self.trace is not None:
            self.trace.emit("dma.start", actor=self.name, bytes=nbytes)
        if self.sim.fast_path and self.bus.is_idle:
            end = self._span_fast(nbytes)
            if end > self.sim.now:
                yield self.sim.wake_at(end)
        else:
            yield from self._span_scalar(nbytes)
        self._channel.release(grant)
        self.transfers.increment()
        self.bytes_moved.increment(nbytes)
        self.latency.add(self.sim.now - started)
        if self.trace is not None:
            self.trace.emit(
                "dma.done", actor=self.name, bytes=nbytes,
                latency=self.sim.now - started,
            )
        return nbytes

    def _span_fast(self, nbytes: int) -> float:
        """Uncontended fast path: the transfer span as arithmetic.

        Setup + bus walk + writeback is a fixed chain (identical float
        adds to the event-by-event walk in :meth:`_span_scalar`); the
        caller sleeps once to the returned end time.
        """
        end = self.sim.now + self.spec.setup_time
        if nbytes > 0:
            end = self.bus.charge_span(nbytes, end, master=self.name)
        return end + self.spec.completion_time

    def _span_scalar(self, nbytes: int):
        """Reference lane: arbitrate and walk the bus event by event."""
        yield self.sim.timeout(self.spec.setup_time)
        if nbytes > 0:
            yield self.bus.transfer(nbytes, master=self.name)
        yield self.sim.timeout(self.spec.completion_time)

    @property
    def backlog(self) -> int:
        """Transfers queued behind the current one."""
        return self._channel.queue_length
