"""The adaptor's DMA engine: moves PDUs across the host bus.

DMA decouples the protocol engines from host memory: the engine queues a
transfer descriptor (a few cycles), the DMA machine arbitrates for the
bus and streams the bytes, and a completion callback/event fires when the
last word lands.  Transfers are serviced strictly in order per engine --
real adaptors had one DMA context per direction, which is what the
default two-engine wiring in :mod:`repro.nic.nic` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.host.bus import SystemBus
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter, WelfordStat
from repro.sim.resources import Resource

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): the DMA
#: engine has no private fast lane -- both paths go through
#: :meth:`SystemBus._transfer`, whose internal idle-bus shortcut keeps
#: the arbiter held so concurrent masters contend identically.  (An
#: earlier unarbitrated ``_span_fast`` let rx- and tx-DMA spans overlap
#: on an "idle" bus, which the S1 churn parity gate caught.)
PATH_PAIRS: list = []


@dataclass(frozen=True)
class DmaSpec:
    """Static DMA engine parameters."""

    #: Engine-side cycles to accept and launch one descriptor, expressed
    #: in seconds (already divided by the engine clock by the caller) --
    #: kept as time so host- and NIC-side users share the type.
    setup_time: float = 1e-6
    #: Extra completion-notification latency (status writeback).
    completion_time: float = 4e-7

    def __post_init__(self) -> None:
        if self.setup_time < 0 or self.completion_time < 0:
            raise ValueError("DMA times must be >= 0")


class DmaEngine:
    """One direction's DMA mover, bound to a :class:`SystemBus`."""

    def __init__(
        self,
        sim: Simulator,
        bus: SystemBus,
        spec: Optional[DmaSpec] = None,
        name: str = "dma",
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.spec = spec if spec is not None else DmaSpec()
        self.name = name
        self._channel = Resource(sim, capacity=1, name=f"{name}.channel")
        self.transfers = Counter(f"{name}.transfers")
        self.bytes_moved = Counter(f"{name}.bytes")
        self.latency = WelfordStat()
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def transfer(self, nbytes: int) -> Event:
        """Event firing when *nbytes* have fully moved across the bus."""
        return self.sim.process(self._transfer(nbytes))

    def _transfer(self, nbytes: int):
        if nbytes < 0:
            raise ValueError("negative DMA size")
        started = self.sim.now
        grant = self._channel.request()
        yield grant
        if self.trace is not None:
            self.trace.emit("dma.start", actor=self.name, bytes=nbytes)
        # Always arbitrate: the rx and tx engines share the bus, and an
        # unarbitrated "idle bus" shortcut here would let their spans
        # overlap -- the bus's own fast path collapses the idle case to
        # a single event while still holding the arbiter.
        yield from self._span(nbytes)
        self._channel.release(grant)
        self.transfers.increment()
        self.bytes_moved.increment(nbytes)
        self.latency.add(self.sim.now - started)
        if self.trace is not None:
            self.trace.emit(
                "dma.done", actor=self.name, bytes=nbytes,
                latency=self.sim.now - started,
            )
        return nbytes

    def _span(self, nbytes: int):
        """Setup, arbitrated bus walk, completion writeback."""
        yield self.sim.timeout(self.spec.setup_time)
        if nbytes > 0:
            yield self.bus.transfer(nbytes, master=self.name)
        yield self.sim.timeout(self.spec.completion_time)

    @property
    def backlog(self) -> int:
        """Transfers queued behind the current one."""
        return self._channel.queue_length
