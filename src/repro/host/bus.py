"""The host I/O bus: a shared, arbitrated, burst-oriented transport.

Modelled on TURBOchannel: 32-bit data path at 25 MHz (100 MB/s peak),
with DMA bursts of up to a configurable word count.  A transaction costs
an arbitration/setup overhead plus one bus cycle per word; long
transfers split into bursts, re-arbitrating between bursts so other
masters (the CPU doing programmed I/O, a frame buffer...) are not locked
out -- precisely the property that makes large DMA transfers cheap but
not free.

The bus is the *second* potential bottleneck of the paper's architecture
(after the protocol engines): every received byte crosses it once, and
transmitted bytes cross it once, so at OC-12c rates the budget matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.core import Simulator
from repro.sim.monitor import Counter
from repro.sim.resources import Resource

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): the
#: arithmetic span walk must book the same transaction accounting as
#: the arbitrated event-by-event transfer.
PATH_PAIRS = [
    {
        "scalar": "SystemBus._transfer",
        "burst": "SystemBus.charge_span",
        "why": (
            "charge_span runs the burst arithmetic of _transfer "
            "without arbitration (its caller guarantees an idle bus)"
        ),
    },
]


@dataclass(frozen=True)
class BusSpec:
    """Static description of an I/O bus."""

    name: str
    clock_hz: float
    width_bytes: int
    #: Bus cycles of arbitration + address phase per burst.
    burst_setup_cycles: int
    #: Maximum words moved per burst before re-arbitrating.
    max_burst_words: int

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("bus clock must be positive")
        if self.width_bytes not in (1, 2, 4, 8, 16):
            raise ValueError("width must be a power-of-two byte count")
        if self.burst_setup_cycles < 0:
            raise ValueError("setup cycles must be >= 0")
        if self.max_burst_words < 1:
            raise ValueError("burst length must be >= 1 word")

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    @property
    def peak_bandwidth_bps(self) -> float:
        """Data-phase-only bandwidth in bits/second."""
        return self.clock_hz * self.width_bytes * 8

    def words_for(self, nbytes: int) -> int:
        """Bus words needed for *nbytes* (partial words round up)."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        return -(-nbytes // self.width_bytes)

    def transfer_time(self, nbytes: int) -> float:
        """Seconds of bus occupancy to move *nbytes*, including setups."""
        words = self.words_for(nbytes)
        if words == 0:
            return 0.0
        bursts = -(-words // self.max_burst_words)
        cycles = words + bursts * self.burst_setup_cycles
        return cycles * self.cycle_time

    def effective_bandwidth_bps(self, transfer_bytes: int) -> float:
        """Achievable bandwidth for back-to-back transfers of a given size."""
        t = self.transfer_time(transfer_bytes)
        return (transfer_bytes * 8) / t if t > 0 else 0.0


#: TURBOchannel-class bus: 32-bit, 25 MHz, 128-word DMA bursts.
TURBOCHANNEL = BusSpec(
    name="TURBOchannel",
    clock_hz=25e6,
    width_bytes=4,
    burst_setup_cycles=6,
    max_burst_words=128,
)


class SystemBus:
    """The dynamic bus: an arbitrated resource that masters transact on.

    ``transfer(nbytes, master)`` is a process-style operation: the caller
    yields on the returned event and resumes once its data has moved.
    Long transfers hold the bus one burst at a time; between bursts the
    arbitration is re-run, so a competing master's short transaction
    slots in with bounded latency.
    """

    def __init__(self, sim: Simulator, spec: BusSpec, name: str = "bus") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._arbiter = Resource(sim, capacity=1, name=f"{name}.arbiter")
        self._busy_time = 0.0
        self.bytes_moved = Counter(f"{name}.bytes")
        self.transactions = Counter(f"{name}.transactions")
        self.bytes_by_master: dict[str, int] = {}

    def transfer(self, nbytes: int, master: str = "dma"):
        """Event firing when *nbytes* have crossed the bus for *master*."""
        return self.sim.process(self._transfer(nbytes, master))

    @property
    def is_idle(self) -> bool:
        """True when no master holds or awaits the bus."""
        return self._arbiter.in_use == 0 and self._arbiter.queue_length == 0

    def charge_span(self, nbytes: int, start: float, master: str) -> float:
        """Book an uncontended transfer starting at *start*; returns its end.

        Fast-path arithmetic form of :meth:`_transfer` for callers that
        have already established the bus is idle (see
        :class:`~repro.host.dma.DmaEngine`): identical per-burst float
        adds and ledger updates, zero events.  Only valid on the fast
        path with :attr:`is_idle` true -- a competing master arriving
        mid-span is the documented fast-path timing divergence.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.transactions.increment()
        remaining_words = self.spec.words_for(nbytes)
        end = start
        while remaining_words > 0:
            burst_words = min(remaining_words, self.spec.max_burst_words)
            cycles = self.spec.burst_setup_cycles + burst_words
            duration = cycles * self.spec.cycle_time
            self._busy_time += duration
            end = end + duration
            remaining_words -= burst_words
        self.bytes_moved.increment(nbytes)
        self.bytes_by_master[master] = (
            self.bytes_by_master.get(master, 0) + nbytes
        )
        return end

    def _transfer(self, nbytes: int, master: str):
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.transactions.increment()
        remaining_words = self.spec.words_for(nbytes)
        if (
            self.sim.fast_path
            and self._arbiter.in_use == 0
            and self._arbiter.queue_length == 0
        ):
            # Fast path, bus idle: no competitor can interleave between
            # our bursts, so the per-burst clock walk collapses to one
            # event at the same chained end time (identical float adds).
            # The arbiter is held for the whole span, so a master that
            # does arrive mid-transfer still queues behind it (it would
            # have slotted between bursts on the scalar path -- the one
            # documented timing divergence, see docs/PERFORMANCE.md).
            grant = self._arbiter.request()
            yield grant
            end = self.sim.now
            while remaining_words > 0:
                burst_words = min(remaining_words, self.spec.max_burst_words)
                cycles = self.spec.burst_setup_cycles + burst_words
                duration = cycles * self.spec.cycle_time
                self._busy_time += duration
                end = end + duration
                remaining_words -= burst_words
            if end > self.sim.now:
                yield self.sim.wake_at(end)
            self._arbiter.release(grant)
        else:
            while remaining_words > 0:
                burst_words = min(remaining_words, self.spec.max_burst_words)
                grant = self._arbiter.request()
                yield grant
                cycles = self.spec.burst_setup_cycles + burst_words
                duration = cycles * self.spec.cycle_time
                self._busy_time += duration
                yield self.sim.timeout(duration)
                self._arbiter.release(grant)
                remaining_words -= burst_words
        self.bytes_moved.increment(nbytes)
        self.bytes_by_master[master] = (
            self.bytes_by_master.get(master, 0) + nbytes
        )
        return nbytes

    def utilization(self, now: float | None = None) -> float:
        """Fraction of elapsed time the bus was held by some master."""
        end = self.sim.now if now is None else now
        return min(1.0, self._busy_time / end) if end > 0 else 0.0

    @property
    def mean_arbitration_wait(self) -> float:
        return self._arbiter.mean_wait
