"""The host processor as a cycle-accounted serial resource.

The CPU executes *work items* measured in cycles.  Work is serialised
(one instruction stream), so concurrent demands queue; utilisation and
the total cycles burned per category are the experiment outputs.

Two usage styles coexist:

- **blocking**: a process does ``yield cpu.execute(cycles, "driver-tx")``
  and resumes when the work completes (queueing included);
- **accounting-only**: ``cpu.charge(cycles, tag)`` books cycles without
  simulating occupancy, for closed-form comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.core import Event, Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor."""

    name: str
    clock_hz: float
    #: Average instructions retired per clock; <1 for the era's caches.
    instructions_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.instructions_per_cycle <= 0:
            raise ValueError("IPC must be positive")

    @property
    def cycle_time(self) -> float:
        """Seconds per clock cycle."""
        return 1.0 / self.clock_hz

    @property
    def mips(self) -> float:
        """Effective million instructions per second."""
        return self.clock_hz * self.instructions_per_cycle / 1e6

    def seconds_for(self, cycles: float) -> float:
        """Wall time for *cycles* of work."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        return cycles * self.cycle_time


#: The DECstation 5000/200-class host CPU the interface attached to.
R3000_25MHZ = CpuSpec("R3000-25MHz", clock_hz=25e6, instructions_per_cycle=0.8)


class HostCpu:
    """A serially scheduled, cycle-accounted processor."""

    def __init__(self, sim: Simulator, spec: CpuSpec, name: str = "cpu") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._pipeline = Resource(sim, capacity=1, name=f"{name}.pipeline")
        self._busy_time = 0.0
        self.cycles_by_tag: Dict[str, float] = {}

    # -- blocking execution ------------------------------------------------

    def execute(self, cycles: float, tag: str = "work") -> "Event":
        """Event that fires once *cycles* of work have run on the CPU.

        Work requests queue FIFO behind whatever the CPU is doing.
        """
        return self.sim.process(self._run(cycles, tag))

    def _run(self, cycles: float, tag: str):
        grant = self._pipeline.request()
        yield grant
        duration = self.spec.seconds_for(cycles)
        self._busy_time += duration
        self._book(cycles, tag)
        yield self.sim.timeout(duration)
        self._pipeline.release(grant)

    # -- accounting-only ----------------------------------------------------

    def charge(self, cycles: float, tag: str = "work") -> float:
        """Book *cycles* without occupying the pipeline; returns seconds."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        self._book(cycles, tag)
        self._busy_time += self.spec.seconds_for(cycles)
        return self.spec.seconds_for(cycles)

    def _book(self, cycles: float, tag: str) -> None:
        self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0.0) + cycles

    # -- readouts -------------------------------------------------------------

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles_by_tag.values())

    @property
    def busy_time(self) -> float:
        return self._busy_time

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed simulation time the CPU was busy."""
        end = self.sim.now if now is None else now
        return min(1.0, self._busy_time / end) if end > 0 else 0.0

    @property
    def queue_length(self) -> int:
        return self._pipeline.queue_length

    def cycles_for(self, tag: str) -> float:
        return self.cycles_by_tag.get(tag, 0.0)
