"""Operating-system path costs: syscalls, copies, wakeups.

The OS model charges the host CPU for the software that wraps every
send and receive, independent of which interface architecture sits
below.  The per-byte copy cost is the term the zero-copy debates of the
era revolved around; it is configurable so the copy-avoidance ablation
can zero it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.cpu import HostCpu
from repro.sim.core import Event


@dataclass(frozen=True)
class OsCostModel:
    """Host CPU cycle costs of the OS networking path (per operation)."""

    #: Trap, argument validation, and return for one system call.
    syscall_cycles: int = 500
    #: Copying between user and kernel space, cycles per byte (a word
    #: copy loop on a 1991 RISC runs at roughly 0.75 cycles/byte).
    copy_cycles_per_byte: float = 0.75
    #: Allocate/free one kernel buffer (mbuf-class).
    buffer_mgmt_cycles: int = 150
    #: Scheduler wakeup of the blocked receiver.
    wakeup_cycles: int = 300
    #: Driver bookkeeping per transmitted PDU (descriptor build, ring).
    driver_tx_cycles: int = 200
    #: Driver bookkeeping per received PDU (ring scan, buffer replenish).
    driver_rx_cycles: int = 250

    def __post_init__(self) -> None:
        for field_name in (
            "syscall_cycles",
            "buffer_mgmt_cycles",
            "wakeup_cycles",
            "driver_tx_cycles",
            "driver_rx_cycles",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        if self.copy_cycles_per_byte < 0:
            raise ValueError("copy cost must be >= 0")

    def send_path_cycles(self, nbytes: int, copies: int = 1) -> float:
        """Total host cycles for one send of *nbytes* (software only)."""
        return (
            self.syscall_cycles
            + self.buffer_mgmt_cycles
            + copies * self.copy_cycles_per_byte * nbytes
            + self.driver_tx_cycles
        )

    def receive_path_cycles(self, nbytes: int, copies: int = 1) -> float:
        """Total host cycles for one receive of *nbytes* (software only)."""
        return (
            self.driver_rx_cycles
            + self.post_interrupt_receive_cycles(nbytes, copies)
        )

    def post_interrupt_receive_cycles(self, nbytes: int, copies: int = 1) -> float:
        """The receive path minus the driver work already charged by the
        interrupt handler (avoids double counting when the two are
        accounted separately)."""
        return (
            copies * self.copy_cycles_per_byte * nbytes
            + self.buffer_mgmt_cycles
            + self.wakeup_cycles
            + self.syscall_cycles
        )


class HostOs:
    """Charges the OS path costs onto a :class:`HostCpu`."""

    def __init__(
        self,
        cpu: HostCpu,
        costs: OsCostModel | None = None,
        copies_per_send: int = 1,
        copies_per_receive: int = 1,
    ) -> None:
        if copies_per_send < 0 or copies_per_receive < 0:
            raise ValueError("copy counts must be >= 0")
        self.cpu = cpu
        self.costs = costs if costs is not None else OsCostModel()
        self.copies_per_send = copies_per_send
        self.copies_per_receive = copies_per_receive
        self.pdus_sent = 0
        self.pdus_received = 0

    def send(self, nbytes: int) -> Event:
        """Run the send software path; event fires when the CPU is done."""
        self.pdus_sent += 1
        cycles = self.costs.send_path_cycles(nbytes, self.copies_per_send)
        return self.cpu.execute(cycles, tag="os-send")

    def receive(self, nbytes: int) -> Event:
        """Run the full receive software path (driver included)."""
        self.pdus_received += 1
        cycles = self.costs.receive_path_cycles(nbytes, self.copies_per_receive)
        return self.cpu.execute(cycles, tag="os-receive")

    def receive_post_interrupt(self, nbytes: int) -> Event:
        """The receive path when the driver ran in the interrupt handler."""
        self.pdus_received += 1
        cycles = self.costs.post_interrupt_receive_cycles(
            nbytes, self.copies_per_receive
        )
        return self.cpu.execute(cycles, tag="os-receive")
