"""Host memory: buffer pools and allocation accounting.

The interesting property in 1991 was not capacity but *who touches the
bytes*: a host-based SAR walks every byte with the CPU, while the
offloaded architecture lets DMA move PDUs untouched.  This module keeps
the functional bookkeeping (buffers with identity and size, a pool with
high-water marks) that the OS model and the NIC descriptor rings share.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Buffer:
    """A contiguous host-memory buffer holding (part of) a PDU."""

    buffer_id: int
    capacity: int
    data: bytes = b""
    owner: str = ""

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("negative buffer capacity")
        if len(self.data) > self.capacity:
            raise ValueError("data exceeds buffer capacity")

    @property
    def used(self) -> int:
        return len(self.data)

    def write(self, data: bytes) -> None:
        """Replace the contents (a DMA completion, a user write)."""
        if len(data) > self.capacity:
            raise ValueError(
                f"write of {len(data)} bytes into {self.capacity}-byte buffer"
            )
        self.data = data

    def append(self, data: bytes) -> None:
        """Extend the contents (reassembly landing successive pieces)."""
        if len(self.data) + len(data) > self.capacity:
            raise ValueError("append overflows buffer")
        self.data += data


class BufferPool:
    """A fixed-size-slot allocator with occupancy statistics.

    Models the receive-buffer pool a driver pre-posts to its adaptor:
    allocation fails (returns None) when empty, which surfaces as
    receive-side PDU drops -- a real failure mode measured in F5.
    """

    def __init__(self, slot_size: int, slots: int, name: str = "pool") -> None:
        if slot_size < 1 or slots < 1:
            raise ValueError("pool needs positive slot size and count")
        self.slot_size = slot_size
        self.slots = slots
        self.name = name
        self._ids = itertools.count(1)
        self._free = slots
        self.allocations = 0
        self.failures = 0
        self.low_water = slots

    @property
    def free_slots(self) -> int:
        return self._free

    @property
    def in_use(self) -> int:
        return self.slots - self._free

    def allocate(self, owner: str = "") -> Optional[Buffer]:
        """One free slot as a :class:`Buffer`, or None if exhausted."""
        if self._free == 0:
            self.failures += 1
            return None
        self._free -= 1
        self.allocations += 1
        if self._free < self.low_water:
            self.low_water = self._free
        return Buffer(next(self._ids), self.slot_size, owner=owner)

    def release(self, buffer: Buffer) -> None:
        """Return a slot to the pool."""
        if self._free >= self.slots:
            raise RuntimeError(f"pool {self.name} over-released")
        buffer.data = b""
        self._free += 1


class HostMemory:
    """Named regions of host memory with simple usage accounting."""

    def __init__(self, total_bytes: int = 64 << 20) -> None:
        if total_bytes < 1:
            raise ValueError("memory size must be positive")
        self.total_bytes = total_bytes
        self._regions: Dict[str, int] = {}

    def reserve(self, name: str, nbytes: int) -> None:
        """Carve a named region; raises if memory would oversubscribe."""
        if nbytes < 0:
            raise ValueError("negative region size")
        current = sum(self._regions.values()) - self._regions.get(name, 0)
        if current + nbytes > self.total_bytes:
            raise MemoryError(
                f"region {name!r} of {nbytes} bytes oversubscribes memory"
            )
        self._regions[name] = nbytes

    def region_size(self, name: str) -> int:
        return self._regions.get(name, 0)

    @property
    def reserved(self) -> int:
        return sum(self._regions.values())

    @property
    def available(self) -> int:
        return self.total_bytes - self.reserved

    def regions(self) -> Iterator[tuple[str, int]]:
        return iter(self._regions.items())


@dataclass
class BufferChain:
    """An mbuf-style chain of buffers representing one logical PDU."""

    buffers: List[Buffer] = field(default_factory=list)

    def add(self, buffer: Buffer) -> None:
        self.buffers.append(buffer)

    @property
    def total_bytes(self) -> int:
        return sum(b.used for b in self.buffers)

    def contiguous(self) -> bytes:
        """Linearise the chain (what a pullup/copy would produce)."""
        return b"".join(b.data for b in self.buffers)

    def __len__(self) -> int:
        return len(self.buffers)
