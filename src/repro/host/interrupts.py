"""Host interrupt delivery and its cost model.

Interrupts were the era's great hidden tax: several hundred CPU cycles
of context save/restore and dispatch before the handler's first useful
instruction.  Because an un-offloaded interface interrupts per *cell*
while the paper's architecture interrupts per *PDU* (or less, with
coalescing), the interrupt model is load-bearing for experiment T3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.host.cpu import HostCpu
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter


@dataclass(frozen=True)
class InterruptSpec:
    """Static interrupt cost parameters (host CPU cycles)."""

    #: Cycles from assertion to the handler's first instruction
    #: (pipeline drain, vector fetch, register save).
    entry_cycles: int = 200
    #: Cycles to unwind after the handler body returns.
    exit_cycles: int = 150
    #: Coalescing window in seconds: interrupts raised while one is
    #: pending within the window merge into a single delivery.  Zero
    #: disables coalescing.
    coalesce_window: float = 0.0

    def __post_init__(self) -> None:
        if self.entry_cycles < 0 or self.exit_cycles < 0:
            raise ValueError("interrupt cycle costs must be >= 0")
        if self.coalesce_window < 0:
            raise ValueError("coalesce window must be >= 0")


class InterruptController:
    """Delivers device interrupts onto the host CPU.

    ``raise_interrupt(handler_cycles, handler)`` charges the CPU for
    entry + handler + exit and invokes *handler* (a plain callable) when
    the handler body runs.  With a coalescing window configured,
    back-to-back raises merge: one delivery, one entry/exit, the sum of
    handler bodies -- how real drivers amortised per-PDU completions.
    """

    def __init__(
        self,
        sim: Simulator,
        cpu: HostCpu,
        spec: Optional[InterruptSpec] = None,
        name: str = "intc",
    ) -> None:
        self.sim = sim
        self.cpu = cpu
        self.spec = spec if spec is not None else InterruptSpec()
        self.name = name
        self.raised = Counter(f"{name}.raised")
        self.delivered = Counter(f"{name}.delivered")
        self.spurious = Counter(f"{name}.spurious")
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None
        self._pending: list[tuple[float, Optional[Callable[[], None]]]] = []
        self._pending_events: list[Event] = []
        self._delivery_scheduled = False

    def raise_interrupt(
        self,
        handler_cycles: float,
        handler: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Assert the device interrupt; event fires when handling is done."""
        self.raised.increment()
        if self.trace is not None:
            self.trace.emit("irq.raised", actor=self.name)
        done = self.sim.event()
        self._pending.append((handler_cycles, handler))
        self._pending_events.append(done)
        if not self._delivery_scheduled:
            self._delivery_scheduled = True
            self.sim.process(self._deliver())
        return done

    def inject_spurious(self, handler_cycles: float = 0.0) -> Event:
        """Fault-injection hook: a spurious assertion of the device line.

        The handler body finds no work (*handler_cycles* models its
        status-register poll), but entry/exit and dispatch are paid in
        full -- an interrupt storm steals host CPU without moving a
        byte.  Delivered through the normal coalescing machinery.
        """
        self.spurious.increment()
        return self.raise_interrupt(handler_cycles)

    def _deliver(self):
        if self.spec.coalesce_window > 0:
            yield self.sim.timeout(self.spec.coalesce_window)
        batch = self._pending
        events = self._pending_events
        self._pending = []
        self._pending_events = []
        self._delivery_scheduled = False
        self.delivered.increment()
        if self.trace is not None:
            self.trace.emit(
                "irq.delivered", actor=self.name, batch=len(batch)
            )
        total_handler = sum(cycles for cycles, _fn in batch)
        total = self.spec.entry_cycles + total_handler + self.spec.exit_cycles
        yield self.cpu.execute(total, tag="interrupt")
        for _cycles, fn in batch:
            if fn is not None:
                fn()
        for ev in events:
            ev.trigger(None)

    @property
    def coalescing_ratio(self) -> float:
        """Raised-to-delivered ratio (1.0 means no coalescing happened)."""
        return (
            self.raised.count / self.delivered.count
            if self.delivered.count
            else 0.0
        )
