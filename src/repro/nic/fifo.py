"""Link-side cell FIFOs.

Two small hardware FIFOs decouple the protocol engines from the cell
clock of the link:

- **transmit FIFO**: the TX engine pushes (blocking -- the engine stalls
  when it is ahead of the link), the framer drains one cell per slot;
- **receive FIFO**: the link pushes (non-blocking -- a full FIFO *drops*
  the cell, there is no backpressure on a network), the RX engine pops.

The asymmetry is the architectural point measured by F5: the TX FIFO
converts engine speed into stalls, the RX FIFO converts engine slowness
into loss.  Occupancy is tracked time-weighted for sizing studies.
"""

from __future__ import annotations

from typing import Optional

from repro.atm.cell import AtmCell
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter, TimeWeightedStat
from repro.sim.resources import Store


class CellFifo:
    """A bounded hardware cell FIFO with occupancy statistics."""

    def __init__(self, sim: Simulator, depth_cells: int, name: str = "fifo"):
        if depth_cells < 1:
            raise ValueError("FIFO depth must be >= 1 cell")
        self.sim = sim
        self.depth_cells = depth_cells
        self.name = name
        self._store = Store(sim, capacity=depth_cells, name=name)
        self.occupancy = TimeWeightedStat(sim.now, 0)
        self.overflows = Counter(f"{name}.overflow")
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def __len__(self) -> int:
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    @property
    def peak_occupancy(self) -> int:
        return self._store.peak_occupancy

    @property
    def cells_in(self) -> int:
        return self._store.total_put

    @property
    def cells_out(self) -> int:
        return self._store.total_got

    # -- producer side ------------------------------------------------------

    def put(self, cell: AtmCell) -> Event:
        """Blocking push (TX side): the event fires once space exists."""
        ev = self._store.put(cell)
        self.occupancy.record(self.sim.now, len(self._store))
        if ev.triggered:
            if self.trace is not None:
                self.trace.emit(
                    "fifo.enq", actor=self.name, cell=cell,
                    occupancy=len(self._store),
                )
        else:
            # The producer is stalled; sample again once accepted.
            def accepted(_ev: Event) -> None:
                self.occupancy.record(self.sim.now, len(self._store))
                if self.trace is not None:
                    self.trace.emit(
                        "fifo.enq", actor=self.name, cell=cell,
                        occupancy=len(self._store),
                    )

            ev.add_callback(accepted)
        return ev

    def try_put(self, cell: AtmCell) -> bool:
        """Non-blocking push (RX side): False means the cell was dropped."""
        accepted = self._store.try_put(cell)
        if accepted:
            self.occupancy.record(self.sim.now, len(self._store))
            if self.trace is not None:
                self.trace.emit(
                    "fifo.enq", actor=self.name, cell=cell,
                    occupancy=len(self._store),
                )
        else:
            self.overflows.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell,
                    reason="fifo_overflow",
                )
        return accepted

    # -- consumer side ---------------------------------------------------------

    def get(self) -> Event:
        """Blocking pop: the event fires with the next cell."""
        ev = self._store.get()

        def sample(got: Event) -> None:
            self.occupancy.record(self.sim.now, len(self._store))
            if self.trace is not None:
                self.trace.emit(
                    "fifo.deq", actor=self.name, cell=got.value,
                    occupancy=len(self._store),
                )

        ev.add_callback(sample)
        return ev

    def try_get(self) -> Optional[AtmCell]:
        """Non-blocking pop; None when empty."""
        ok, cell = self._store.try_get()
        if ok:
            self.occupancy.record(self.sim.now, len(self._store))
            if self.trace is not None:
                self.trace.emit(
                    "fifo.deq", actor=self.name, cell=cell,
                    occupancy=len(self._store),
                )
            return cell
        return None

    @property
    def fill_fraction(self) -> float:
        """Instantaneous occupancy as a fraction of depth (backpressure)."""
        return len(self._store) / self.depth_cells

    @property
    def cells_offered(self) -> int:
        """Everything pushed at the FIFO: accepted plus overflowed.

        ``cells_in`` counts only *accepted* cells (a rejected ``try_put``
        never reaches the store's put ledger), so the two buckets are
        disjoint and this sum never double-counts a dropped cell.
        """
        return self.cells_in + self.overflows.count

    @property
    def loss_ratio(self) -> float:
        offered = self.cells_offered
        return self.overflows.count / offered if offered else 0.0
