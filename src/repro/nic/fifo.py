"""Link-side cell FIFOs.

Two small hardware FIFOs decouple the protocol engines from the cell
clock of the link:

- **transmit FIFO**: the TX engine pushes (blocking -- the engine stalls
  when it is ahead of the link), the framer drains one cell per slot;
- **receive FIFO**: the link pushes (non-blocking -- a full FIFO *drops*
  the cell, there is no backpressure on a network), the RX engine pops.

The asymmetry is the architectural point measured by F5: the TX FIFO
converts engine speed into stalls, the RX FIFO converts engine slowness
into loss.  Occupancy is tracked time-weighted for sizing studies.

On the fast path (see ``docs/PERFORMANCE.md``) a FIFO additionally
moves whole :class:`~repro.atm.burst.CellBurst` batches as single store
items.  Capacity is then enforced on the *expanded* cell count
(``free_cells``), while the time-weighted occupancy statistic keeps its
scalar item-granularity semantics and is documented as excluded from
the fast-vs-reference equivalence surface.  Burst producers are
expected to be the FIFO's only producer (true for every scenario in
this repo): ``reserve()`` hands space to exactly one waiter at a time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple, Union

from repro.atm.burst import CellBurst
from repro.atm.cell import AtmCell
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter, TimeWeightedStat
from repro.sim.resources import Store

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md).  A burst
#: that ``try_put_burst`` cannot accept is re-offered cell-by-cell via
#: ``try_put``, which is where overflow drops are booked -- hence the
#: declared scalar-only overflow accounting.
PATH_PAIRS = [
    {
        "scalar": "CellFifo.put",
        "burst": "CellFifo.put_burst",
        "why": "blocking burst admission replays per-cell accounting",
    },
    {
        "scalar": "CellFifo.try_put",
        "burst": "CellFifo.try_put_burst",
        "scalar_only": [
            "stat:CellFifo.overflows.increment",
            "event:cell.drop",
            "reason:fifo_overflow",
        ],
        "why": (
            "a rejected burst is re-offered cell-by-cell through "
            "try_put, which books every overflow drop"
        ),
    },
]


class CellFifo:
    """A bounded hardware cell FIFO with occupancy statistics."""

    def __init__(self, sim: Simulator, depth_cells: int, name: str = "fifo"):
        if depth_cells < 1:
            raise ValueError("FIFO depth must be >= 1 cell")
        self.sim = sim
        self.depth_cells = depth_cells
        self.name = name
        self._store = Store(sim, capacity=depth_cells, name=name)
        self.occupancy = TimeWeightedStat(sim.now, 0)
        self.overflows = Counter(f"{name}.overflow")
        #: Expanded cell count currently accepted (a burst counts all of
        #: its cells) -- the capacity ledger for the burst fast path.
        self._cells = 0
        #: cells_in/cells_out corrections: the store's put/got ledgers
        #: count a burst as one item; these add the other k-1 cells.
        self._burst_extra_in = 0
        self._burst_extra_out = 0
        #: Fast-path producers waiting for expanded-cell space, FIFO
        #: order: (event, cell count, burst-or-None for a reservation).
        self._waiters: Deque[Tuple[Event, int, Optional[CellBurst]]] = deque()
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def __len__(self) -> int:
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    @property
    def peak_occupancy(self) -> int:
        return self._store.peak_occupancy

    @property
    def cells_in(self) -> int:
        return self._store.total_put + self._burst_extra_in

    @property
    def cells_out(self) -> int:
        return self._store.total_got + self._burst_extra_out

    @property
    def free_cells(self) -> int:
        """Capacity headroom in cells (bursts count every cell)."""
        return self.depth_cells - self._cells

    # -- producer side ------------------------------------------------------

    def put(self, cell: AtmCell) -> Event:
        """Blocking push (TX side): the event fires once space exists."""
        ev = self._store.put(cell)
        self.occupancy.record(self.sim.now, len(self._store))
        if ev.triggered:
            self._cells += 1
            if self.trace is not None:
                self.trace.emit(
                    "fifo.enq", actor=self.name, cell=cell,
                    occupancy=len(self._store),
                )
        else:
            # The producer is stalled; sample again once accepted.
            def accepted(_ev: Event) -> None:
                self._cells += 1
                self.occupancy.record(self.sim.now, len(self._store))
                if self.trace is not None:
                    self.trace.emit(
                        "fifo.enq", actor=self.name, cell=cell,
                        occupancy=len(self._store),
                    )

            ev.add_callback(accepted)
        return ev

    def try_put(self, cell: AtmCell) -> bool:
        """Non-blocking push (RX side): False means the cell was dropped."""
        accepted = self._store.try_put(cell)
        if accepted:
            self._cells += 1
            self.occupancy.record(self.sim.now, len(self._store))
            if self.trace is not None:
                self.trace.emit(
                    "fifo.enq", actor=self.name, cell=cell,
                    occupancy=len(self._store),
                )
        else:
            self.overflows.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell,
                    reason="fifo_overflow",
                )
        return accepted

    # -- producer side, fast path -------------------------------------------

    def can_accept(self, n_cells: int) -> bool:
        """True when a burst of *n_cells* would be accepted immediately."""
        return not self._waiters and self.free_cells >= n_cells

    def reserve(self, n_cells: int) -> Event:
        """Wait for *n_cells* of expanded capacity (fast-path TX).

        The returned event fires once the space exists; the producer must
        then hand over its burst immediately (same timestamp) with
        :meth:`put_burst`.  Space is granted in strict FIFO order with
        any queued burst puts.
        """
        if n_cells > self.depth_cells:
            raise ValueError(
                f"cannot reserve {n_cells} cells in a {self.depth_cells}-deep FIFO"
            )
        ev = Event(self.sim)
        if not self._waiters and self.free_cells >= n_cells:
            ev.trigger(None)
        else:
            self._waiters.append((ev, n_cells, None))
        return ev

    def put_burst(self, burst: CellBurst) -> Event:
        """Blocking push of a whole burst as one store item.

        The event fires once the burst is accepted (immediately if
        ``free_cells`` covers it -- the normal case after ``reserve``).
        """
        k = len(burst)
        if k > self.depth_cells:
            raise ValueError(
                f"burst of {k} cells exceeds FIFO depth {self.depth_cells}"
            )
        if not self._waiters and self.free_cells >= k:
            ev = self._accept_burst(burst)
        else:
            ev = Event(self.sim)
            self._waiters.append((ev, k, burst))
        return ev

    def try_put_burst(self, burst: CellBurst) -> bool:
        """Non-blocking burst push; False leaves the burst undelivered."""
        if self._waiters or self.free_cells < len(burst):
            return False
        self._accept_burst(burst)
        return True

    def _accept_burst(self, burst: CellBurst) -> Event:
        k = len(burst)
        self._cells += k
        self._burst_extra_in += k - 1
        # free_cells >= k implies the item store cannot be full.
        ev = self._store.put(burst)
        self.occupancy.record(self.sim.now, len(self._store))
        if self.trace is not None:
            for cell, arrival in zip(burst.cells, burst.arrivals):
                self.trace.emit(
                    "fifo.enq", actor=self.name, cell=cell,
                    occupancy=len(self._store), ts=arrival,
                )
        return ev

    def _drain_waiters(self) -> None:
        while self._waiters:
            ev, k, burst = self._waiters[0]
            if self.free_cells < k:
                return
            self._waiters.popleft()
            if burst is not None:
                k = len(burst)
                self._cells += k
                self._burst_extra_in += k - 1
                accepted = self._store.put(burst)
                assert accepted.triggered
                self.occupancy.record(self.sim.now, len(self._store))
                if self.trace is not None:
                    for cell, arrival in zip(burst.cells, burst.arrivals):
                        self.trace.emit(
                            "fifo.enq", actor=self.name, cell=cell,
                            occupancy=len(self._store), ts=arrival,
                        )
                ev.trigger(None)
            else:
                # A reservation: the space is handed to the producer, who
                # consumes it synchronously via put_burst when resumed.
                ev.trigger(None)
                return

    # -- consumer side ---------------------------------------------------------

    def get(self) -> Event:
        """Blocking pop: the event fires with the next cell (or burst)."""
        ev = self._store.get()

        def sample(got: Event) -> None:
            item = got.value
            if isinstance(item, CellBurst):
                k = len(item)
                self._cells -= k
                self._burst_extra_out += k - 1
                self.occupancy.record(self.sim.now, len(self._store))
                if self.trace is not None:
                    self.trace.emit(
                        "burst.flush", actor=self.name, n_cells=k,
                        occupancy=len(self._store),
                    )
            else:
                self._cells -= 1
                self.occupancy.record(self.sim.now, len(self._store))
                if self.trace is not None:
                    self.trace.emit(
                        "fifo.deq", actor=self.name, cell=item,
                        occupancy=len(self._store),
                    )
            self._drain_waiters()

        ev.add_callback(sample)
        return ev

    def try_get(self) -> Optional[Union[AtmCell, CellBurst]]:
        """Non-blocking pop; None when empty."""
        ok, item = self._store.try_get()
        if ok:
            k = len(item) if isinstance(item, CellBurst) else 1
            self._cells -= k
            if k > 1:
                self._burst_extra_out += k - 1
            self.occupancy.record(self.sim.now, len(self._store))
            if self.trace is not None:
                if isinstance(item, CellBurst):
                    self.trace.emit(
                        "burst.flush", actor=self.name, n_cells=k,
                        occupancy=len(self._store),
                    )
                else:
                    self.trace.emit(
                        "fifo.deq", actor=self.name, cell=item,
                        occupancy=len(self._store),
                    )
            self._drain_waiters()
            return item
        return None

    @property
    def fill_fraction(self) -> float:
        """Instantaneous occupancy as a fraction of depth (backpressure)."""
        return len(self._store) / self.depth_cells

    @property
    def cells_offered(self) -> int:
        """Everything pushed at the FIFO: accepted plus overflowed.

        ``cells_in`` counts only *accepted* cells (a rejected ``try_put``
        never reaches the store's put ledger), so the two buckets are
        disjoint and this sum never double-counts a dropped cell.
        """
        return self.cells_in + self.overflows.count

    @property
    def loss_ratio(self) -> float:
        offered = self.cells_offered
        return self.overflows.count / offered if offered else 0.0
