"""Adaptor buffer memory: the dual-ported staging store for cells.

Every byte that crosses the interface is written into and read out of
the adaptor's buffer memory (PDU staging on transmit, reassembly on
receive), so the memory needs roughly **2x the link payload rate per
direction** of bandwidth -- the budget experiment T4 audits.

The model tracks:

- capacity in cells, with allocation per reassembly context,
- total read/write traffic, giving the required bandwidth over a run,
- the configured physical bandwidth (width x clock), giving headroom.

Timing is *not* simulated per access (the engines' cycle budgets
already include their memory handshakes); this module is the audit
ledger that proves the budgets consistent with a buildable memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.sim.core import Simulator
from repro.sim.monitor import TimeWeightedStat


@dataclass(frozen=True)
class BufferMemorySpec:
    """Static description of the adaptor's cell buffer memory."""

    capacity_cells: int
    width_bytes: int = 4
    clock_hz: float = 25e6
    #: Dual-ported memory serves both ports at full rate; single-ported
    #: memory halves the effective bandwidth under concurrent access.
    dual_ported: bool = True

    def __post_init__(self) -> None:
        if self.capacity_cells < 1:
            raise ValueError("capacity must be >= 1 cell")
        if self.width_bytes < 1:
            raise ValueError("width must be >= 1 byte")
        if self.clock_hz <= 0:
            raise ValueError("memory clock must be positive")

    @property
    def port_bandwidth_bps(self) -> float:
        """Bit rate one port can sustain."""
        return self.clock_hz * self.width_bytes * 8

    @property
    def total_bandwidth_bps(self) -> float:
        """Aggregate bandwidth across ports."""
        return self.port_bandwidth_bps * (2 if self.dual_ported else 1)


class BufferExhausted(RuntimeError):
    """No adaptor buffer space for a new allocation."""


class AdaptorBufferMemory:
    """Dynamic occupancy and traffic ledger for the buffer memory."""

    def __init__(
        self,
        sim: Simulator,
        spec: BufferMemorySpec,
        name: str = "bufmem",
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._allocated: Dict[Hashable, int] = {}
        self._used_cells = 0
        self.occupancy = TimeWeightedStat(sim.now, 0)
        self.bytes_written = 0
        self.bytes_read = 0
        self.allocation_failures = 0

    # -- allocation ---------------------------------------------------------

    @property
    def used_cells(self) -> int:
        return self._used_cells

    @property
    def free_cells(self) -> int:
        return self.spec.capacity_cells - self._used_cells

    @property
    def fill_fraction(self) -> float:
        """Instantaneous occupancy as a fraction of capacity (backpressure)."""
        return self._used_cells / self.spec.capacity_cells

    def under_pressure(self, reserve_cells: int) -> bool:
        """True when free space has fallen below *reserve_cells*."""
        return self.free_cells < reserve_cells

    def allocate(self, owner: Hashable, cells: int) -> bool:
        """Reserve *cells* for *owner* (a VC context, a staging PDU).

        Returns False (and counts the failure) when space is short --
        the caller decides whether that drops a PDU or stalls.
        """
        if cells < 0:
            raise ValueError("negative allocation")
        if cells > self.free_cells:
            self.allocation_failures += 1
            return False
        self._allocated[owner] = self._allocated.get(owner, 0) + cells
        self._used_cells += cells
        self.occupancy.record(self.sim.now, self._used_cells)
        return True

    def grow(self, owner: Hashable, cells: int = 1) -> bool:
        """Extend an owner's allocation (a reassembly absorbing a cell)."""
        return self.allocate(owner, cells)

    def release(self, owner: Hashable) -> int:
        """Free everything held by *owner*; returns the cell count."""
        cells = self._allocated.pop(owner, 0)
        self._used_cells -= cells
        self.occupancy.record(self.sim.now, self._used_cells)
        return cells

    def held_by(self, owner: Hashable) -> int:
        return self._allocated.get(owner, 0)

    # -- traffic ledger --------------------------------------------------------

    def record_write(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative write size")
        self.bytes_written += nbytes

    def record_read(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative read size")
        self.bytes_read += nbytes

    def required_bandwidth_bps(self, elapsed: Optional[float] = None) -> float:
        """Average memory bandwidth the run actually needed."""
        span = self.sim.now if elapsed is None else elapsed
        if span <= 0:
            return 0.0
        return (self.bytes_written + self.bytes_read) * 8 / span

    def bandwidth_headroom(self, elapsed: Optional[float] = None) -> float:
        """Available-to-required bandwidth ratio (> 1 means feasible)."""
        needed = self.required_bandwidth_bps(elapsed)
        if needed == 0:
            return float("inf")
        return self.spec.total_bandwidth_bps / needed
