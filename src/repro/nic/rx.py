"""The receive pipeline: FIFO -> classify -> reassemble -> DMA -> host.

The costlier direction, and the paper's bottleneck.  Per arriving cell
the engine must: pop the FIFO, parse the header, find the reassembly
context (CAM handshake or software probe), update per-VC state, and
steer the payload into adaptor buffer memory.  First cells additionally
open a context and claim a buffer; last cells run the trailer check and
the completion path (descriptor, DMA to a host buffer, interrupt).

Loss behaviour is faithful to the hardware:

- a full receive FIFO **drops cells** (the network does not wait);
- a cell for an unopened VC is counted and discarded;
- adaptor buffer exhaustion drops the cell (the PDU then fails its
  CRC/length check -- same as network loss);
- host buffer-pool exhaustion drops the completed PDU.

Graceful degradation under overload (:class:`FrameDiscardPolicy`): a
cell lost at the interface ruins its whole frame anyway, so spending
FIFO slots and engine cycles on the frame's remaining cells only
steals capacity from frames that could still be delivered intact.
**Early Packet Discard** refuses whole frames at admission once the
FIFO or buffer memory crosses a pressure threshold; **Partial Packet
Discard** stops admitting a frame the moment one of its cells is
dropped, letting only the EOF through so the reassembler still sees
the frame boundary.  Every discarded cell lands in an itemised
counter, which is what lets :mod:`repro.faults.audit` prove cell
conservation end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.aal.interface import ReassemblyFailure, SduIndication
from repro.atm.addressing import VcAddress
from repro.atm.burst import CellBurst
from repro.atm.cell import PAYLOAD_SIZE, AtmCell
from repro.atm.vc import VcTable
from repro.host.dma import DmaEngine
from repro.host.memory import BufferPool
from repro.nic.bufmem import AdaptorBufferMemory
from repro.nic.cam import Cam
from repro.nic.costs import CellPosition, RxCostModel
from repro.nic.descriptors import RxCompletion
from repro.nic.engine import EngineClock
from repro.nic.fifo import CellFifo
from repro.nic.sarglue import Aal5Glue, SarGlue
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, ThroughputMeter, WelfordStat

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): the burst
#: replay lanes must reach the same stat/trace/cost effect sets as
#: their scalar reference lanes -- no declared asymmetries here, the
#: receive fast path is a faithful replay.
PATH_PAIRS = [
    {
        "scalar": "RxEngine._consume_cell",
        "burst": "RxEngine._consume_burst",
        "why": "burst service replays the scalar per-cell loop exactly",
    },
    {
        "scalar": "RxEngine.receive_cell",
        "burst": "RxEngine.receive_burst",
        "why": (
            "burst admission degrades to per-cell receive_cell under "
            "discard pressure, so its effect set is the scalar set"
        ),
    },
]


@dataclass(frozen=True)
class FrameDiscardPolicy:
    """EPD/PPD configuration for the receive path.

    *epd*: refuse whole frames at their first cell once the FIFO fill
    fraction reaches *fifo_threshold* or buffer-memory free space falls
    below *bufmem_reserve_cells*.  *ppd*: once a frame loses a cell at
    the interface (FIFO overflow or buffer exhaustion), drop its
    remaining cells at admission, passing only the EOF through so the
    reassembler still delineates frames.
    """

    epd: bool = True
    ppd: bool = True
    #: FIFO fill fraction at which EPD engages (0.5 = half full).
    fifo_threshold: float = 0.5
    #: EPD also engages when free buffer memory drops below this.
    bufmem_reserve_cells: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.fifo_threshold <= 1.0:
            raise ValueError("fifo_threshold must be in (0, 1]")
        if self.bufmem_reserve_cells < 0:
            raise ValueError("bufmem_reserve_cells must be >= 0")


class RxEngine:
    """The programmable reassembly engine."""

    def __init__(
        self,
        sim: Simulator,
        clock: EngineClock,
        costs: RxCostModel,
        fifo: CellFifo,
        vc_table: VcTable,
        dma: DmaEngine,
        bufmem: AdaptorBufferMemory,
        buffer_pool: BufferPool,
        cam: Optional[Cam] = None,
        glue: Optional[SarGlue] = None,
        discard: Optional[FrameDiscardPolicy] = None,
        context_quota: Optional[int] = None,
        name: str = "rx",
    ) -> None:
        self.sim = sim
        self.clock = clock
        self.costs = costs
        self.fifo = fifo
        self.vc_table = vc_table
        self.dma = dma
        self.bufmem = bufmem
        self.buffer_pool = buffer_pool
        self.cam = cam
        self.glue = glue if glue is not None else Aal5Glue()
        self.discard = discard
        self.name = name
        self.reassembler = self.glue.make_reassembler()
        if context_quota is not None:
            if not hasattr(self.reassembler, "max_contexts"):
                raise ValueError(
                    f"{type(self.reassembler).__name__} does not support "
                    "a reassembly-context quota"
                )
            self.reassembler.max_contexts = context_quota
            self.reassembler.on_evict = self._quota_evicted
        # Admission-side frame state for EPD/PPD: which VCs are mid-frame
        # (some cells of the current frame admitted) and which are being
        # frame-discarded ('epd' = nothing admitted, kill the EOF too;
        # 'ppd' = partially admitted, pass the EOF for delineation).
        self._mid_frame: Set[VcAddress] = set()
        self._discarding: Dict[VcAddress, str] = {}
        #: Called with each RxCompletion once the PDU sits in host memory.
        self.on_completion: Optional[Callable[[RxCompletion], None]] = None
        #: Called with the VC address whenever a partial PDU makes
        #: progress; the owner uses it to (re)arm reassembly timers.
        self.on_context_activity: Optional[Callable[[VcAddress], None]] = None
        #: Called with the VC address when the quota evicts its context;
        #: the owner uses it to disarm the reassembly timer.
        self.on_context_evicted: Optional[Callable[[VcAddress], None]] = None
        #: Called with each management (OAM) cell; the owner implements
        #: the loopback function.
        self.on_oam: Optional[Callable[[AtmCell], None]] = None
        #: Called with each admitted user cell right after SAR charging,
        #: before reassembly.  ABR destinations (repro.tm.abr) watch the
        #: EFCI bit here to fold congestion into returned RM cells.
        self.on_user_cell: Optional[Callable[[AtmCell], None]] = None
        self.cells_received = Counter(f"{name}.cells")
        self.oam_cells = Counter(f"{name}.oam-cells")
        self.cells_unknown_vc = Counter(f"{name}.unknown-vc")
        self.cells_no_buffer = Counter(f"{name}.no-adaptor-buffer")
        self.cells_hec_discarded = Counter(f"{name}.hec-discard")
        self.cells_epd_discarded = Counter(f"{name}.epd-discard")
        self.cells_ppd_discarded = Counter(f"{name}.ppd-discard")
        self.frames_discarded_early = Counter(f"{name}.epd-frames")
        self.frames_truncated = Counter(f"{name}.ppd-frames")
        self.pdus_delivered = Counter(f"{name}.pdus")
        self.cells_delivered_to_host = Counter(f"{name}.cells-to-host")
        self.pdus_no_host_buffer = Counter(f"{name}.no-host-buffer")
        self.cells_no_host_buffer = Counter(f"{name}.no-host-buffer-cells")
        self.throughput = ThroughputMeter(sim)
        #: Last-cell arrival to host-memory delivery, per PDU.
        self.completion_latency = WelfordStat()
        #: Observability hooks (repro.obs): a TraceRecorder and a
        #: CycleProfiler, or None.  Duck-typed -- the NIC package never
        #: imports the obs package.
        self.trace = None
        self.profiler = None
        if hasattr(self.reassembler, "on_discard"):
            self.reassembler.on_discard = self._reassembly_discarded
        self._process = None

    def _reassembly_discarded(self, vc, why, cells: int) -> None:
        """Reassembler gave up on a PDU: trace the drop with its cause."""
        if self.trace is not None:
            self.trace.emit(
                "pdu.drop",
                actor=self.name,
                vc=vc,
                reason=why.value,
                cells=cells,
            )

    @property
    def cam_fitted(self) -> bool:
        return self.cam is not None

    # -- link side -------------------------------------------------------------

    def _epd_pressure(self) -> bool:
        """Admission pressure check: engage EPD before the hard overflow."""
        policy = self.discard
        if policy is None or not policy.epd:
            return False
        if self.fifo.fill_fraction >= policy.fifo_threshold:
            return True
        return policy.bufmem_reserve_cells > 0 and self.bufmem.under_pressure(
            policy.bufmem_reserve_cells
        )

    def receive_cell(self, cell: AtmCell) -> None:
        """Cell sink for the incoming link; full FIFO drops the cell.

        This is the hardware admission point, so the EPD/PPD frame
        filter lives here: it costs no engine cycles, exactly like the
        comparator logic in front of a real receive FIFO.  Delineation
        state tracks *admitted* cells only -- a frame whose EOF
        overflowed stays open in the reassembler and merges with its
        successor, which is AAL5's documented failure mode and not
        something admission logic can repair.
        """
        if cell.meta.get("hec_error"):
            # The framer's HEC check rejects the cell before the FIFO;
            # an uncorrectable header is never worth a FIFO slot.
            self.cells_hec_discarded.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell, reason="hec"
                )
            return
        if not cell.is_user_cell:
            # Management cells bypass the frame filter (they carry no
            # frame structure); a full FIFO still drops them.
            self.fifo.try_put(cell)
            return
        vc = VcAddress(cell.vpi, cell.vci)
        eof = self.glue.is_eof(cell)
        mode = self._discarding.get(vc)
        if mode is not None:
            if not eof:
                counter = (
                    self.cells_epd_discarded
                    if mode == "epd"
                    else self.cells_ppd_discarded
                )
                counter.increment()
                if self.trace is not None:
                    self.trace.emit(
                        "cell.drop", actor=self.name, cell=cell, reason=mode
                    )
                return
            del self._discarding[vc]
            self._mid_frame.discard(vc)
            if mode == "epd":
                # Nothing of this frame was admitted: killing the EOF
                # too leaves the reassembler perfectly unaware of it.
                self.cells_epd_discarded.increment()
                if self.trace is not None:
                    self.trace.emit(
                        "cell.drop", actor=self.name, cell=cell, reason="epd"
                    )
                return
            # PPD: admit the EOF so the (truncated) frame delineates.
            if not self.fifo.try_put(cell):
                pass  # overflow counted by the FIFO; frames may merge
            return

        first = vc not in self._mid_frame
        if first and self._epd_pressure():
            self.frames_discarded_early.increment()
            self.cells_epd_discarded.increment()
            if self.trace is not None:
                self.trace.emit("rx.frame.epd", actor=self.name, vc=vc)
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell, reason="epd"
                )
            if not eof:
                self._discarding[vc] = "epd"
            return

        if self.fifo.try_put(cell):
            if eof:
                self._mid_frame.discard(vc)
            else:
                self._mid_frame.add(vc)
            return

        # Hard overflow (counted by the FIFO).  With PPD, convert the
        # now-doomed frame's remaining cells into admission discards.
        policy = self.discard
        if eof:
            self._mid_frame.discard(vc)
        elif policy is not None and policy.ppd:
            self.frames_truncated.increment()
            if self.trace is not None:
                self.trace.emit("rx.frame.truncated", actor=self.name, vc=vc)
            # A holed first cell means nothing was admitted: the whole
            # frame (EOF included) can vanish cleanly, as in EPD.
            self._discarding[vc] = "epd" if first else "ppd"

    def receive_burst(self, burst: CellBurst) -> None:
        """Burst sink: admit a pre-announced run of cells in one call.

        Only the plain data path rides the burst lane.  Anything the
        admission logic must *observe* per cell -- an EPD/PPD policy, a
        HEC reject, a management cell -- falls back to cell-at-a-time
        admission at the burst's delivery time, trading the pre-announced
        arrival spread for scalar admission semantics (scenarios that
        exercise those paths keep their producers scalar; see
        ``docs/PERFORMANCE.md``).
        """
        if self.discard is not None or any(
            cell.meta.get("hec_error") or not cell.is_user_cell
            for cell in burst.cells
        ):
            for cell in burst.cells:
                self.receive_cell(cell)
            return
        if not self.fifo.try_put_burst(burst):
            # Not enough expanded capacity for the whole run: degrade to
            # per-cell admission so each cell drops (or fits) on its own.
            for cell in burst.cells:
                self.fifo.try_put(cell)

    # -- engine loop -------------------------------------------------------------

    def start(self) -> None:
        """Launch the firmware loop (idempotent)."""
        if self._process is None:
            self._process = self.sim.process(self._loop())

    def _position_of(self, vc: VcAddress, cell: AtmCell) -> CellPosition:
        """Classify the cell by reassembly state + EOF mark.

        The engine knows this from its context table before touching the
        payload: no open context means a first (or only) cell.
        """
        open_context = self.glue.has_context(self.reassembler, vc)
        if self.glue.is_eof(cell):
            return CellPosition.LAST if open_context else CellPosition.ONLY
        return CellPosition.MIDDLE if open_context else CellPosition.FIRST

    def _loop(self):
        while True:
            item = yield self.fifo.get()
            if isinstance(item, CellBurst):
                if self.profiler is not None:
                    self.profiler.record_burst("rx", len(item))
                end = self._consume_burst(item)
                if end > self.sim.now:
                    yield self.sim.wake_at(end)
                continue
            yield from self._consume_cell(item)

    def _consume_cell(self, cell: AtmCell):
        """Serve one cell off the FIFO: the scalar reference lane.

        The dual of :meth:`_consume_burst`, which replays exactly this
        sequence of charges, counters and trace events arithmetically.
        """
        costs = self.costs
        self.cells_received.increment()
        vc = VcAddress(cell.vpi, cell.vci)

        # Management cells peel off before classification: the OAM
        # unit (hardware-assisted) handles them so the host never
        # sees a cell.
        if not cell.is_user_cell:
            if self.profiler is not None:
                self.profiler.record_oam(costs.oam_breakdown())
            yield self.clock.work(
                costs.fifo_pop + costs.header_parse + costs.oam_handling,
                tag="rx-oam",
            )
            self.oam_cells.increment()
            if self.trace is not None:
                self.trace.emit("rx.cell.oam", actor=self.name, cell=cell)
            if self.on_oam is not None:
                self.on_oam(cell)
            return

        # Classification: CAM handshake (or software probe) resolves
        # the VC.  A miss is a cell for a connection we never opened.
        table_size = len(self.vc_table)
        if self.cam is not None:
            known = self.cam.lookup(vc) is not None
        else:
            known = self.vc_table.lookup(vc) is not None
        if not known:
            if self.profiler is not None:
                lookup_op = (
                    "vci_lookup_cam"
                    if self.cam_fitted
                    else "vci_lookup_software"
                )
                self.profiler.record_ops(
                    "rx",
                    {
                        "fifo_pop": costs.fifo_pop,
                        "header_parse": costs.header_parse,
                        lookup_op: costs.lookup_cycles(
                            self.cam_fitted, table_size
                        ),
                    },
                )
            yield self.clock.work(
                costs.fifo_pop
                + costs.header_parse
                + costs.lookup_cycles(self.cam_fitted, table_size),
                tag="rx-unknown-vc",
            )
            self.cells_unknown_vc.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop",
                    actor=self.name,
                    cell=cell,
                    reason="unknown_vc",
                )
            return

        position = self._position_of(vc, cell)
        if self.profiler is not None:
            self.profiler.record_cell(
                "rx",
                position,
                costs.cell_breakdown(position, self.cam_fitted, table_size),
                extra=self.glue.rx_extra_cycles,
            )
        yield self.clock.work(
            costs.cell_cycles(position, self.cam_fitted, table_size)
            + self.glue.rx_extra_cycles,
            tag="rx-cell",
        )
        if self.trace is not None:
            self.trace.emit(
                "rx.cell.sar",
                actor=self.name,
                cell=cell,
                position=position.value,
            )
        if self.on_user_cell is not None:
            self.on_user_cell(cell)

        # Payload into adaptor buffer memory; exhaustion loses the
        # cell exactly like network loss would.
        if not self.bufmem.grow(("rx", vc), 1):
            self.cells_no_buffer.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop",
                    actor=self.name,
                    cell=cell,
                    reason="no_adaptor_buffer",
                )
            # The frame is now holed; with PPD, stop admitting its
            # remaining cells (only while the frame is still open at
            # admission -- its EOF may already have been accepted).
            if (
                self.discard is not None
                and self.discard.ppd
                and not self.glue.is_eof(cell)
                and vc in self._mid_frame
                and vc not in self._discarding
            ):
                self.frames_truncated.increment()
                self._discarding[vc] = "ppd"
            return
        self.bufmem.record_write(PAYLOAD_SIZE)

        indication = self.reassembler.receive_cell(cell, now=self.sim.now)
        if indication is None:
            if self.glue.has_context(self.reassembler, vc):
                if self.on_context_activity is not None:
                    self.on_context_activity(vc)
            else:
                # The reassembler closed the context with a failure
                # verdict (CRC/length/oversize): reclaim the buffer.
                self.bufmem.release(("rx", vc))
            return
        self._complete(vc, cell, indication)

    def _consume_burst(self, burst: CellBurst) -> float:
        """Replay a burst's cells at their virtual service times.

        The scalar loop's recurrence is ``start_i = max(end_{i-1},
        arrive_i)``: the engine serves each cell when it is both free
        and the cell has arrived.  This method runs that recurrence
        arithmetically -- identical per-cell counters, cycle charges
        (same float accumulation order via
        :meth:`~repro.nic.engine.EngineClock.charge_at`), profiler
        records, and trace events (stamped at their virtual times) --
        and returns the final service-end time for the caller's single
        ``timeout``.  PDU completions fire as real events at their exact
        virtual times via ``schedule_call``, so downstream DMA/host
        timing matches the scalar path to the bit.
        """
        costs = self.costs
        clock = self.clock
        sim = self.sim
        charge_at = clock.charge_at
        count_cell = self.cells_received.increment
        profiler = self.profiler
        trace = self.trace
        cam = self.cam
        vc_table = self.vc_table
        cam_fitted = self.cam_fitted
        glue = self.glue
        rx_extra = glue.rx_extra_cycles
        bufmem = self.bufmem
        receive_cell = self.reassembler.receive_cell
        on_context_activity = self.on_context_activity
        end = sim.now + clock.take_stall()
        for cell, available in zip(burst.cells, burst.arrivals):
            start = end if end > available else available
            count_cell()
            vc = VcAddress(cell.vpi, cell.vci)

            if not cell.is_user_cell:
                if profiler is not None:
                    profiler.record_oam(costs.oam_breakdown())
                end = start + charge_at(
                    costs.fifo_pop + costs.header_parse + costs.oam_handling,
                    "rx-oam",
                    start,
                )
                self.oam_cells.increment()
                if trace is not None:
                    trace.emit(
                        "rx.cell.oam", actor=self.name, cell=cell, ts=end
                    )
                if self.on_oam is not None:
                    self.on_oam(cell)
                continue

            table_size = len(vc_table)
            if cam is not None:
                known = cam.lookup(vc) is not None
            else:
                known = vc_table.lookup(vc) is not None
            if not known:
                if profiler is not None:
                    lookup_op = (
                        "vci_lookup_cam"
                        if cam_fitted
                        else "vci_lookup_software"
                    )
                    profiler.record_ops(
                        "rx",
                        {
                            "fifo_pop": costs.fifo_pop,
                            "header_parse": costs.header_parse,
                            lookup_op: costs.lookup_cycles(
                                cam_fitted, table_size
                            ),
                        },
                    )
                end = start + charge_at(
                    costs.fifo_pop
                    + costs.header_parse
                    + costs.lookup_cycles(cam_fitted, table_size),
                    "rx-unknown-vc",
                    start,
                )
                self.cells_unknown_vc.increment()
                if trace is not None:
                    trace.emit(
                        "cell.drop",
                        actor=self.name,
                        cell=cell,
                        reason="unknown_vc",
                        ts=end,
                    )
                continue

            position = self._position_of(vc, cell)
            if profiler is not None:
                profiler.record_cell(
                    "rx",
                    position,
                    costs.cell_breakdown(position, cam_fitted, table_size),
                    extra=rx_extra,
                )
            end = start + charge_at(
                costs.cell_cycles(position, cam_fitted, table_size)
                + rx_extra,
                "rx-cell",
                start,
            )
            if trace is not None:
                trace.emit(
                    "rx.cell.sar",
                    actor=self.name,
                    cell=cell,
                    position=position.value,
                    ts=end,
                )
            if self.on_user_cell is not None:
                self.on_user_cell(cell)

            if not bufmem.grow(("rx", vc), 1):
                self.cells_no_buffer.increment()
                if trace is not None:
                    trace.emit(
                        "cell.drop",
                        actor=self.name,
                        cell=cell,
                        reason="no_adaptor_buffer",
                        ts=end,
                    )
                if (
                    self.discard is not None
                    and self.discard.ppd
                    and not glue.is_eof(cell)
                    and vc in self._mid_frame
                    and vc not in self._discarding
                ):
                    self.frames_truncated.increment()
                    self._discarding[vc] = "ppd"
                continue
            bufmem.record_write(PAYLOAD_SIZE)

            indication = receive_cell(cell, now=end)
            if indication is None:
                if glue.has_context(self.reassembler, vc):
                    if on_context_activity is not None:
                        on_context_activity(vc)
                else:
                    bufmem.release(("rx", vc))
                continue
            # A PDU completed mid-burst.  The adaptor-memory bookkeeping
            # must happen HERE, in replay order -- the next cell in this
            # burst may regrow the same VC's allocation -- while the
            # host-side epilogue fires as a real event at its exact
            # virtual time (end > now: the charge above is positive).
            bufmem.record_read(indication.size)
            bufmem.release(("rx", vc))
            if trace is not None:
                trace.emit(
                    "rx.pdu.done",
                    actor=self.name,
                    cell=cell,
                    cells=indication.cells,
                    size=indication.size,
                    ts=end,
                )
            sim.schedule_call_at(
                end, self._complete_host, vc, cell, indication, end
            )
        return end

    def _complete(
        self, vc: VcAddress, last_cell: AtmCell, indication: SduIndication
    ) -> None:
        """Last-cell epilogue: claim a host buffer and post the DMA.

        The engine only *posts* the transfer (those cycles are in the
        last-cell budget) -- the DMA machine moves the bytes while the
        engine turns to the next arriving cell.  Stalling the engine for
        the whole PDU DMA would leave the receive FIFO uncovered for
        tens of cell slots per completion, which is exactly the overrun
        the architecture's separate DMA hardware exists to prevent.
        """
        arrived = self.sim.now
        self.bufmem.record_read(indication.size)
        self.bufmem.release(("rx", vc))
        if self.trace is not None:
            self.trace.emit(
                "rx.pdu.done",
                actor=self.name,
                cell=last_cell,
                cells=indication.cells,
                size=indication.size,
            )
        self._complete_host(vc, last_cell, indication, arrived)

    def _complete_host(
        self,
        vc: VcAddress,
        last_cell: AtmCell,
        indication: SduIndication,
        arrived: float,
    ) -> None:
        """Host-side completion: claim a buffer and post the DMA."""
        host_buffer = self.buffer_pool.allocate(owner=str(vc))
        if host_buffer is None or host_buffer.capacity < indication.size:
            if host_buffer is not None:
                self.buffer_pool.release(host_buffer)
            self.pdus_no_host_buffer.increment()
            self.cells_no_host_buffer.increment(indication.cells)
            if self.trace is not None:
                self.trace.emit(
                    "pdu.drop",
                    actor=self.name,
                    cell=last_cell,
                    reason="no_host_buffer",
                    cells=indication.cells,
                )
            return
        self.sim.process(
            self._dma_and_deliver(vc, last_cell, indication, host_buffer, arrived)
        )

    def _dma_and_deliver(
        self,
        vc: VcAddress,
        last_cell: AtmCell,
        indication: SduIndication,
        host_buffer,
        arrived: float,
    ):
        # The DMA channel is a capacity-1 resource, so back-to-back
        # completions transfer strictly in order.
        yield self.dma.transfer(indication.size)
        host_buffer.write(indication.sdu)

        completion = RxCompletion(
            vc=vc,
            sdu=indication.sdu,
            buffer=host_buffer,
            received_at=arrived,
            delivered_at=self.sim.now,
            cells=indication.cells,
            user_indication=indication.user_indication,
            posted_at=last_cell.meta.get("posted_at"),
        )
        self.pdus_delivered.increment()
        self.cells_delivered_to_host.increment(indication.cells)
        self.throughput.account(indication.size)
        self.completion_latency.add(self.sim.now - arrived)
        if self.on_completion is not None:
            self.on_completion(completion)

    # -- hygiene ---------------------------------------------------------------

    def _quota_evicted(self, vc: VcAddress) -> None:
        """Reassembler quota evicted *vc*: reclaim its buffer and timer."""
        self.bufmem.release(("rx", vc))
        if self.trace is not None:
            self.trace.emit("rx.context.evicted", actor=self.name, vc=vc)
        if self.on_context_evicted is not None:
            self.on_context_evicted(vc)

    def expire_context(self, vc: VcAddress) -> bool:
        """Reassembly-timeout hook: abort a stale partial PDU."""
        aborted = self.glue.abort_context(
            self.reassembler, vc, ReassemblyFailure.TIMEOUT
        )
        if aborted:
            self.bufmem.release(("rx", vc))
        return aborted
