"""SAR glue: one interface over the two adaptation layers.

The protocol engines are agnostic about *which* adaptation layer they
run -- precisely the paper's argument for programmable engines (the
AALs were still in committee in 1991; AAL3/4 was the standard, the
simple-and-efficient layer that became AAL5 was the proposal).  This
module gives the engines a single surface:

- :class:`Aal5Glue` -- zero per-cell overhead, EOF in the PTI bit;
- :class:`Aal34Glue` -- 4 bytes per cell of SAR header/trailer, EOF in
  the segment-type field, 44-byte payloads.

The glue also carries the per-cell *extra* engine cycles the layer
costs (building/parsing the SAR fields), so the efficiency comparison
(experiment A1) reflects both the wire tax and the engine tax.
"""

from __future__ import annotations

from typing import Protocol

from repro.aal.aal5 import Aal5Reassembler, Aal5Segmenter, cells_for_sdu
from repro.aal.aal34 import (
    AAL34_SAR_PAYLOAD,
    Aal34Reassembler,
    Aal34Segmenter,
    SarSegmentType,
)
from repro.aal.interface import ReassemblyFailure
from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell


class SarGlue(Protocol):
    """What the TX/RX engines need from an adaptation layer."""

    #: Engine cycles added to every cell for this layer's SAR fields.
    tx_extra_cycles: int
    rx_extra_cycles: int

    def cells_for(self, sdu_size: int) -> int: ...  # pragma: no cover

    def make_segmenter(self, vc: VcAddress): ...  # pragma: no cover

    def segment(self, segmenter, sdu: bytes, uu: int): ...  # pragma: no cover

    def make_reassembler(self): ...  # pragma: no cover

    def is_eof(self, cell: AtmCell) -> bool: ...  # pragma: no cover

    def has_context(self, reassembler, vc: VcAddress) -> bool: ...  # pragma: no cover

    def abort_context(self, reassembler, vc, why) -> bool: ...  # pragma: no cover


class Aal5Glue:
    """The zero-overhead layer: EOF rides the PTI, no per-cell fields."""

    name = "aal5"
    tx_extra_cycles = 0
    rx_extra_cycles = 0

    def cells_for(self, sdu_size: int) -> int:
        return cells_for_sdu(sdu_size)

    def make_segmenter(self, vc: VcAddress) -> Aal5Segmenter:
        return Aal5Segmenter(vc)

    def segment(self, segmenter: Aal5Segmenter, sdu: bytes, uu: int):
        return segmenter.segment(sdu, uu=uu)

    def make_reassembler(self) -> Aal5Reassembler:
        return Aal5Reassembler()

    def is_eof(self, cell: AtmCell) -> bool:
        return cell.end_of_frame

    def has_context(self, reassembler: Aal5Reassembler, vc: VcAddress) -> bool:
        return reassembler.has_context(vc)

    def abort_context(
        self,
        reassembler: Aal5Reassembler,
        vc: VcAddress,
        why: ReassemblyFailure,
    ) -> bool:
        return reassembler.abort_context(vc, why)


class Aal34Glue:
    """The 1991-standard layer: 4 bytes and a few cycles per cell.

    The NIC data path runs a single MID stream (MID 0) per VC -- MID
    multiplexing is an AAL3/4 *service* feature exercised at the
    library level (see tests/test_aal34.py), not something the host
    interface of the paper needed.
    """

    name = "aal3/4"
    #: Build the 2-byte header + LI field and feed the CRC-10 unit.
    tx_extra_cycles = 5
    #: Parse header, check LI, consume the CRC-10 verdict.
    rx_extra_cycles = 6
    MID = 0

    def cells_for(self, sdu_size: int) -> int:
        cpcs = 4 + sdu_size + (-sdu_size % 4) + 4
        return -(-cpcs // AAL34_SAR_PAYLOAD)

    def make_segmenter(self, vc: VcAddress) -> Aal34Segmenter:
        return Aal34Segmenter(vc, mid=self.MID)

    def segment(self, segmenter: Aal34Segmenter, sdu: bytes, uu: int):
        # AAL3/4 has no CPCS-UU byte; the indication is dropped.
        return segmenter.segment(sdu)

    def make_reassembler(self) -> Aal34Reassembler:
        return Aal34Reassembler()

    def is_eof(self, cell: AtmCell) -> bool:
        segment_type = cell.payload[0] >> 6
        return segment_type in (SarSegmentType.EOM, SarSegmentType.SSM)

    def has_context(self, reassembler: Aal34Reassembler, vc: VcAddress) -> bool:
        return reassembler.has_context(vc, self.MID)

    def abort_context(
        self,
        reassembler: Aal34Reassembler,
        vc: VcAddress,
        why: ReassemblyFailure,
    ) -> bool:
        return reassembler.abort_context(vc, self.MID, why)


def glue_for(aal_name: str) -> SarGlue:
    """Glue instance for a config's ``aal`` field ('aal5' or 'aal3/4')."""
    if aal_name == "aal5":
        return Aal5Glue()
    if aal_name in ("aal3/4", "aal34"):
        return Aal34Glue()
    raise ValueError(f"unknown adaptation layer {aal_name!r}")
