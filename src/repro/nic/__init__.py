"""The paper's contribution: the offloaded ATM host-network interface.

The architecture, reconstructed from the SIGCOMM '91 design:

- the host posts whole PDUs through descriptor rings; it never sees a
  cell (:mod:`repro.nic.descriptors`);
- a programmable **transmit engine** fetches each PDU by DMA, segments
  it, and streams cells into a link-side FIFO (:mod:`repro.nic.tx`);
- a programmable **receive engine** pops arriving cells from its FIFO,
  steers them by a CAM-assisted VCI lookup into per-VC reassembly
  state, and DMAs completed PDUs to host buffers, interrupting once per
  PDU (:mod:`repro.nic.rx`);
- hardware assists do the per-byte work: CRC units, cell FIFOs
  (:mod:`repro.nic.fifo`), the CAM (:mod:`repro.nic.cam`) and the
  dual-port adaptor buffer memory (:mod:`repro.nic.bufmem`).

Every engine operation carries a cycle budget from
:mod:`repro.nic.costs` -- the same instruction-level quantities the
paper's evaluation is built from -- so throughput and latency emerge
from the budgets rather than being asserted.
"""

from repro.nic.bufmem import AdaptorBufferMemory, BufferMemorySpec
from repro.nic.cam import Cam
from repro.nic.config import (
    NicConfig,
    aurora_oc3,
    aurora_oc12,
    taxi_lan,
)
from repro.nic.costs import (
    CellPosition,
    EngineSpec,
    I960_16MHZ,
    I960_25MHZ,
    I960_33MHZ,
    RxCostModel,
    TxCostModel,
)
from repro.nic.descriptors import RxCompletion, TxDescriptor
from repro.nic.engine import EngineClock
from repro.nic.fifo import CellFifo
from repro.nic.nic import HostNetworkInterface, NicStats, OamPingTimeout, connect
from repro.nic.rx import FrameDiscardPolicy
from repro.nic.sarglue import Aal5Glue, Aal34Glue, glue_for

__all__ = [
    "Aal34Glue",
    "Aal5Glue",
    "AdaptorBufferMemory",
    "BufferMemorySpec",
    "Cam",
    "CellFifo",
    "CellPosition",
    "EngineClock",
    "EngineSpec",
    "FrameDiscardPolicy",
    "HostNetworkInterface",
    "I960_16MHZ",
    "I960_25MHZ",
    "I960_33MHZ",
    "NicConfig",
    "NicStats",
    "OamPingTimeout",
    "RxCompletion",
    "RxCostModel",
    "TxCostModel",
    "TxDescriptor",
    "aurora_oc12",
    "aurora_oc3",
    "connect",
    "glue_for",
    "taxi_lan",
]
