"""Content-addressable memory for VCI-to-context steering.

The receive engine must map each arriving cell's (VPI, VCI) to its
reassembly context in a handful of cycles.  A CAM does the match in
hardware; the alternative -- a software hash probe on the engine -- is
an order of magnitude more cycles and is modelled through the cost
model's ``vci_lookup_software`` budget (the CAM-less ablation).

Functionally the CAM is an associative table of bounded size; the
bound matters because it caps the number of *simultaneously open* VCs
the receive path can serve at full rate.  Two policies exist for the
moment the bound is hit:

- ``"none"`` (the default, and the seed behaviour): programming a new
  entry into a full CAM raises :class:`CamFullError` -- the driver must
  refuse the VC, which is what admission control is for;
- ``"lru"``: the least recently *matched* entry is silently evicted to
  make room, the way drivers manage a CAM smaller than the connection
  table under massive multiplexing (see ``docs/SCALE.md``).  Cells for
  an evicted-but-open VC then miss -- tallied separately as
  :attr:`Cam.capacity_misses` so a scale run can distinguish "VC never
  opened" from "CAM too small".
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generic, Hashable, Optional, Set, Tuple, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

#: Legal values for :attr:`Cam.eviction`.
EVICTION_POLICIES = ("none", "lru")


class CamFullError(RuntimeError):
    """No free CAM entry for a new key."""


class Cam(Generic[K, V]):
    """A fixed-capacity associative lookup table."""

    def __init__(
        self, capacity: int, name: str = "cam", eviction: str = "none"
    ) -> None:
        if capacity < 1:
            raise ValueError("CAM capacity must be >= 1")
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r} (use {EVICTION_POLICIES})"
            )
        self.capacity = capacity
        self.name = name
        self.eviction = eviction
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Entries displaced by the LRU policy since start.
        self.evictions = 0
        #: Misses for keys that *were* programmed but lost their entry
        #: to eviction -- the capacity pressure signal a scale run
        #: charts against CAM size.
        self.capacity_misses = 0
        #: Keys evicted and not since reprogrammed or removed.
        self._evicted: Set[K] = set()
        #: Keys the LRU policy must never displace (system channels:
        #: signalling, OAM).  See :meth:`pin`.
        self._pinned: Set[K] = set()
        #: Called with (key, value) when the LRU policy displaces an
        #: entry, so the owner (e.g. the NIC) can account for it.
        self.on_evict: Optional[Callable[[K, V], None]] = None
        #: Fault-injection hook: when set and it returns True for a key,
        #: the lookup reports a miss even though the entry is programmed
        #: (a flaky comparand array / parity-disabled entry).  Forced
        #: misses are tallied separately from genuine ones.
        self.fault_hook: Optional[Callable[[K], bool]] = None
        self.forced_misses = 0
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        #: Lookups then emit ``rx.cam.hit`` / ``rx.cam.miss`` events,
        #: and LRU displacement emits ``rx.cam.evict``.
        self.trace = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def pin(self, key: K) -> None:
        """Exempt *key* from LRU displacement (signalling/OAM channels).

        A full CAM whose entries are all pinned behaves like the
        ``"none"`` policy: the next install raises
        :class:`CamFullError`.
        """
        self._pinned.add(key)

    def _evict_lru(self) -> Tuple[K, V]:
        for victim in self._entries:
            if victim not in self._pinned:
                break
        else:
            raise CamFullError(
                f"{self.name}: every entry is pinned (capacity "
                f"{self.capacity})"
            )
        value = self._entries.pop(victim)
        self.evictions += 1
        self._evicted.add(victim)
        if self.trace is not None:
            self.trace.emit("rx.cam.evict", actor=self.name, vc=victim)
        if self.on_evict is not None:
            self.on_evict(victim, value)
        return victim, value

    def install(self, key: K, value: V) -> None:
        """Program an entry.

        A full CAM raises :class:`CamFullError` under the ``"none"``
        policy and displaces the least recently matched entry under
        ``"lru"``.
        """
        if key not in self._entries and len(self._entries) >= self.capacity:
            if self.eviction == "none":
                raise CamFullError(
                    f"{self.name}: no free entry for {key!r} "
                    f"(capacity {self.capacity})"
                )
            self._evict_lru()
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._evicted.discard(key)

    def remove(self, key: K) -> Optional[V]:
        """Invalidate an entry; returns its value or None."""
        self._evicted.discard(key)
        self._pinned.discard(key)
        return self._entries.pop(key, None)

    def lookup(self, key: K) -> Optional[V]:
        """Associative match; None on miss (cell for an unknown VC)."""
        if self.fault_hook is not None and self.fault_hook(key):
            self.forced_misses += 1
            self.misses += 1
            if self.trace is not None:
                self.trace.emit(
                    "rx.cam.miss", actor=self.name, vc=key, forced=True
                )
            return None
        value = self._entries.get(key)
        if value is None and key not in self._entries:
            self.misses += 1
            if key in self._evicted:
                self.capacity_misses += 1
            if self.trace is not None:
                self.trace.emit("rx.cam.miss", actor=self.name, vc=key)
            return None
        self.hits += 1
        if self.eviction == "lru":
            self._entries.move_to_end(key)
        if self.trace is not None:
            self.trace.emit("rx.cam.hit", actor=self.name, vc=key)
        return value

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
