"""Content-addressable memory for VCI-to-context steering.

The receive engine must map each arriving cell's (VPI, VCI) to its
reassembly context in a handful of cycles.  A CAM does the match in
hardware; the alternative -- a software hash probe on the engine -- is
an order of magnitude more cycles and is modelled through the cost
model's ``vci_lookup_software`` budget (the CAM-less ablation).

Functionally the CAM is an associative table of bounded size; the
bound matters because it caps the number of *simultaneously open* VCs
the receive path can serve at full rate.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class CamFullError(RuntimeError):
    """No free CAM entry for a new key."""


class Cam(Generic[K, V]):
    """A fixed-capacity associative lookup table."""

    def __init__(self, capacity: int, name: str = "cam") -> None:
        if capacity < 1:
            raise ValueError("CAM capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._entries: Dict[K, V] = {}
        self.hits = 0
        self.misses = 0
        #: Fault-injection hook: when set and it returns True for a key,
        #: the lookup reports a miss even though the entry is programmed
        #: (a flaky comparand array / parity-disabled entry).  Forced
        #: misses are tallied separately from genuine ones.
        self.fault_hook: Optional[Callable[[K], bool]] = None
        self.forced_misses = 0
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        #: Lookups then emit ``rx.cam.hit`` / ``rx.cam.miss`` events.
        self.trace = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def install(self, key: K, value: V) -> None:
        """Program an entry; raises :class:`CamFullError` when full."""
        if key not in self._entries and len(self._entries) >= self.capacity:
            raise CamFullError(
                f"{self.name}: no free entry for {key!r} "
                f"(capacity {self.capacity})"
            )
        self._entries[key] = value

    def remove(self, key: K) -> Optional[V]:
        """Invalidate an entry; returns its value or None."""
        return self._entries.pop(key, None)

    def lookup(self, key: K) -> Optional[V]:
        """Associative match; None on miss (cell for an unknown VC)."""
        if self.fault_hook is not None and self.fault_hook(key):
            self.forced_misses += 1
            self.misses += 1
            if self.trace is not None:
                self.trace.emit(
                    "rx.cam.miss", actor=self.name, vc=key, forced=True
                )
            return None
        value = self._entries.get(key)
        if value is None and key not in self._entries:
            self.misses += 1
            if self.trace is not None:
                self.trace.emit("rx.cam.miss", actor=self.name, vc=key)
            return None
        self.hits += 1
        if self.trace is not None:
            self.trace.emit("rx.cam.hit", actor=self.name, vc=key)
        return value

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
