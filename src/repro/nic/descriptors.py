"""Descriptor rings: the host/adaptor contract.

The host and the adaptor communicate through two rings in host memory:

- the **transmit ring** of :class:`TxDescriptor` -- "here is a PDU,
  send it on this VC";
- the **completion ring** of :class:`RxCompletion` -- "a PDU for this
  VC has landed in that buffer".

Ring depth bounds how far the host can run ahead of the adaptor (and
vice versa); a full TX ring back-pressures the sender, which is the
flow-control boundary of the whole architecture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.atm.addressing import VcAddress
from repro.host.memory import Buffer
from repro.sim.core import Event, Simulator
from repro.sim.resources import Store

_pdu_ids = itertools.count(1)


@dataclass
class TxDescriptor:
    """One host-posted transmit request."""

    vc: VcAddress
    sdu: bytes
    posted_at: float
    pdu_id: int = field(default_factory=lambda: next(_pdu_ids))
    #: AAL5 CPCS-UU byte passed through to the far end.
    user_indication: int = 0

    @property
    def size(self) -> int:
        return len(self.sdu)


@dataclass
class RxCompletion:
    """One adaptor-posted receive completion."""

    vc: VcAddress
    sdu: bytes
    buffer: Optional[Buffer]
    received_at: float  #: when the final cell's processing finished
    delivered_at: float  #: when the host buffer held the full PDU
    cells: int
    user_indication: int = 0
    #: When the sender posted the PDU (carried in cell metadata); lets
    #: experiments compute end-to-end latency without a side channel.
    posted_at: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.sdu)

    @property
    def end_to_end_latency(self) -> Optional[float]:
        if self.posted_at is None:
            return None
        return self.delivered_at - self.posted_at


class DescriptorRing:
    """A bounded FIFO ring of descriptors between host and adaptor.

    ``post`` blocks (event) when the ring is full -- exactly the
    producer/consumer behaviour of a hardware ring with a full bit.
    """

    def __init__(self, sim: Simulator, depth: int, name: str = "ring") -> None:
        if depth < 1:
            raise ValueError("ring depth must be >= 1")
        self.sim = sim
        self.depth = depth
        self.name = name
        self._store = Store(sim, capacity=depth, name=name)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def is_full(self) -> bool:
        return self._store.is_full

    def post(self, descriptor) -> Event:
        """Producer side; the event fires when the ring accepted it."""
        return self._store.put(descriptor)

    def try_post(self, descriptor) -> bool:
        """Non-blocking post; False when the ring is full."""
        return self._store.try_put(descriptor)

    def take(self) -> Event:
        """Consumer side; the event fires with the next descriptor."""
        return self._store.get()

    @property
    def total_posted(self) -> int:
        return self._store.total_put

    @property
    def peak_depth(self) -> int:
        return self._store.peak_occupancy
