"""The whole interface: host machinery + adaptor pipelines, wired up.

:class:`HostNetworkInterface` is the public face of the reproduction.
A minimal end-to-end use::

    sim = Simulator()
    a = HostNetworkInterface(sim, aurora_oc3(), name="a")
    b = HostNetworkInterface(sim, aurora_oc3(), name="b")
    connect(sim, a, b)

    vc = a.open_vc()
    b.open_vc(address=vc.address)          # receiver must open it too
    b.on_pdu = lambda completion: print(completion.size)

    a.post(vc.address, b"hello ATM world")
    sim.run(until=0.01)

Everything observable (throughput, utilisations, drops, latencies) is
reachable through :meth:`HostNetworkInterface.stats`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.atm.addressing import VcAddress
from repro.atm.errors import LossModel
from repro.atm.oam import (
    AlarmCell,
    ContinuityCell,
    LoopbackCell,
    OamFormatError,
    decode_oam,
)
from repro.atm.cell import PTI_RESOURCE_MGMT
from repro.atm.link import LinkSpec, PhysicalLink
from repro.atm.vc import ServiceClass, VcTable, VirtualConnection
from repro.aal.interface import ReassemblyFailure
from repro.aal.reassembly import ReassemblyTimerWheel
from repro.host.bus import SystemBus
from repro.host.cpu import HostCpu
from repro.host.dma import DmaEngine
from repro.host.interrupts import InterruptController
from repro.host.memory import BufferPool
from repro.host.os_model import HostOs
from repro.nic.bufmem import AdaptorBufferMemory
from repro.nic.cam import Cam
from repro.nic.config import NicConfig
from repro.nic.descriptors import DescriptorRing, RxCompletion, TxDescriptor
from repro.nic.engine import EngineClock
from repro.nic.fifo import CellFifo
from repro.nic.rx import RxEngine
from repro.nic.sarglue import glue_for
from repro.nic.tx import Framer, TxEngine
from repro.sim.core import Event, Simulator


@dataclass
class NicStats:
    """A flat snapshot of one interface's counters for experiments."""

    pdus_sent: int
    pdus_received: int
    cells_sent: int
    cells_received: int
    tx_throughput_mbps: float
    rx_throughput_mbps: float
    tx_engine_utilization: float
    rx_engine_utilization: float
    host_cpu_utilization: float
    bus_utilization: float
    rx_fifo_overflows: int
    rx_fifo_peak: int
    cells_unknown_vc: int
    pdus_discarded: int
    host_cycles_total: float
    interrupts_delivered: int
    # graceful-degradation counters (zero unless a FrameDiscardPolicy
    # or reassembly quota is configured)
    cells_epd_discarded: int = 0
    cells_ppd_discarded: int = 0
    frames_discarded_early: int = 0
    frames_truncated: int = 0
    cells_hec_discarded: int = 0
    contexts_quota_evicted: int = 0
    # fault-management plane (zero unless OAM/resilience machinery runs)
    oam_ping_timeouts: int = 0
    oam_ping_retries: int = 0
    oam_cc_received: int = 0
    oam_ais_received: int = 0
    oam_rdi_received: int = 0


class OamPingTimeout(Exception):
    """An F5 loopback probe went unanswered past its retry budget."""


class HostNetworkInterface:
    """One workstation with the paper's ATM adaptor installed."""

    def __init__(self, sim: Simulator, config: NicConfig, name: str = "nic"):
        self.sim = sim
        self.config = config
        self.name = name

        # -- host machinery -------------------------------------------------
        self.cpu = HostCpu(sim, config.host_cpu, name=f"{name}.cpu")
        self.bus = SystemBus(sim, config.bus, name=f"{name}.bus")
        self.tx_dma = DmaEngine(sim, self.bus, config.dma, name=f"{name}.txdma")
        self.rx_dma = DmaEngine(sim, self.bus, config.dma, name=f"{name}.rxdma")
        self.interrupts = InterruptController(
            sim, self.cpu, config.interrupt, name=f"{name}.intc"
        )
        self.os = HostOs(self.cpu, config.os_costs)
        self.rx_buffers = BufferPool(
            config.rx_buffer_slot_size,
            config.rx_buffer_slots,
            name=f"{name}.rxpool",
        )

        # -- adaptor ----------------------------------------------------------
        self.vc_table = VcTable()
        self.buffer_memory = AdaptorBufferMemory(
            sim, config.buffer_memory, name=f"{name}.bufmem"
        )
        self.cam: Optional[Cam] = (
            Cam(
                config.cam_entries,
                name=f"{name}.cam",
                eviction=config.cam_eviction,
            )
            if config.cam_entries is not None
            else None
        )
        self.tx_ring = DescriptorRing(
            sim, config.tx_ring_depth, name=f"{name}.txring"
        )
        self.tx_fifo = CellFifo(sim, config.tx_fifo_cells, name=f"{name}.txfifo")
        self.rx_fifo = CellFifo(sim, config.rx_fifo_cells, name=f"{name}.rxfifo")
        self.tx_clock = EngineClock(sim, config.tx_engine, name=f"{name}.txclk")
        self.rx_clock = EngineClock(sim, config.rx_engine, name=f"{name}.rxclk")

        self.sar_glue = glue_for(config.aal)
        self.tx_engine = TxEngine(
            sim,
            self.tx_clock,
            config.tx_costs,
            self.tx_ring,
            self.tx_dma,
            self.tx_fifo,
            self.buffer_memory,
            glue=self.sar_glue,
            rate_of=self._peak_rate_of,
            name=f"{name}.tx",
        )
        self.framer = Framer(sim, self.tx_fifo, name=f"{name}.framer")
        self.rx_engine = RxEngine(
            sim,
            self.rx_clock,
            config.rx_costs,
            self.rx_fifo,
            self.vc_table,
            self.rx_dma,
            self.buffer_memory,
            self.rx_buffers,
            cam=self.cam,
            glue=self.sar_glue,
            discard=config.frame_discard,
            context_quota=config.reassembly_quota,
            name=f"{name}.rx",
        )
        self.rx_engine.on_completion = self._on_completion
        self.rx_engine.on_context_activity = self._touch_context
        self.rx_engine.on_context_evicted = self._evicted_context
        self.rx_engine.on_oam = self._handle_oam
        self._oam_pending: Dict[int, Tuple[Event, float]] = {}
        self._oam_correlations = itertools.count(1)
        self.oam_reflections = 0
        self.oam_bad_cells = 0
        self.oam_ping_timeouts = 0
        self.oam_ping_retries = 0
        self.oam_cc_received = 0
        self.oam_ais_received = 0
        self.oam_rdi_received = 0
        #: Recovery-plane hooks (duck-typed; a LinkSupervisor installs
        #: these): called with the decoded AlarmCell / ContinuityCell.
        self.on_alarm: Optional[Callable[[AlarmCell], None]] = None
        self.on_cc: Optional[Callable[[ContinuityCell], None]] = None
        #: Traffic-management hook (duck-typed; an AbrAgent installs
        #: this): called with each raw resource-management cell (PTI 6)
        #: before OAM decoding is attempted.
        self.on_rm: Optional[Callable] = None
        self.reassembly_timers = ReassemblyTimerWheel(
            sim,
            timeout=config.reassembly_timeout,
            tick=config.reassembly_tick,
            on_expire=self._expire_context,
            name=f"{name}.timers",
        )

        #: User callback: invoked with each RxCompletion after the host
        #: OS receive path has run.
        self.on_pdu: Optional[Callable[[RxCompletion], None]] = None
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        #: Set by :meth:`attach_trace` alongside every subcomponent.
        self.trace = None
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Launch the adaptor pipelines (idempotent; send() auto-starts)."""
        if self._started:
            return
        self._started = True
        self.tx_engine.start()
        self.framer.start()
        self.rx_engine.start()
        self.reassembly_timers.start()

    # -- wiring ---------------------------------------------------------------

    def attach_tx_link(self, link: PhysicalLink) -> None:
        """Point the transmit framer at an outbound link."""
        self.framer.attach(link)
        if self.trace is not None:
            link.trace = self.trace

    def attach_trace(self, recorder) -> None:
        """Wire a :class:`repro.obs.trace.TraceRecorder` through the
        whole interface: both engines, both FIFOs, both engine clocks,
        the CAM, both DMA movers, the interrupt controller, and the
        outbound link if one is already attached.  Pass ``None`` to
        detach.  Duck-typed so this package never imports ``repro.obs``.
        """
        self.trace = recorder
        self.tx_engine.trace = recorder
        self.rx_engine.trace = recorder
        self.tx_fifo.trace = recorder
        self.rx_fifo.trace = recorder
        self.tx_clock.trace = recorder
        self.rx_clock.trace = recorder
        if self.cam is not None:
            self.cam.trace = recorder
        self.tx_dma.trace = recorder
        self.rx_dma.trace = recorder
        self.interrupts.trace = recorder
        if self.framer.link is not None:
            self.framer.link.trace = recorder

    @property
    def rx_input(self):
        """The cell sink to attach as an inbound link's destination."""
        return self.rx_engine

    # -- control path ------------------------------------------------------------

    def open_vc(
        self,
        address: Optional[VcAddress] = None,
        peak_rate_bps: Optional[float] = None,
        service_class: ServiceClass = ServiceClass.DATA,
        name: str = "",
    ) -> VirtualConnection:
        """Open a VC for both directions and program the CAM."""
        vc = self.vc_table.open(
            address=address,
            service_class=service_class,
            peak_rate_bps=peak_rate_bps,
            name=name,
        )
        if self.cam is not None:
            self.cam.install(vc.address, vc)
        return vc

    def close_vc(self, address: VcAddress) -> None:
        """Tear down a VC, reclaiming CAM entry and reassembly state."""
        self.vc_table.close(address)
        if self.cam is not None:
            self.cam.remove(address)
        self.rx_engine.expire_context(address)

    # -- data path: host API -------------------------------------------------------

    def send(self, address: VcAddress, sdu: bytes, user_indication: int = 0):
        """Process-style send: ``yield nic.send(vc, data)`` from a process.

        Runs the OS send path on the host CPU, then posts the descriptor
        (blocking when the TX ring is full).  The returned event fires
        once the descriptor is in the ring -- *not* when the PDU is on
        the wire; completion is the adaptor's business.
        """
        if self.vc_table.lookup(address) is None:
            raise ValueError(f"VC {address} is not open on {self.name}")
        self.start()
        return self.sim.process(self._send(address, sdu, user_indication))

    def _send(self, address: VcAddress, sdu: bytes, user_indication: int):
        yield self.os.send(len(sdu))
        descriptor = TxDescriptor(
            vc=address,
            sdu=sdu,
            posted_at=self.sim.now,
            user_indication=user_indication,
        )
        yield self.tx_ring.post(descriptor)
        return descriptor

    def post(self, address: VcAddress, sdu: bytes, user_indication: int = 0) -> Event:
        """Fire-and-forget send for non-process callers."""
        return self.send(address, sdu, user_indication)

    # -- management plane -----------------------------------------------------------

    #: Default loopback-reply deadline: generous against any sane link
    #: (hundreds of cell times at OC-3) yet short enough to reap the
    #: correlation within a single experiment run.
    DEFAULT_OAM_PING_TIMEOUT = 5e-3

    def oam_ping(
        self,
        address: VcAddress,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> Event:
        """F5 loopback ping on an open VC; the event's value is the RTT.

        The loopback cell is injected straight into the transmit FIFO
        and reflected by the far interface's OAM unit -- neither host
        CPU is involved, so the RTT measures the adaptor+link path.

        A watchdog reaps the pending correlation if no reply arrives
        within ``timeout`` (default :data:`DEFAULT_OAM_PING_TIMEOUT`):
        up to ``retries`` fresh probes are sent first, then the event
        fails with :class:`OamPingTimeout` and the entry is removed --
        unanswered pings no longer leak.
        """
        if self.vc_table.lookup(address) is None:
            raise ValueError(f"VC {address} is not open on {self.name}")
        if timeout is None:
            timeout = self.DEFAULT_OAM_PING_TIMEOUT
        if timeout <= 0:
            raise ValueError("oam_ping timeout must be positive")
        self.start()
        correlation = next(self._oam_correlations)
        completed = self.sim.event()
        self._oam_pending[correlation] = (completed, self.sim.now)
        probe = LoopbackCell(
            vc=address, correlation=correlation, to_be_looped=True
        ).encode()
        self.sim.process(self._inject_cell(probe))
        self.sim.process(
            self._ping_watchdog(address, correlation, timeout, retries)
        )
        return completed

    def _ping_watchdog(
        self, address: VcAddress, correlation: int, timeout: float, retries: int
    ):
        attempts = 0
        while True:
            yield self.sim.timeout(timeout)
            if correlation not in self._oam_pending:
                return  # reply arrived; nothing to reap
            if attempts < retries:
                attempts += 1
                self.oam_ping_retries += 1
                # Re-arm the RTT clock: the retry measures its own trip.
                completed, _ = self._oam_pending[correlation]
                self._oam_pending[correlation] = (completed, self.sim.now)
                probe = LoopbackCell(
                    vc=address, correlation=correlation, to_be_looped=True
                ).encode()
                self.sim.process(self._inject_cell(probe))
                continue
            completed, _ = self._oam_pending.pop(correlation)
            self.oam_ping_timeouts += 1
            if self.trace is not None:
                self.trace.emit(
                    "oam.ping.timeout",
                    actor=self.name,
                    vc=address,
                    correlation=correlation,
                    attempts=attempts + 1,
                )
            if not completed.triggered:
                completed.fail(OamPingTimeout(f"{self.name} ping {correlation}"))
            return

    def inject_cell(self, cell) -> None:
        """Queue a pre-built management cell into the transmit FIFO."""
        self.start()
        self.sim.process(self._inject_cell(cell))

    def _inject_cell(self, cell):
        yield self.tx_fifo.put(cell)

    def _handle_oam(self, cell) -> None:
        if cell.pti == PTI_RESOURCE_MGMT:
            # RM cells share the management lane but carry rate-control
            # state, not OAM PDUs; hand them to the ABR agent (if any).
            if self.on_rm is not None:
                self.on_rm(cell)
            return
        try:
            pdu = decode_oam(cell)
        except OamFormatError:
            self.oam_bad_cells += 1
            return
        if isinstance(pdu, LoopbackCell):
            if pdu.to_be_looped:
                self.oam_reflections += 1
                self.sim.process(self._inject_cell(pdu.reflection().encode()))
                return
            pending = self._oam_pending.pop(pdu.correlation, None)
            if pending is not None:
                completed, sent_at = pending
                completed.trigger(self.sim.now - sent_at)
        elif isinstance(pdu, ContinuityCell):
            self.oam_cc_received += 1
            if self.on_cc is not None:
                self.on_cc(pdu)
        elif isinstance(pdu, AlarmCell):
            if pdu.kind == "ais":
                self.oam_ais_received += 1
            else:
                self.oam_rdi_received += 1
            if self.on_alarm is not None:
                self.on_alarm(pdu)

    # -- data path: receive plumbing ---------------------------------------------------

    def _on_completion(self, completion: RxCompletion) -> None:
        self.reassembly_timers.disarm(completion.vc)
        self.sim.process(self._deliver(completion))

    def _deliver(self, completion: RxCompletion):
        # Interrupt: entry/exit plus the driver's completion handling.
        yield self.interrupts.raise_interrupt(
            self.config.os_costs.driver_rx_cycles
        )
        # OS receive path (copy to user, wakeup, syscall return); the
        # driver portion was already charged in the interrupt handler.
        yield self.os.receive_post_interrupt(completion.size)
        # Recycle the host buffer: the OS copied it out.
        if completion.buffer is not None:
            self.rx_buffers.release(completion.buffer)
        if self.trace is not None:
            self.trace.emit(
                "host.pdu.delivered",
                actor=self.name,
                vc=completion.vc,
                size=completion.size,
                cells=completion.cells,
                latency=self.sim.now - completion.received_at,
            )
        if self.on_pdu is not None:
            self.on_pdu(completion)

    def _peak_rate_of(self, address: VcAddress):
        vc = self.vc_table.lookup(address)
        return vc.peak_rate_bps if vc is not None else None

    def _touch_context(self, vc: VcAddress) -> None:
        self.reassembly_timers.touch(vc)

    def _expire_context(self, vc: VcAddress) -> None:
        self.rx_engine.expire_context(vc)

    def _evicted_context(self, vc: VcAddress) -> None:
        # Quota eviction already closed the reassembler context; only
        # the timer needs disarming.
        self.reassembly_timers.disarm(vc)

    # -- observability ------------------------------------------------------------

    def stats(self) -> NicStats:
        """Snapshot every experiment-relevant counter."""
        reasm = self.rx_engine.reassembler.stats
        return NicStats(
            pdus_sent=self.tx_engine.pdus_sent.count,
            pdus_received=self.rx_engine.pdus_delivered.count,
            cells_sent=self.tx_engine.cells_sent.count,
            cells_received=self.rx_engine.cells_received.count,
            tx_throughput_mbps=self.tx_engine.throughput.megabits_per_second(),
            rx_throughput_mbps=self.rx_engine.throughput.megabits_per_second(),
            tx_engine_utilization=self.tx_clock.utilization(),
            rx_engine_utilization=self.rx_clock.utilization(),
            host_cpu_utilization=self.cpu.utilization(),
            bus_utilization=self.bus.utilization(),
            rx_fifo_overflows=self.rx_fifo.overflows.count,
            rx_fifo_peak=self.rx_fifo.peak_occupancy,
            cells_unknown_vc=self.rx_engine.cells_unknown_vc.count,
            pdus_discarded=reasm.pdus_discarded,
            host_cycles_total=self.cpu.total_cycles,
            interrupts_delivered=self.interrupts.delivered.count,
            cells_epd_discarded=self.rx_engine.cells_epd_discarded.count,
            cells_ppd_discarded=self.rx_engine.cells_ppd_discarded.count,
            frames_discarded_early=self.rx_engine.frames_discarded_early.count,
            frames_truncated=self.rx_engine.frames_truncated.count,
            cells_hec_discarded=self.rx_engine.cells_hec_discarded.count,
            contexts_quota_evicted=reasm.failures.get(
                ReassemblyFailure.QUOTA, 0
            ),
            oam_ping_timeouts=self.oam_ping_timeouts,
            oam_ping_retries=self.oam_ping_retries,
            oam_cc_received=self.oam_cc_received,
            oam_ais_received=self.oam_ais_received,
            oam_rdi_received=self.oam_rdi_received,
        )


def connect(
    sim: Simulator,
    a: HostNetworkInterface,
    b: HostNetworkInterface,
    link: Optional[LinkSpec] = None,
    propagation_delay: float = 0.0,
    loss_ab: Optional[LossModel] = None,
    loss_ba: Optional[LossModel] = None,
) -> tuple[PhysicalLink, PhysicalLink]:
    """Join two interfaces with a bidirectional link pair.

    The link spec defaults to interface *a*'s configured link.  Returns
    the (a->b, b->a) links for loss-model or utilisation inspection.
    """
    spec = link if link is not None else a.config.link
    ab = PhysicalLink(
        sim,
        spec,
        sink=b.rx_input,
        propagation_delay=propagation_delay,
        loss_model=loss_ab,
        name=f"{a.name}->{b.name}",
    )
    ba = PhysicalLink(
        sim,
        spec,
        sink=a.rx_input,
        propagation_delay=propagation_delay,
        loss_model=loss_ba,
        name=f"{b.name}->{a.name}",
    )
    a.attach_tx_link(ab)
    b.attach_tx_link(ba)
    a.start()
    b.start()
    return ab, ba
