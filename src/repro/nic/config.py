"""Interface configuration: every knob of the architecture in one place.

A :class:`NicConfig` fully determines a simulated interface.  The three
presets are the design points the paper's context implies:

- :func:`taxi_lan` -- a 100 Mb/s LAN interface (generous margins),
- :func:`aurora_oc3` -- the STS-3c (155 Mb/s) configuration,
- :func:`aurora_oc12` -- the STS-12c (622 Mb/s) testbed target, where
  the engine budgets start to bind.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.atm.link import LinkSpec, STS3C_155, STS12C_622, TAXI_100
from repro.host.bus import BusSpec, TURBOCHANNEL
from repro.host.cpu import CpuSpec, R3000_25MHZ
from repro.host.dma import DmaSpec
from repro.host.interrupts import InterruptSpec
from repro.host.os_model import OsCostModel
from repro.nic.bufmem import BufferMemorySpec
from repro.nic.costs import EngineSpec, I960_25MHZ, RxCostModel, TxCostModel
from repro.nic.rx import FrameDiscardPolicy


@dataclass(frozen=True)
class NicConfig:
    """Complete static description of one host-network interface."""

    # adaptor: protocol engines and their budgets
    tx_engine: EngineSpec = I960_25MHZ
    rx_engine: EngineSpec = I960_25MHZ
    tx_costs: TxCostModel = field(default_factory=TxCostModel)
    rx_costs: RxCostModel = field(default_factory=RxCostModel)
    # adaptor: hardware assists
    tx_fifo_cells: int = 64
    rx_fifo_cells: int = 64
    #: CAM entries for receive-side VC steering; None removes the CAM
    #: and the receive engine pays the software-lookup budget instead.
    cam_entries: int | None = 256
    #: What a full CAM does when a new VC is programmed: "none" refuses
    #: the entry (CamFullError -- admission control's problem) and
    #: "lru" silently displaces the least recently matched entry, the
    #: driver policy for CAMs smaller than the connection table under
    #: massive multiplexing (docs/SCALE.md).
    cam_eviction: str = "none"
    buffer_memory: BufferMemorySpec = BufferMemorySpec(
        capacity_cells=8192, width_bytes=4, clock_hz=25e6, dual_ported=True
    )
    dma: DmaSpec = DmaSpec(setup_time=0.8e-6, completion_time=0.4e-6)
    # host side
    host_cpu: CpuSpec = R3000_25MHZ
    bus: BusSpec = TURBOCHANNEL
    os_costs: OsCostModel = field(default_factory=OsCostModel)
    interrupt: InterruptSpec = field(default_factory=InterruptSpec)
    # rings and pools
    tx_ring_depth: int = 32
    rx_buffer_slots: int = 64
    rx_buffer_slot_size: int = 65536
    #: Adaptation layer the data path runs: "aal5" (the
    #: simple-and-efficient layer) or "aal3/4" (the 1991 standard,
    #: 4 bytes + a few engine cycles of per-cell overhead).
    aal: str = "aal5"
    # link
    link: LinkSpec = STS3C_155
    # reassembly hygiene
    reassembly_timeout: float = 0.5
    reassembly_tick: float = 0.1
    # graceful degradation under overload
    #: EPD/PPD admission policy for the receive path; None disables
    #: frame-level discard (cells drop individually on overflow).
    frame_discard: FrameDiscardPolicy | None = None
    #: Quota on simultaneously open reassembly contexts (AAL5 only);
    #: None leaves the context table unbounded.
    reassembly_quota: int | None = None

    def __post_init__(self) -> None:
        if self.tx_fifo_cells < 1 or self.rx_fifo_cells < 1:
            raise ValueError("FIFO depths must be >= 1")
        if self.cam_entries is not None and self.cam_entries < 1:
            raise ValueError("cam_entries must be >= 1 or None")
        if self.cam_eviction not in ("none", "lru"):
            raise ValueError(
                f"unknown cam_eviction policy {self.cam_eviction!r}"
            )
        if self.tx_ring_depth < 1:
            raise ValueError("tx_ring_depth must be >= 1")
        if self.rx_buffer_slots < 1 or self.rx_buffer_slot_size < 1:
            raise ValueError("receive buffer pool must be non-empty")
        if self.reassembly_timeout <= 0 or self.reassembly_tick <= 0:
            raise ValueError("reassembly timer values must be positive")
        if self.aal not in ("aal5", "aal3/4", "aal34"):
            raise ValueError(f"unknown adaptation layer {self.aal!r}")
        if self.reassembly_quota is not None and self.reassembly_quota < 1:
            raise ValueError("reassembly_quota must be >= 1 or None")

    @property
    def cam_fitted(self) -> bool:
        return self.cam_entries is not None

    def with_link(self, link: LinkSpec) -> "NicConfig":
        return replace(self, link=link)

    def with_engines(self, spec: EngineSpec) -> "NicConfig":
        """Both engines swapped to *spec* (the F7 clock sweep)."""
        return replace(self, tx_engine=spec, rx_engine=spec)

    def without_cam(self) -> "NicConfig":
        """The CAM-less ablation."""
        return replace(self, cam_entries=None)

    def with_aal34(self) -> "NicConfig":
        """The AAL3/4 data-path variant (the A1 efficiency ablation)."""
        return replace(self, aal="aal3/4")

    def with_frame_discard(
        self,
        policy: FrameDiscardPolicy | None = None,
        quota: int | None = None,
    ) -> "NicConfig":
        """Graceful-degradation variant: EPD/PPD plus a context quota."""
        return replace(
            self,
            frame_discard=policy if policy is not None else FrameDiscardPolicy(),
            reassembly_quota=quota,
        )


def taxi_lan() -> NicConfig:
    """A 100 Mb/s LAN interface: everything has headroom."""
    return NicConfig(link=TAXI_100, tx_fifo_cells=32, rx_fifo_cells=32)


def aurora_oc3() -> NicConfig:
    """The STS-3c (155 Mb/s) configuration."""
    return NicConfig(link=STS3C_155)


def aurora_oc12() -> NicConfig:
    """The STS-12c (622 Mb/s) testbed target; deeper FIFOs, bigger CAM."""
    return NicConfig(
        link=STS12C_622,
        tx_fifo_cells=128,
        rx_fifo_cells=128,
        buffer_memory=BufferMemorySpec(
            capacity_cells=16384, width_bytes=8, clock_hz=25e6, dual_ported=True
        ),
    )
