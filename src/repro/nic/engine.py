"""The clocked execution substrate of a protocol engine.

An :class:`EngineClock` turns cycle budgets into simulated time and
keeps the utilisation ledger.  The transmit and receive pipelines are
processes that interleave ``yield clock.work(cycles, tag)`` calls with
waits on FIFOs and DMA -- which is exactly the structure of the
firmware loop on the real microcontroller: compute, then block on the
next cell or descriptor.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.nic.costs import EngineSpec
from repro.sim.core import Simulator, Timeout


class EngineClock:
    """Cycle-to-time conversion plus a busy-time/cycles ledger.

    The engine is single-threaded by construction (one firmware loop),
    so unlike :class:`repro.host.cpu.HostCpu` there is no contention
    resource: the owning pipeline process is the only caller, and its
    program order serialises the work.
    """

    def __init__(self, sim: Simulator, spec: EngineSpec, name: str = "engine"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self._busy_time = 0.0
        self.cycles_by_tag: Dict[str, float] = {}
        self._stall_pending = 0.0
        #: Total injected stall time the engine has absorbed.
        self.stalled_time = 0.0
        #: Number of injected stalls absorbed.
        self.stalls_taken = 0
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        #: Each ``work()`` call then becomes an ``engine.work`` span.
        self.trace = None

    def request_stall(self, duration: float) -> None:
        """Fault-injection hook: freeze the engine for *duration* seconds.

        The stall is absorbed by the *next* ``work()`` call -- the
        firmware loop stops executing instructions but the rest of the
        system (links, FIFOs, DMA) keeps running, which is exactly how a
        wedged or preempted engine starves its receive FIFO.  Multiple
        requests accumulate.
        """
        if duration < 0:
            raise ValueError("negative stall duration")
        self._stall_pending += duration

    def work(self, cycles: float, tag: str = "work") -> Timeout:
        """A timeout spanning *cycles* of engine execution (and book it)."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        duration = self.spec.seconds_for(cycles)
        self._busy_time += duration
        self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0.0) + cycles
        if self.trace is not None:
            self.trace.emit(
                "engine.work", actor=self.name, tag=tag, cycles=cycles,
                dur=duration,
            )
        if self._stall_pending > 0.0:
            stall, self._stall_pending = self._stall_pending, 0.0
            self.stalled_time += stall
            self.stalls_taken += 1
            duration += stall
            if self.trace is not None:
                self.trace.emit(
                    "engine.stall", actor=self.name, dur=stall,
                )
        return self.sim.timeout(duration)

    def charge(self, cycles: float, tag: str = "work") -> float:
        """Book cycles without waiting (for zero-duration accounting)."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        duration = self.spec.seconds_for(cycles)
        self._busy_time += duration
        self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0.0) + cycles
        return duration

    def charge_at(self, cycles: float, tag: str, at: float) -> float:
        """Book cycles as if executed at virtual time *at* (fast path).

        Identical ledger updates to :meth:`work` -- same float
        accumulation order for ``busy_time`` and ``cycles_by_tag`` --
        but no timeout event is created: the burst replay loop sums the
        returned durations itself and sleeps once per burst.  The
        ``engine.work`` trace span is emitted at the virtual timestamp.
        """
        if cycles < 0:
            raise ValueError("negative cycle count")
        duration = self.spec.seconds_for(cycles)
        self._busy_time += duration
        self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0.0) + cycles
        if self.trace is not None:
            self.trace.emit(
                "engine.work", actor=self.name, tag=tag, cycles=cycles,
                dur=duration, ts=at,
            )
        return duration

    def take_stall(self) -> float:
        """Absorb any pending injected stall (fast path burst entry).

        Mirrors the stall-absorption tail of :meth:`work`: returns the
        stall duration (0.0 if none) for the caller to add to its burst
        replay clock, and books it into the stall ledger.
        """
        if self._stall_pending <= 0.0:
            return 0.0
        stall, self._stall_pending = self._stall_pending, 0.0
        self.stalled_time += stall
        self.stalls_taken += 1
        if self.trace is not None:
            self.trace.emit("engine.stall", actor=self.name, dur=stall)
        return stall

    @property
    def total_cycles(self) -> float:
        return sum(self.cycles_by_tag.values())

    @property
    def busy_time(self) -> float:
        return self._busy_time

    def utilization(self, now: Optional[float] = None) -> float:
        """Busy fraction of elapsed simulation time."""
        end = self.sim.now if now is None else now
        return min(1.0, self._busy_time / end) if end > 0 else 0.0

    def headroom_against(self, cell_time: float, cycles_per_cell: float) -> float:
        """Ratio of link cell slot to engine per-cell service time.

        > 1 means the engine keeps up with back-to-back cells at the
        link rate; < 1 means it is the bottleneck.  This is the paper's
        core feasibility test.
        """
        if cycles_per_cell <= 0:
            return float("inf")
        return cell_time / self.spec.seconds_for(cycles_per_cell)
