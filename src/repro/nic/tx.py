"""The transmit pipeline: descriptor fetch -> DMA -> segmentation -> FIFO.

The engine's firmware loop, as the paper's analysis budgets it:

1. take the next TX descriptor from the host ring;
2. fetch the VC's header template, program the DMA, and pull the PDU
   from host memory into adaptor buffer memory;
3. walk the PDU one cell at a time -- build the header, advance the
   read pointer, push into the transmit FIFO (stalling when the FIFO is
   full, i.e. when the engine outruns the link);
4. on the final cell, build pad + trailer; then write completion status
   back to the host ring.

The framer (a trivial second process, pure hardware in the real
adaptor) drains the FIFO one cell per link slot.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.atm.addressing import VcAddress
from repro.atm.burst import CellBurst
from repro.atm.cell import PAYLOAD_SIZE
from repro.atm.link import PhysicalLink
from repro.host.dma import DmaEngine
from repro.nic.bufmem import AdaptorBufferMemory
from repro.nic.costs import CellPosition, TxCostModel
from repro.nic.descriptors import DescriptorRing, TxDescriptor
from repro.nic.engine import EngineClock
from repro.nic.fifo import CellFifo
from repro.nic.sarglue import Aal5Glue, SarGlue
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, ThroughputMeter, WelfordStat

#: simlint SL7 dual-path registry (docs/STATIC_ANALYSIS.md): the scalar
#: and burst cell-emission lanes must reach identical stat/trace/cost
#: effect sets, up to the asymmetries declared here.
PATH_PAIRS = [
    {
        "scalar": "TxEngine._emit_cells_scalar",
        "burst": "TxEngine._emit_cells_fast",
        "scalar_only": [
            "stat:TxEngine.pacing_stalls.increment",
            "event:tx.cell.paced",
            "stat:AbrAgent.rm_sent.increment",
            "event:rm.cell.sent",
        ],
        "burst_only": ["event:burst.form"],
        "why": (
            "pacing never rides the burst lane (the fast path handles "
            "unpaced VCs only), and ABR VCs are always paced -- their "
            "dynamic ACR interval forces the scalar lane, so the RM "
            "interleave is scalar-only by construction; bursts announce "
            "their formation with one burst.form per chunk"
        ),
    },
]


class TxEngine:
    """The programmable segmentation engine."""

    def __init__(
        self,
        sim: Simulator,
        clock: EngineClock,
        costs: TxCostModel,
        ring: DescriptorRing,
        dma: DmaEngine,
        fifo: CellFifo,
        bufmem: AdaptorBufferMemory,
        glue: Optional[SarGlue] = None,
        rate_of: Optional[Callable[[VcAddress], Optional[float]]] = None,
        name: str = "tx",
    ) -> None:
        self.sim = sim
        self.clock = clock
        self.costs = costs
        self.ring = ring
        self.dma = dma
        self.fifo = fifo
        self.bufmem = bufmem
        self.glue = glue if glue is not None else Aal5Glue()
        #: Optional traffic-contract lookup: peak rate in bits/second for
        #: a VC, or None for unpaced.  Paced VCs have their cells spaced
        #: to the contract so the network's GCRA policer sees conforming
        #: traffic (see repro.atm.policing).
        self.rate_of = rate_of
        #: Closed-loop rate control hook (repro.tm.abr): an AbrAgent, or
        #: None.  When set, VCs registered with the agent pace at their
        #: dynamic allowed cell rate instead of the static contract, and
        #: the engine interleaves the agent's forward RM cells into the
        #: stream.  Duck-typed -- the NIC package never imports repro.tm.
        self.abr = None
        self.name = name
        self._segmenters: Dict[VcAddress, object] = {}
        self._next_slot: Dict[VcAddress, float] = {}
        #: Called with the descriptor when its status writeback completes.
        self.on_pdu_sent: Optional[Callable[[TxDescriptor], None]] = None
        self.pdus_sent = Counter(f"{name}.pdus")
        self.cells_sent = Counter(f"{name}.cells")
        self.pacing_stalls = Counter(f"{name}.pacing-stalls")
        self.pdus_stalled_for_buffer = Counter(f"{name}.buffer-stalls")
        self.throughput = ThroughputMeter(sim)
        #: Descriptor-posted to completion-writeback time per PDU.
        self.service_time = WelfordStat()
        #: Observability hooks (repro.obs): a TraceRecorder and a
        #: CycleProfiler, or None.  Duck-typed -- the NIC package never
        #: imports the obs package.
        self.trace = None
        self.profiler = None
        self._process = None

    def start(self) -> None:
        """Launch the firmware loop (idempotent)."""
        if self._process is None:
            self._process = self.sim.process(self._loop())

    def _pacing_interval(self, vc: VcAddress) -> Optional[float]:
        """Seconds between cells for a rate-contracted VC, else None.

        ABR VCs pace at the agent's current allowed cell rate, which
        moves between MCR and PCR as RM feedback arrives; other VCs fall
        back to the static peak-rate contract.
        """
        if self.abr is not None:
            interval = self.abr.interval_of(vc)
            if interval is not None:
                return interval
        if self.rate_of is None:
            return None
        peak_bps = self.rate_of(vc)
        if peak_bps is None or peak_bps <= 0:
            return None
        return (53 * 8) / peak_bps

    def _segmenter_for(self, vc: VcAddress):
        segmenter = self._segmenters.get(vc)
        if segmenter is None:
            segmenter = self.glue.make_segmenter(vc)
            self._segmenters[vc] = segmenter
        return segmenter

    def _loop(self):
        costs = self.costs
        while True:
            descriptor: TxDescriptor = yield self.ring.take()
            started = self.sim.now
            if self.trace is not None:
                self.trace.emit(
                    "tx.pdu.posted",
                    actor=self.name,
                    pdu_id=descriptor.pdu_id,
                    vc=descriptor.vc,
                    size=descriptor.size,
                )

            # Per-PDU prologue: parse the descriptor, load the VC header
            # template, program the host-memory DMA.
            yield self.clock.work(
                costs.descriptor_fetch + costs.header_template_load,
                tag="tx-pdu-prologue",
            )
            yield self.clock.work(costs.dma_setup, tag="tx-dma-setup")

            # Stage the PDU into adaptor buffer memory.  If memory is
            # short, wait for in-flight PDUs to drain (retry after the
            # FIFO makes progress) -- a stall, never a loss, on transmit.
            staging = ("tx", descriptor.pdu_id)
            n_cells = self.glue.cells_for(descriptor.size)
            while not self.bufmem.allocate(staging, n_cells):
                self.pdus_stalled_for_buffer.increment()
                if self.trace is not None:
                    self.trace.emit(
                        "tx.pdu.bufstall",
                        actor=self.name,
                        pdu_id=descriptor.pdu_id,
                        vc=descriptor.vc,
                    )
                yield self.sim.timeout(self.fifo.depth_cells * 1e-7)
            yield self.dma.transfer(descriptor.size)
            self.bufmem.record_write(descriptor.size)
            if self.trace is not None:
                self.trace.emit(
                    "tx.pdu.staged",
                    actor=self.name,
                    pdu_id=descriptor.pdu_id,
                    vc=descriptor.vc,
                    cells=n_cells,
                )

            # Segment (functionally real cells) and emit.
            segmenter = self._segmenter_for(descriptor.vc)
            cells = self.glue.segment(
                segmenter, descriptor.sdu, descriptor.user_indication
            )
            total = len(cells)
            cell_interval = self._pacing_interval(descriptor.vc)
            if cell_interval is None and self.sim.fast_path:
                # Unpaced fast path: emit the PDU's cells in
                # pre-announced bursts, one event per burst.
                yield from self._emit_cells_fast(descriptor, cells)
            else:
                yield from self._emit_cells_scalar(
                    descriptor, cells, cell_interval
                )

            # Completion status back to the host.
            yield self.clock.work(
                costs.completion_writeback, tag="tx-pdu-completion"
            )
            self.bufmem.release(staging)
            self.pdus_sent.increment()
            self.throughput.account(descriptor.size)
            self.service_time.add(self.sim.now - started)
            if self.profiler is not None:
                self.profiler.record_pdu("tx", costs.pdu_breakdown())
            if self.trace is not None:
                self.trace.emit(
                    "tx.pdu.done",
                    actor=self.name,
                    pdu_id=descriptor.pdu_id,
                    vc=descriptor.vc,
                    cells=total,
                    service_time=self.sim.now - started,
                )
            if self.on_pdu_sent is not None:
                self.on_pdu_sent(descriptor)

    def _emit_cells_scalar(self, descriptor: TxDescriptor, cells, cell_interval):
        """Scalar segmentation: one charge, one FIFO put per cell.

        The reference lane of the ``_emit_cells_fast`` pair -- and the
        only lane that paces, since the fast path handles unpaced VCs
        exclusively.
        """
        costs = self.costs
        total = len(cells)
        for index, cell in enumerate(cells):
            position = CellPosition.of(index, total)
            if self.profiler is not None:
                self.profiler.record_cell(
                    "tx",
                    position,
                    costs.cell_breakdown(position),
                    extra=self.glue.tx_extra_cycles,
                )
            yield self.clock.work(
                costs.cell_cycles(position) + self.glue.tx_extra_cycles,
                tag="tx-cell",
            )
            if cell_interval is not None:
                # Shape to the VC's peak cell rate.  A single-engine
                # firmware loop stalls on the pacer, so one heavily
                # shaped VC delays others behind it in the ring --
                # faithful to the era's in-order designs.
                if self.abr is not None:
                    # ABR rates move mid-PDU as RM feedback returns;
                    # re-read so each cell paces at the current ACR.
                    dynamic = self.abr.interval_of(descriptor.vc)
                    if dynamic is not None:
                        cell_interval = dynamic
                slot = self._next_slot.get(descriptor.vc, 0.0)
                if self.sim.now < slot:
                    self.pacing_stalls.increment()
                    if self.trace is not None:
                        self.trace.emit(
                            "tx.cell.paced",
                            actor=self.name,
                            pdu_id=descriptor.pdu_id,
                            vc=descriptor.vc,
                            delay=slot - self.sim.now,
                        )
                    yield self.sim.timeout(slot - self.sim.now)
                self._next_slot[descriptor.vc] = (
                    max(self.sim.now, slot) + cell_interval
                )
            self.bufmem.record_read(PAYLOAD_SIZE)
            cell.meta["pdu_id"] = descriptor.pdu_id
            cell.meta["posted_at"] = descriptor.posted_at
            if self.trace is not None:
                self.trace.tag_cell(cell)
                self.trace.emit(
                    "tx.cell.sar",
                    actor=self.name,
                    cell=cell,
                    position=position.value,
                )
            yield self.fifo.put(cell)
            self.cells_sent.increment()
            if self.abr is not None:
                # Every Nrm-th data cell is chased by a forward RM cell
                # carrying the source's CCR; the agent builds it (or
                # returns None between probes).  RM cells ride the same
                # FIFO so they serialize in-order with the data.
                rm_cell = self.abr.data_cell_sent(descriptor.vc)
                if rm_cell is not None:
                    yield self.fifo.put(rm_cell)

    def _emit_cells_fast(self, descriptor: TxDescriptor, cells):
        """Fast-path segmentation: pre-announced bursts into the FIFO.

        Per chunk of up to ``sim.config.burst_cells`` cells: reserve the
        expanded FIFO space first, then charge every cell's cycles via
        :meth:`~repro.nic.engine.EngineClock.charge_at` (identical
        ledger order to the scalar ``work`` calls), chaining each cell's
        virtual FIFO-arrival time from the post-reserve clock.  The
        burst is handed over immediately -- its embedded arrivals are in
        the future, so the framer/link serialize it with the exact
        scalar wire timing -- and the engine sleeps once to its last
        service end.
        """
        costs = self.costs
        clock = self.clock
        sim = self.sim
        total = len(cells)
        burst_len = max(1, min(sim.config.burst_cells, self.fifo.depth_cells // 2))
        index = 0
        while index < total:
            chunk = cells[index : index + burst_len]
            if not self.fifo.can_accept(len(chunk)):
                yield self.fifo.reserve(len(chunk))
            end = sim.now + clock.take_stall()
            arrivals = []
            for offset, cell in enumerate(chunk):
                position = CellPosition.of(index + offset, total)
                if self.profiler is not None:
                    self.profiler.record_cell(
                        "tx",
                        position,
                        costs.cell_breakdown(position),
                        extra=self.glue.tx_extra_cycles,
                    )
                start = end
                end = start + clock.charge_at(
                    costs.cell_cycles(position) + self.glue.tx_extra_cycles,
                    "tx-cell",
                    start,
                )
                self.bufmem.record_read(PAYLOAD_SIZE)
                cell.meta["pdu_id"] = descriptor.pdu_id
                cell.meta["posted_at"] = descriptor.posted_at
                if self.trace is not None:
                    self.trace.tag_cell(cell)
                    self.trace.emit(
                        "tx.cell.sar",
                        actor=self.name,
                        cell=cell,
                        position=position.value,
                        ts=end,
                    )
                arrivals.append(end)
            burst = CellBurst(chunk, arrivals)
            if self.profiler is not None:
                self.profiler.record_burst("tx", len(chunk))
            if self.trace is not None:
                self.trace.emit(
                    "burst.form",
                    actor=self.name,
                    n_cells=len(chunk),
                    pdu_id=descriptor.pdu_id,
                    vc=descriptor.vc,
                )
            self.fifo.put_burst(burst)
            self.cells_sent.increment(len(chunk))
            index += len(chunk)
            if end > sim.now:
                yield sim.wake_at(end)


class Framer:
    """Link-side drain: one cell from the FIFO onto the wire per slot.

    Hardware in the real interface; here a two-line process whose only
    policy is strict FIFO order at link rate.
    """

    def __init__(
        self,
        sim: Simulator,
        fifo: CellFifo,
        link: Optional[PhysicalLink] = None,
        name: str = "framer",
    ) -> None:
        self.sim = sim
        self.fifo = fifo
        self.link = link
        self.name = name
        self.cells_framed = Counter(f"{name}.cells")
        self._process = None

    def attach(self, link: PhysicalLink) -> None:
        self.link = link

    def start(self) -> None:
        if self._process is None:
            self._process = self.sim.process(self._loop())

    def _loop(self):
        while True:
            item = yield self.fifo.get()
            if self.link is None:
                raise RuntimeError(f"{self.name} has no link attached")
            if isinstance(item, CellBurst):
                # Fast path: the link serializes the whole run
                # arithmetically; wait for its last wire-out, exactly as
                # the scalar loop holds each cell through serialization.
                yield self.link.send_burst(item)
                self.cells_framed.increment(len(item))
            else:
                yield self.link.send(item)
                self.cells_framed.increment()
