"""Cycle budgets for the protocol engines -- the paper's analysis method.

The original evaluation budgets the segmentation and reassembly inner
loops in processor instructions (assembly-level estimates for an
80960-class RISC microcontroller) and derives per-cell service times
from the engine clock.  These dataclasses carry exactly those budgets.

The default numbers are reconstructions calibrated to reproduce the
published *shapes* (see DESIGN.md §3): a 25 MHz engine clears the
2.83 us cell slot of STS-3c with wide margin in both directions,
transmit just clears the 0.71 us slot of STS-12c, and receive -- the
costlier direction, because of VCI lookup and reassembly state -- does
not, which is what pushed the era's designs toward per-cell hardware
assists for OC-12c.

All values are in engine clock cycles.  Everything is data: ablations
copy a model with :func:`dataclasses.replace` and mutate one field.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple


class CellPosition(enum.Enum):
    """Where a cell sits in its PDU; budgets differ by position."""

    FIRST = "first"
    MIDDLE = "middle"
    LAST = "last"
    ONLY = "only"  #: single-cell PDU: both first- and last-cell work

    @classmethod
    def of(cls, index: int, total: int) -> "CellPosition":
        """Position of cell *index* (0-based) in a *total*-cell PDU."""
        if total < 1:
            raise ValueError("PDU must have at least one cell")
        if not 0 <= index < total:
            raise ValueError(f"cell index {index} outside 0..{total - 1}")
        if total == 1:
            return cls.ONLY
        if index == 0:
            return cls.FIRST
        if index == total - 1:
            return cls.LAST
        return cls.MIDDLE


@dataclass(frozen=True)
class EngineSpec:
    """A protocol engine: a clocked RISC microcontroller."""

    name: str
    clock_hz: float

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("engine clock must be positive")

    @property
    def cycle_time(self) -> float:
        return 1.0 / self.clock_hz

    def seconds_for(self, cycles: float) -> float:
        if cycles < 0:
            raise ValueError("negative cycle count")
        return cycles / self.clock_hz

    def at_clock(self, clock_hz: float) -> "EngineSpec":
        """The same engine at a different clock (for the F7 sweep)."""
        return EngineSpec(f"{self.name.split('-')[0]}-{clock_hz / 1e6:g}MHz", clock_hz)


I960_16MHZ = EngineSpec("i960-16MHz", 16e6)
I960_25MHZ = EngineSpec("i960-25MHz", 25e6)
I960_33MHZ = EngineSpec("i960-33MHz", 33e6)


@dataclass(frozen=True)
class TxCostModel:
    """Segmentation-path cycle budget (per the paper's TX inner loop).

    Per-PDU work happens once regardless of size; per-cell work repeats
    for every cell.  CRC generation is a hardware assist by default
    (``crc_per_cell = 0``); setting it non-zero models doing the CRC in
    engine software, one of the ablations.
    """

    # -- once per PDU -----------------------------------------------------
    descriptor_fetch: int = 30  #: read + parse the host's TX descriptor
    dma_setup: int = 20  #: program the host-memory fetch of the PDU
    header_template_load: int = 10  #: fetch the VC's cell-header template
    completion_writeback: int = 25  #: status writeback to the host ring
    # -- once per cell ----------------------------------------------------
    cell_build: int = 8  #: write header word(s), update length count
    buffer_advance: int = 5  #: advance the PDU read pointer
    fifo_push: int = 3  #: hand the cell to the link-side FIFO
    crc_per_cell: int = 0  #: CRC accumulate (0 = hardware assist)
    # -- once on the final cell -------------------------------------------
    trailer_build: int = 20  #: assemble pad + AAL trailer fields

    #: Per-position memo: the budget is frozen, and the inner loops ask
    #: for the same handful of positions millions of times.
    _cycle_memo: Dict[CellPosition, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name, value in self.breakdown().items():
            if value < 0:
                raise ValueError(f"negative cycle budget for {name}")

    def pdu_cycles(self) -> int:
        """Fixed per-PDU overhead, excluding any per-cell work."""
        return (
            self.descriptor_fetch
            + self.dma_setup
            + self.header_template_load
            + self.completion_writeback
        )

    def cell_cycles(self, position: CellPosition) -> int:
        """Engine cycles to emit one cell at *position*."""
        memo = self._cycle_memo
        cached = memo.get(position)
        if cached is not None:
            return cached
        cycles = (
            self.cell_build + self.buffer_advance + self.fifo_push + self.crc_per_cell
        )
        if position in (CellPosition.LAST, CellPosition.ONLY):
            cycles += self.trailer_build
        memo[position] = cycles
        return cycles

    def pdu_total_cycles(self, n_cells: int) -> int:
        """Whole-PDU engine cost for an *n_cells*-cell PDU."""
        if n_cells < 1:
            raise ValueError("PDU must have at least one cell")
        total = self.pdu_cycles()
        for i in range(n_cells):
            total += self.cell_cycles(CellPosition.of(i, n_cells))
        return total

    def breakdown(self) -> Dict[str, int]:
        """Per-operation budget for the T1 table."""
        return {
            "descriptor_fetch": self.descriptor_fetch,
            "dma_setup": self.dma_setup,
            "header_template_load": self.header_template_load,
            "completion_writeback": self.completion_writeback,
            "cell_build": self.cell_build,
            "buffer_advance": self.buffer_advance,
            "fifo_push": self.fifo_push,
            "crc_per_cell": self.crc_per_cell,
            "trailer_build": self.trailer_build,
        }

    def cell_breakdown(self, position: CellPosition) -> Dict[str, float]:
        """The operations actually executed for one cell at *position*.

        Sums to :meth:`cell_cycles`; the profiler attributes live engine
        cycles to operations through this map.
        """
        ops: Dict[str, float] = {
            "cell_build": self.cell_build,
            "buffer_advance": self.buffer_advance,
            "fifo_push": self.fifo_push,
        }
        if self.crc_per_cell:
            ops["crc_per_cell"] = self.crc_per_cell
        if position in (CellPosition.LAST, CellPosition.ONLY):
            ops["trailer_build"] = self.trailer_build
        return ops

    def pdu_breakdown(self) -> Dict[str, float]:
        """The once-per-PDU operations (sums to :meth:`pdu_cycles`)."""
        return {
            "descriptor_fetch": self.descriptor_fetch,
            "dma_setup": self.dma_setup,
            "header_template_load": self.header_template_load,
            "completion_writeback": self.completion_writeback,
        }

    def with_software_crc(self, cycles_per_cell: int = 130) -> "TxCostModel":
        """Ablation: CRC done by the engine instead of hardware."""
        return replace(self, crc_per_cell=cycles_per_cell)


@dataclass(frozen=True)
class RxCostModel:
    """Reassembly-path cycle budget (per the paper's RX inner loop).

    Receive is inherently costlier than transmit: every cell must be
    classified (VCI lookup) and threaded into per-VC reassembly state.
    With the CAM assist the lookup is a couple of cycles of handshake;
    without it the engine searches a software table.
    """

    # -- once per cell ------------------------------------------------------
    fifo_pop: int = 3  #: take the next cell from the link-side FIFO
    header_parse: int = 4  #: extract VPI/VCI/PTI
    vci_lookup_cam: int = 2  #: CAM handshake to the reassembly context
    vci_lookup_software: int = 28  #: software table probe when no CAM fitted
    #: Additional software-probe cycles per installed VC (the probe's
    #: collision-chain walk grows with the table); the CAM pays nothing.
    vci_lookup_software_per_entry: float = 0.5
    context_update: int = 7  #: fetch/advance reassembly state
    payload_store: int = 6  #: buffer pointer update, schedule the write
    crc_per_cell: int = 0  #: CRC accumulate (0 = hardware assist)
    #: Management cells (OAM): recognise the PTI, hand to the OAM unit.
    oam_handling: int = 10
    # -- once per PDU ---------------------------------------------------------
    context_open: int = 35  #: first cell: allocate buffer, init state
    final_check: int = 18  #: last cell: trailer length/CRC verdict
    completion: int = 45  #: completion descriptor, DMA post, interrupt

    #: Memo keyed (position, cam_fitted, table_size): frozen budget,
    #: few distinct keys, called once per simulated cell.
    _cycle_memo: Dict[Tuple[CellPosition, bool, int], float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name, value in self.breakdown().items():
            if value < 0:
                raise ValueError(f"negative cycle budget for {name}")

    def lookup_cycles(self, cam_fitted: bool, table_size: int = 0) -> float:
        """VCI classification cost given the assist and the table size."""
        if cam_fitted:
            return self.vci_lookup_cam
        return (
            self.vci_lookup_software
            + self.vci_lookup_software_per_entry * max(0, table_size)
        )

    def cell_cycles(
        self,
        position: CellPosition,
        cam_fitted: bool = True,
        table_size: int = 0,
    ) -> float:
        """Engine cycles to absorb one cell at *position*."""
        key = (position, cam_fitted, table_size)
        memo = self._cycle_memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        lookup = self.lookup_cycles(cam_fitted, table_size)
        cycles = (
            self.fifo_pop
            + self.header_parse
            + lookup
            + self.context_update
            + self.payload_store
            + self.crc_per_cell
        )
        if position in (CellPosition.FIRST, CellPosition.ONLY):
            cycles += self.context_open
        if position in (CellPosition.LAST, CellPosition.ONLY):
            cycles += self.final_check + self.completion
        memo[key] = cycles
        return cycles

    def pdu_cycles(self) -> int:
        """Fixed per-PDU overhead (first-cell open + last-cell close)."""
        return self.context_open + self.final_check + self.completion

    def pdu_total_cycles(
        self, n_cells: int, cam_fitted: bool = True, table_size: int = 0
    ) -> float:
        """Whole-PDU engine cost for an *n_cells*-cell PDU."""
        if n_cells < 1:
            raise ValueError("PDU must have at least one cell")
        return sum(
            self.cell_cycles(CellPosition.of(i, n_cells), cam_fitted, table_size)
            for i in range(n_cells)
        )

    def breakdown(self) -> Dict[str, float]:
        """Per-operation budget for the T2 table."""
        return {
            "fifo_pop": self.fifo_pop,
            "header_parse": self.header_parse,
            "vci_lookup_cam": self.vci_lookup_cam,
            "vci_lookup_software": self.vci_lookup_software,
            "vci_lookup_software_per_entry": self.vci_lookup_software_per_entry,
            "context_update": self.context_update,
            "payload_store": self.payload_store,
            "crc_per_cell": self.crc_per_cell,
            "oam_handling": self.oam_handling,
            "context_open": self.context_open,
            "final_check": self.final_check,
            "completion": self.completion,
        }

    def cell_breakdown(
        self,
        position: CellPosition,
        cam_fitted: bool = True,
        table_size: int = 0,
    ) -> Dict[str, float]:
        """The operations actually executed for one cell at *position*.

        Sums to :meth:`cell_cycles`; the profiler attributes live engine
        cycles to operations through this map.  The lookup op is named
        for the assist actually used.
        """
        lookup_op = "vci_lookup_cam" if cam_fitted else "vci_lookup_software"
        ops: Dict[str, float] = {
            "fifo_pop": self.fifo_pop,
            "header_parse": self.header_parse,
            lookup_op: self.lookup_cycles(cam_fitted, table_size),
            "context_update": self.context_update,
            "payload_store": self.payload_store,
        }
        if self.crc_per_cell:
            ops["crc_per_cell"] = self.crc_per_cell
        if position in (CellPosition.FIRST, CellPosition.ONLY):
            ops["context_open"] = self.context_open
        if position in (CellPosition.LAST, CellPosition.ONLY):
            ops["final_check"] = self.final_check
            ops["completion"] = self.completion
        return ops

    def oam_breakdown(self) -> Dict[str, float]:
        """The operations for one management cell."""
        return {
            "fifo_pop": self.fifo_pop,
            "header_parse": self.header_parse,
            "oam_handling": self.oam_handling,
        }

    def with_software_crc(self, cycles_per_cell: int = 130) -> "RxCostModel":
        """Ablation: CRC done by the engine instead of hardware."""
        return replace(self, crc_per_cell=cycles_per_cell)
