"""Closed-form throughput: the paper's core feasibility arithmetic.

In steady state the pipeline stages (engine, bus, link) overlap, so the
sustainable PDU rate is set by the *slowest* stage::

    T_engine(n) = (per-PDU cycles + n * per-cell cycles) / engine clock
    T_link(n)   = n * cell slot time
    T_bus(n)    = bus occupancy of the PDU's bytes
    rate        = 1 / max(T_engine, T_link, T_bus)

User throughput is then ``sdu_bits x rate``.  Small PDUs are dominated
by per-PDU engine overhead (the left side of the F2/F3 curves); large
PDUs saturate the link unless the per-cell budget exceeds the cell slot
-- the paper's go/no-go criterion for each link rate.
"""

from __future__ import annotations

from repro.aal.aal5 import cells_for_sdu
from repro.nic.config import NicConfig
from repro.nic.costs import CellPosition


def _dma_time(config: NicConfig, sdu_size: int) -> float:
    """One whole-PDU DMA: machine setup + bus occupancy + completion."""
    return (
        config.dma.setup_time
        + config.bus.transfer_time(sdu_size)
        + config.dma.completion_time
    )


def _tx_engine_time(config: NicConfig, n_cells: int, sdu_size: int) -> float:
    """Engine-loop time per PDU.

    The engine *waits* for the staging DMA (the firmware loop is
    sequential), so the DMA belongs to the engine stage, not a parallel
    one.
    """
    cycles = config.tx_costs.pdu_total_cycles(n_cells)
    return config.tx_engine.seconds_for(cycles) + _dma_time(config, sdu_size)


def _rx_engine_time(config: NicConfig, n_cells: int, sdu_size: int) -> float:
    """Engine-loop time per PDU.

    Unlike transmit, the completion DMA runs concurrently with the
    engine (the engine only posts it), so it is a separate pipeline
    stage, not part of this one.
    """
    cycles = config.rx_costs.pdu_total_cycles(n_cells, config.cam_fitted)
    return config.rx_engine.seconds_for(cycles)


def _link_time(config: NicConfig, n_cells: int) -> float:
    return n_cells * config.link.cell_time


def _fifo_slack(config: NicConfig, depth_cells: int) -> float:
    """Wire time a link-side FIFO can bridge while the engine is away."""
    return depth_cells * config.link.cell_time


def _tx_effective_link_time(config: NicConfig, n_cells: int, sdu_size: int) -> float:
    """Link stage corrected for the non-overlapped staging DMA.

    Between PDUs the engine fetches the next descriptor and waits for
    its DMA; the transmit FIFO keeps the wire busy for at most its depth
    in cell slots.  Any staging time beyond that slack stretches the
    effective link period.
    """
    away = _dma_time(config, sdu_size) + config.tx_engine.seconds_for(
        config.tx_costs.descriptor_fetch
        + config.tx_costs.header_template_load
        + config.tx_costs.dma_setup
    )
    uncovered = max(0.0, away - _fifo_slack(config, config.tx_fifo_cells))
    return _link_time(config, n_cells) + uncovered


def _rx_effective_link_time(config: NicConfig, n_cells: int, sdu_size: int) -> float:
    """Link stage on receive (no DMA correction: the DMA is concurrent)."""
    return _link_time(config, n_cells)


def tx_throughput_model_mbps(config: NicConfig, sdu_size: int) -> float:
    """Sustainable transmit user throughput for back-to-back PDUs."""
    n = cells_for_sdu(sdu_size)
    bottleneck = max(
        _tx_engine_time(config, n, sdu_size),
        _tx_effective_link_time(config, n, sdu_size),
    )
    if bottleneck == 0:
        return float("inf")
    return (sdu_size * 8 / bottleneck) / 1e6


def rx_throughput_model_mbps(config: NicConfig, sdu_size: int) -> float:
    """Sustainable receive user throughput for back-to-back PDUs."""
    n = cells_for_sdu(sdu_size)
    bottleneck = max(
        _rx_engine_time(config, n, sdu_size),
        _rx_effective_link_time(config, n, sdu_size),
        _dma_time(config, sdu_size),
    )
    if bottleneck == 0:
        return float("inf")
    return (sdu_size * 8 / bottleneck) / 1e6


def _host_send_time(config: NicConfig, sdu_size: int) -> float:
    """Host CPU time to post one PDU (the software pipeline stage)."""
    cycles = config.os_costs.send_path_cycles(sdu_size)
    return cycles / config.host_cpu.clock_hz


def _host_receive_time(config: NicConfig, sdu_size: int) -> float:
    """Host CPU time to take one completion (interrupt + OS path)."""
    cycles = (
        config.interrupt.entry_cycles
        + config.os_costs.driver_rx_cycles
        + config.interrupt.exit_cycles
        + config.os_costs.receive_path_cycles(sdu_size)
    )
    return cycles / config.host_cpu.clock_hz


def end_to_end_throughput_model_mbps(config: NicConfig, sdu_size: int) -> float:
    """Sustainable goodput including the host software stages.

    The full pipeline: sending host -> TX engine -> link -> RX engine ->
    receiving host.  For small PDUs the host stages dominate even with
    offload -- the residual per-PDU cost the architecture cannot remove.
    """
    n = cells_for_sdu(sdu_size)
    bottleneck = max(
        _host_send_time(config, sdu_size),
        _tx_engine_time(config, n, sdu_size),
        _tx_effective_link_time(config, n, sdu_size),
        _rx_engine_time(config, n, sdu_size),
        _rx_effective_link_time(config, n, sdu_size),
        _dma_time(config, sdu_size),
        _host_receive_time(config, sdu_size),
    )
    if bottleneck == 0:
        return float("inf")
    return (sdu_size * 8 / bottleneck) / 1e6


def tx_saturation_mbps(config: NicConfig) -> float:
    """Large-PDU transmit ceiling: per-cell engine rate vs cell slot."""
    per_cell = config.tx_engine.seconds_for(
        config.tx_costs.cell_cycles(CellPosition.MIDDLE)
    )
    limit = max(per_cell, config.link.cell_time)
    return (48 * 8 / limit) / 1e6


def rx_saturation_mbps(config: NicConfig) -> float:
    """Large-PDU receive ceiling: per-cell engine rate vs cell slot."""
    per_cell = config.rx_engine.seconds_for(
        config.rx_costs.cell_cycles(CellPosition.MIDDLE, config.cam_fitted)
    )
    limit = max(per_cell, config.link.cell_time)
    return (48 * 8 / limit) / 1e6


def saturating_pdu_size(config: NicConfig, direction: str = "tx") -> int:
    """Smallest SDU (bytes) at which the link becomes the bottleneck.

    Returns the knee of the F2/F3 curve; if the engine can never keep
    up with the link (per-cell time above the cell slot), returns -1.
    """
    if direction not in ("tx", "rx"):
        raise ValueError("direction must be 'tx' or 'rx'")
    engine_time = _tx_engine_time if direction == "tx" else _rx_engine_time
    # Per-cell feasibility first: if even the largest PDU is engine-bound
    # there is no knee.
    probe = 48 * 1300
    if engine_time(config, cells_for_sdu(probe), probe) > _link_time(
        config, cells_for_sdu(probe)
    ):
        return -1
    lo, hi = 1, probe
    while lo < hi:
        mid = (lo + hi) // 2
        n = cells_for_sdu(mid)
        if engine_time(config, n, mid) <= _link_time(config, n):
            hi = mid
        else:
            lo = mid + 1
    return lo
