"""Closed-form models mirroring the paper's pencil-and-paper analysis.

The original evaluation derives throughput and latency directly from
cycle budgets -- no simulator existed.  This package reproduces those
derivations so experiment F8 can cross-validate the discrete-event
simulation against the analysis: where they agree, the simulator adds
only queueing detail; where they diverge, the divergence *is* the
finding (pipelining and contention the closed forms ignore).
"""

from repro.analysis.latency import LatencyBreakdown, latency_model
from repro.analysis.sweep import Series, sweep
from repro.analysis.throughput import (
    end_to_end_throughput_model_mbps,
    rx_saturation_mbps,
    rx_throughput_model_mbps,
    saturating_pdu_size,
    tx_saturation_mbps,
    tx_throughput_model_mbps,
)
from repro.analysis.utilization import (
    host_cycles_per_pdu_hostsar,
    host_cycles_per_pdu_offloaded,
    offload_advantage,
)

__all__ = [
    "LatencyBreakdown",
    "Series",
    "end_to_end_throughput_model_mbps",
    "host_cycles_per_pdu_hostsar",
    "host_cycles_per_pdu_offloaded",
    "latency_model",
    "offload_advantage",
    "rx_saturation_mbps",
    "rx_throughput_model_mbps",
    "saturating_pdu_size",
    "sweep",
    "tx_saturation_mbps",
    "tx_throughput_model_mbps",
]
