"""Host CPU cost accounting: the offload dividend (T3).

The architectural payoff the paper claims is that the host's cost per
PDU becomes *independent of the PDU's cell count*: the host touches
descriptors and takes one interrupt, while the adaptor touches cells.
These closed forms give both sides of that comparison.
"""

from __future__ import annotations

from repro.aal.aal5 import cells_for_sdu
from repro.baselines.host_sar import HostSarConfig
from repro.host.interrupts import InterruptSpec
from repro.host.os_model import OsCostModel
from repro.nic.config import NicConfig


def host_cycles_per_pdu_offloaded(
    config: NicConfig, sdu_size: int, direction: str = "rx"
) -> float:
    """Host CPU cycles to move one PDU through the offloaded interface."""
    os_costs = config.os_costs
    if direction == "tx":
        return os_costs.send_path_cycles(sdu_size)
    if direction == "rx":
        return (
            config.interrupt.entry_cycles
            + os_costs.driver_rx_cycles
            + config.interrupt.exit_cycles
            + os_costs.receive_path_cycles(sdu_size)
            - os_costs.driver_rx_cycles  # receive_path already counts it
        )
    raise ValueError("direction must be 'tx' or 'rx'")


def host_cycles_per_pdu_hostsar(
    config: HostSarConfig, sdu_size: int, direction: str = "rx"
) -> float:
    """Host CPU cycles for the same PDU with software SAR."""
    n = cells_for_sdu(sdu_size)
    sar = config.sar_costs
    os_costs = config.os_costs
    if direction == "tx":
        return (
            os_costs.send_path_cycles(sdu_size)
            + sar.tx_pdu_overhead
            + n * sar.tx_cell_cycles()
        )
    if direction == "rx":
        per_cell_interrupt = (
            config.interrupt.entry_cycles
            + sar.rx_interrupt_handler
            + config.interrupt.exit_cycles
        )
        return (
            n * (per_cell_interrupt + sar.rx_cell_cycles())
            + sar.rx_pdu_overhead
            + os_costs.receive_path_cycles(sdu_size)
        )
    raise ValueError("direction must be 'tx' or 'rx'")


def offload_advantage(
    nic_config: NicConfig,
    sar_config: HostSarConfig,
    sdu_size: int,
    direction: str = "rx",
) -> float:
    """How many times fewer host cycles the offloaded path needs."""
    offloaded = host_cycles_per_pdu_offloaded(nic_config, sdu_size, direction)
    software = host_cycles_per_pdu_hostsar(sar_config, sdu_size, direction)
    return software / offloaded if offloaded > 0 else float("inf")


def host_saturation_pdu_rate(
    os_costs: OsCostModel,
    interrupt: InterruptSpec,
    cpu_clock_hz: float,
    sdu_size: int,
) -> float:
    """Maximum receive PDU rate before the host CPU alone saturates."""
    cycles = (
        interrupt.entry_cycles
        + interrupt.exit_cycles
        + os_costs.receive_path_cycles(sdu_size)
    )
    return cpu_clock_hz / cycles if cycles > 0 else float("inf")
