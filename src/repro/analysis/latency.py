"""Closed-form latency decomposition for one unloaded PDU (F4).

The model charges each pipeline stage once, honouring the overlap the
architecture is designed around:

- the transmit engine emits cells *while* the link serialises them, so
  only the first cell's engine work precedes the link (the rest hides);
- the receive engine absorbs cells as they arrive, so only the last
  cell's work plus the completion path lands after the final cell.

For short PDUs the fixed terms (OS, DMA setup, interrupt) dominate --
the paper's observation that latency, unlike throughput, is not rescued
by offload alone.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.aal.aal5 import cells_for_sdu
from repro.nic.config import NicConfig
from repro.nic.costs import CellPosition


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-stage seconds for one PDU crossing an unloaded interface pair."""

    os_send: float
    tx_prologue: float  #: descriptor + header template + DMA setup
    dma_down: float  #: PDU from host memory to adaptor
    tx_first_cell: float  #: engine work before the wire sees bits
    link_serialization: float  #: n cells at the cell slot time
    propagation: float
    rx_last_cell: float  #: receive engine work after the final cell
    rx_completion: float  #: trailer check + completion descriptor
    dma_up: float  #: PDU from adaptor to host buffer
    interrupt: float
    os_receive: float

    @property
    def total(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def dominant_stage(self) -> str:
        return max(self.as_dict().items(), key=lambda kv: kv[1])[0]


def latency_model(
    config: NicConfig,
    sdu_size: int,
    propagation_delay: float = 0.0,
) -> LatencyBreakdown:
    """Unloaded end-to-end latency for one *sdu_size*-byte PDU."""
    n = cells_for_sdu(sdu_size)
    tx = config.tx_costs
    rx = config.rx_costs
    os_costs = config.os_costs
    first = CellPosition.ONLY if n == 1 else CellPosition.FIRST
    last = CellPosition.ONLY if n == 1 else CellPosition.LAST

    host_cycle = 1.0 / config.host_cpu.clock_hz
    interrupt_cycles = (
        config.interrupt.entry_cycles
        + os_costs.driver_rx_cycles
        + config.interrupt.exit_cycles
    )

    return LatencyBreakdown(
        os_send=os_costs.send_path_cycles(sdu_size) * host_cycle,
        tx_prologue=config.tx_engine.seconds_for(tx.pdu_cycles() - tx.completion_writeback),
        dma_down=config.dma.setup_time
        + config.bus.transfer_time(sdu_size)
        + config.dma.completion_time,
        tx_first_cell=config.tx_engine.seconds_for(tx.cell_cycles(first)),
        link_serialization=n * config.link.cell_time,
        propagation=propagation_delay,
        rx_last_cell=config.rx_engine.seconds_for(
            rx.cell_cycles(last, config.cam_fitted) - rx.final_check - rx.completion
        ),
        rx_completion=config.rx_engine.seconds_for(rx.final_check + rx.completion),
        dma_up=config.dma.setup_time
        + config.bus.transfer_time(sdu_size)
        + config.dma.completion_time,
        interrupt=interrupt_cycles * host_cycle,
        # The driver's completion handling runs inside the interrupt
        # term above; charge only the remainder of the receive path.
        os_receive=os_costs.post_interrupt_receive_cycles(sdu_size) * host_cycle,
    )
