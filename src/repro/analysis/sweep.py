"""Parameter-sweep containers shared by experiments and benchmarks.

A :class:`Series` is the in-memory shape of one figure: named x values
and one or more named y vectors.  Keeping it dependency-free lets the
core library build figures that the harness renders as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class Series:
    """One figure's worth of data: x plus named y columns."""

    name: str
    x_label: str
    x: List[float] = field(default_factory=list)
    columns: Dict[str, List[float]] = field(default_factory=dict)

    def add_point(self, x: float, **ys: float) -> None:
        """Append one x and its y values (columns must stay consistent)."""
        if self.x and set(ys) != set(self.columns):
            raise ValueError(
                f"point columns {sorted(ys)} != series columns "
                f"{sorted(self.columns)}"
            )
        self.x.append(x)
        for key, value in ys.items():
            self.columns.setdefault(key, []).append(value)

    def column(self, name: str) -> List[float]:
        return self.columns[name]

    def __len__(self) -> int:
        return len(self.x)

    def crossover(self, a: str, b: str) -> float | None:
        """First x where column *a* stops exceeding column *b* (or None)."""
        ya, yb = self.columns[a], self.columns[b]
        for x, va, vb in zip(self.x, ya, yb):
            if va <= vb:
                return x
        return None

    def rows(self) -> List[List[float]]:
        """Tabular form: one row per x."""
        keys = sorted(self.columns)
        return [
            [x] + [self.columns[k][i] for k in keys]
            for i, x in enumerate(self.x)
        ]

    def headers(self) -> List[str]:
        return [self.x_label] + sorted(self.columns)


def sweep(
    name: str,
    x_label: str,
    xs: Sequence[float],
    fn: Callable[[float], Dict[str, float]],
) -> Series:
    """Evaluate ``fn(x)`` over *xs*, collecting its dict outputs."""
    series = Series(name=name, x_label=x_label)
    for x in xs:
        series.add_point(x, **fn(x))
    return series
