"""Declarative testbed builder: say the topology, get the wiring.

Every multi-node experiment used to hand-wire the same block: links
built back-to-front so ports can hold them, switches built after their
output ports, deferred sinks for switch inputs, route tables keyed by
input-port indices the author had to track by hand.  :class:`Testbed`
replaces that with declarations::

    tb = Testbed()
    tb.add_host("s0").add_host("d")
    tb.add_switch("sw1").add_switch("sw2")
    tb.link("s0", "sw1")
    tb.link("sw1", "sw2", buffer_cells=256, port_name="bottleneck")
    tb.link("sw2", "d", port_name="p-egress")
    tb.vc(VcAddress(0, 32), ["s0", "sw1", "sw2", "d"])
    net = tb.build(sim)

``build`` returns a :class:`Scenario` holding the live objects by name
(``net.hosts["s0"]``, ``net.ports["bottleneck"]``...), with dynamic
route management (:meth:`Scenario.add_route` /
:meth:`Scenario.remove_route`) for session churn and one-call
instrumentation through :func:`repro.obs.instrument`.

Determinism contract: only :class:`HostNetworkInterface` construction
touches the simulator's event-sequence numbering, and hosts are built
in declaration order -- so an experiment migrated onto Testbed with the
same host order produces byte-identical results.  Links, ports,
switches, routes, and VC opens are pure data-structure work and may be
built in any internally consistent order; switch-input sinks are
late-bound (``PhysicalLink.connect``), which is what lets cyclic
fabrics (forward *and* reverse paths through the same two switches)
be declared without a topological sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.atm.addressing import VcAddress
from repro.atm.link import LinkSpec, PhysicalLink
from repro.atm.mux import OutputPort
from repro.atm.switch import AtmSwitch, RoutingEntry
from repro.nic.config import NicConfig, aurora_oc3
from repro.nic.nic import HostNetworkInterface, connect as _connect_pair
from repro.sim.core import Simulator


@dataclass
class _HostDecl:
    name: str
    config: Optional[NicConfig]


@dataclass
class _SwitchDecl:
    name: str
    fabric_delay: float


@dataclass
class _LinkDecl:
    src: str
    dst: str
    spec: Optional[LinkSpec]
    buffer_cells: Optional[int]
    efci_threshold: Optional[int]
    clp_threshold: Optional[int]
    propagation_delay: float
    loss: Any
    name: str
    port_name: Optional[str]


@dataclass
class _ConnectDecl:
    a: str
    b: str
    spec: Optional[LinkSpec]
    propagation_delay: float
    loss_ab: Any
    loss_ba: Any


@dataclass
class _PathDecl:
    address: VcAddress
    path: Tuple[str, ...]
    open_endpoints: bool
    peak_rate_bps: Optional[float]


@dataclass
class _WorkloadDecl:
    host: str
    factory: Callable[[Simulator, HostNetworkInterface], Any]


class Scenario:
    """The live objects a :class:`Testbed` build produced, by name."""

    def __init__(self) -> None:
        self.hosts: Dict[str, HostNetworkInterface] = {}
        self.switches: Dict[str, AtmSwitch] = {}
        self.links: Dict[str, PhysicalLink] = {}
        self.ports: Dict[str, OutputPort] = {}
        self.workloads: List[Any] = []
        #: (switch, upstream-neighbour) -> the switch input index the
        #: neighbour's cells arrive on.  Route helpers consult these so
        #: callers never touch port indices.
        self._in_index: Dict[Tuple[str, str], int] = {}
        self._out_index: Dict[Tuple[str, str], int] = {}

    # -- dynamic routing (session churn) ---------------------------------

    def _hops(self, path: Sequence[str]) -> List[Tuple[str, int, int]]:
        """(switch, in_index, out_index) for each switch hop of *path*."""
        hops = []
        for prev, node, nxt in zip(path, path[1:], path[2:]):
            if node not in self.switches:
                continue
            try:
                in_idx = self._in_index[(node, prev)]
                out_idx = self._out_index[(node, nxt)]
            except KeyError as exc:
                raise KeyError(
                    f"no declared link through switch {node!r} "
                    f"for hop {prev!r}->{node!r}->{nxt!r}"
                ) from exc
            hops.append((node, in_idx, out_idx))
        return hops

    def add_route(self, address: VcAddress, path: Sequence[str]) -> None:
        """Install *address*'s routes along *path* (hosts at the ends)."""
        for node, in_idx, out_idx in self._hops(path):
            self.switches[node].add_route(
                in_idx, address, RoutingEntry(out_idx, address.vpi, address.vci)
            )

    def remove_route(self, address: VcAddress, path: Sequence[str]) -> None:
        """Tear down what :meth:`add_route` installed (RELEASE time)."""
        for node, in_idx, _out_idx in self._hops(path):
            self.switches[node].remove_routes(in_idx, address)

    # -- observability ----------------------------------------------------

    def instrument(self, registry: Any, trace: Any = None) -> None:
        """Register every host, port, and link with *registry*.

        Uses the type-dispatched :func:`repro.obs.instrument`, prefixing
        each metric family with the declared name.  When *trace* is
        given it is attached to every host and link.
        """
        from repro.obs import instrument

        for name, nic in self.hosts.items():
            instrument(registry, nic, prefix=f"{name}.")
            if trace is not None:
                nic.attach_trace(trace)
        for name, port in self.ports.items():
            instrument(registry, port, prefix=f"{name}.")
        for name, link in self.links.items():
            instrument(registry, link, prefix=f"{name}.")
            if trace is not None:
                link.trace = trace


class Testbed:
    """Collects topology declarations; :meth:`build` wires them up.

    All declaration methods return ``self`` for chaining.  Names must
    be unique across hosts and switches.
    """

    def __init__(self, default_config: Optional[NicConfig] = None) -> None:
        self.default_config = default_config
        self._hosts: List[_HostDecl] = []
        self._switches: List[_SwitchDecl] = []
        self._links: List[_LinkDecl] = []
        self._connects: List[_ConnectDecl] = []
        self._paths: List[_PathDecl] = []
        self._workloads: List[_WorkloadDecl] = []
        self._names: Dict[str, str] = {}  # name -> "host" | "switch"

    # -- declarations -----------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        if name in self._names:
            raise ValueError(f"duplicate node name {name!r}")
        self._names[name] = kind

    def add_host(
        self, name: str, config: Optional[NicConfig] = None
    ) -> "Testbed":
        """Declare a host interface (built in declaration order)."""
        self._claim(name, "host")
        self._hosts.append(_HostDecl(name, config))
        return self

    def add_switch(self, name: str, fabric_delay: float = 0.0) -> "Testbed":
        """Declare an ATM switch."""
        self._claim(name, "switch")
        self._switches.append(_SwitchDecl(name, fabric_delay))
        return self

    def link(
        self,
        src: str,
        dst: str,
        *,
        spec: Optional[LinkSpec] = None,
        buffer_cells: Optional[int] = None,
        efci_threshold: Optional[int] = None,
        clp_threshold: Optional[int] = None,
        propagation_delay: float = 0.0,
        loss: Any = None,
        name: Optional[str] = None,
        port_name: Optional[str] = None,
    ) -> "Testbed":
        """Declare a unidirectional link from *src* to *dst*.

        A switch-sourced link gets an :class:`OutputPort` in front of it
        (``buffer_cells`` / ``efci_threshold`` / ``clp_threshold``
        configure that port); a host-sourced link becomes the host's
        transmit link.  The default link name is ``"src->dst"``, the
        convention the hand-wired experiments already used.
        """
        for node in (src, dst):
            if node not in self._names:
                raise ValueError(f"unknown node {node!r} in link()")
        if self._names[src] == "host" and any(
            ld.src == src for ld in self._links
        ):
            raise ValueError(f"host {src!r} already has a transmit link")
        self._links.append(
            _LinkDecl(
                src=src,
                dst=dst,
                spec=spec,
                buffer_cells=buffer_cells,
                efci_threshold=efci_threshold,
                clp_threshold=clp_threshold,
                propagation_delay=propagation_delay,
                loss=loss,
                name=name or f"{src}->{dst}",
                port_name=port_name,
            )
        )
        return self

    def connect(
        self,
        a: str,
        b: str,
        *,
        spec: Optional[LinkSpec] = None,
        propagation_delay: float = 0.0,
        loss_ab: Any = None,
        loss_ba: Any = None,
    ) -> "Testbed":
        """Declare a host-to-host duplex pair (built via ``nic.connect``).

        Mirrors :func:`repro.nic.nic.connect`, including its side effect
        of starting both interfaces; the pair lands in
        ``Scenario.links`` as ``"a->b"`` and ``"b->a"``.
        """
        for node in (a, b):
            if self._names.get(node) != "host":
                raise ValueError(f"connect() joins hosts; {node!r} is not one")
        self._connects.append(
            _ConnectDecl(a, b, spec, propagation_delay, loss_ab, loss_ba)
        )
        return self

    def vc(
        self,
        address: VcAddress,
        path: Sequence[str],
        *,
        peak_rate_bps: Optional[float] = None,
    ) -> "Testbed":
        """Declare a VC: open at both end hosts, route at each switch.

        The first host opens with *peak_rate_bps* (the sender's traffic
        contract; None means unshaped), the last host opens plain.
        """
        self._check_path(path, endpoints_are_hosts=True)
        self._paths.append(
            _PathDecl(address, tuple(path), True, peak_rate_bps)
        )
        return self

    def route(self, address: VcAddress, path: Sequence[str]) -> "Testbed":
        """Declare routes only (no VC open) -- e.g. an RM return path."""
        self._check_path(path, endpoints_are_hosts=False)
        self._paths.append(_PathDecl(address, tuple(path), False, None))
        return self

    def workload(
        self,
        host: str,
        factory: Callable[[Simulator, HostNetworkInterface], Any],
    ) -> "Testbed":
        """Declare a workload: ``factory(sim, nic)`` runs after wiring."""
        if self._names.get(host) != "host":
            raise ValueError(f"workload() needs a host; {host!r} is not one")
        self._workloads.append(_WorkloadDecl(host, factory))
        return self

    def _check_path(
        self, path: Sequence[str], endpoints_are_hosts: bool
    ) -> None:
        if len(path) < 2:
            raise ValueError("a path needs at least two nodes")
        for node in path:
            if node not in self._names:
                raise ValueError(f"unknown node {node!r} in path")
        if endpoints_are_hosts:
            for node in (path[0], path[-1]):
                if self._names[node] != "host":
                    raise ValueError(
                        f"vc() path must start and end at hosts, not {node!r}"
                    )
        for src, dst in zip(path, path[1:]):
            if not self._has_link(src, dst):
                raise ValueError(f"path hop {src!r}->{dst!r} has no link")

    def _has_link(self, src: str, dst: str) -> bool:
        if any(ld.src == src and ld.dst == dst for ld in self._links):
            return True
        return any(
            (cd.a == src and cd.b == dst) or (cd.b == src and cd.a == dst)
            for cd in self._connects
        )

    # -- realisation ------------------------------------------------------

    def build(self, sim: Simulator) -> Scenario:
        """Wire the declared topology into *sim* and return it live."""
        net = Scenario()

        # Hosts first, in declaration order: the one build step whose
        # order is visible in the event-sequence numbering.
        for hd in self._hosts:
            config = hd.config or self.default_config or aurora_oc3()
            net.hosts[hd.name] = HostNetworkInterface(
                sim, config, name=hd.name
            )

        # Links (and the ports in front of switch-sourced ones).  Sinks
        # into switches stay unbound until the switches exist.
        out_ports: Dict[str, List[OutputPort]] = {
            sd.name: [] for sd in self._switches
        }
        pending_sinks: List[Tuple[PhysicalLink, str, str]] = []
        for ld in self._links:
            spec = ld.spec or self._spec_near(ld, net)
            dst_is_switch = self._names[ld.dst] == "switch"
            sink = None if dst_is_switch else net.hosts[ld.dst].rx_input
            link = PhysicalLink(
                sim,
                spec,
                sink=sink,
                propagation_delay=ld.propagation_delay,
                loss_model=ld.loss,
                name=ld.name,
            )
            if ld.name in net.links:
                raise ValueError(f"duplicate link name {ld.name!r}")
            net.links[ld.name] = link
            if dst_is_switch:
                pending_sinks.append((link, ld.dst, ld.src))
            if self._names[ld.src] == "switch":
                port_name = ld.port_name or f"p:{ld.name}"
                port = OutputPort(
                    sim,
                    link,
                    buffer_cells=ld.buffer_cells,
                    name=port_name,
                    efci_threshold=ld.efci_threshold,
                    clp_threshold=ld.clp_threshold,
                )
                net._out_index[(ld.src, ld.dst)] = len(out_ports[ld.src])
                out_ports[ld.src].append(port)
                if port_name in net.ports:
                    raise ValueError(f"duplicate port name {port_name!r}")
                net.ports[port_name] = port
            else:
                net.hosts[ld.src].attach_tx_link(link)

        for sd in self._switches:
            net.switches[sd.name] = AtmSwitch(
                sim,
                out_ports[sd.name],
                fabric_delay=sd.fabric_delay,
                name=sd.name,
            )

        # Late-bind the switch-input sinks, assigning input indices per
        # switch in link-declaration order.
        next_in: Dict[str, int] = {sd.name: 0 for sd in self._switches}
        for link, sw_name, src_name in pending_sinks:
            idx = next_in[sw_name]
            next_in[sw_name] += 1
            net._in_index[(sw_name, src_name)] = idx
            link.connect(net.switches[sw_name].input(idx))

        # Host-to-host duplex pairs (starts both ends, like nic.connect
        # always has).
        for cd in self._connects:
            ab, ba = _connect_pair(
                sim,
                net.hosts[cd.a],
                net.hosts[cd.b],
                link=cd.spec,
                propagation_delay=cd.propagation_delay,
                loss_ab=cd.loss_ab,
                loss_ba=cd.loss_ba,
            )
            net.links[ab.name] = ab
            net.links[ba.name] = ba

        # VCs and routes, in one declaration-ordered pass.
        for pd in self._paths:
            net.add_route(pd.address, pd.path)
            if pd.open_endpoints:
                net.hosts[pd.path[0]].open_vc(
                    address=pd.address, peak_rate_bps=pd.peak_rate_bps
                )
                net.hosts[pd.path[-1]].open_vc(address=pd.address)

        for wd in self._workloads:
            net.workloads.append(wd.factory(sim, net.hosts[wd.host]))

        return net

    def _spec_near(self, ld: _LinkDecl, net: Scenario) -> LinkSpec:
        """Default link spec: the nearest host's configured link."""
        for node in (ld.src, ld.dst):
            if self._names[node] == "host":
                return net.hosts[node].config.link
        if self._hosts:
            return net.hosts[self._hosts[0].name].config.link
        return aurora_oc3().link
