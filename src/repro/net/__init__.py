"""Declarative network construction (:class:`repro.net.Testbed`).

The experiments' answer to hand-wired topology blocks: declare hosts,
switches, links, VC paths, and workloads; ``build(sim)`` realises them
in a deterministic order and hands back the live objects by name.  See
``docs/SCALE.md`` for the before/after.
"""

from repro.net.testbed import Scenario, Testbed

__all__ = ["Scenario", "Testbed"]
