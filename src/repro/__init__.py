"""repro: a reproduction of "A Host-Network Interface Architecture for ATM".

The package simulates the SIGCOMM '91 offloaded ATM host interface --
programmable segmentation/reassembly engines with hardware assists on a
TURBOchannel-class workstation -- together with every substrate the
evaluation needs: a discrete-event kernel, the ATM cell layer, the
adaptation layers, a host model, baselines, closed-form analysis,
workloads, and the experiment harness.

Quick start::

    from repro import Simulator, HostNetworkInterface, aurora_oc3, connect

    sim = Simulator()
    a = HostNetworkInterface(sim, aurora_oc3(), name="a")
    b = HostNetworkInterface(sim, aurora_oc3(), name="b")
    connect(sim, a, b)
    vc = a.open_vc()
    b.open_vc(address=vc.address)
    b.on_pdu = lambda c: print(f"{c.size} bytes on {c.vc}")
    a.post(vc.address, b"hello ATM world")
    sim.run(until=0.01)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.atm import AtmCell, STS3C_155, STS12C_622, TAXI_100, VcAddress
from repro.nic import (
    HostNetworkInterface,
    NicConfig,
    aurora_oc3,
    aurora_oc12,
    connect,
    taxi_lan,
)
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "AtmCell",
    "HostNetworkInterface",
    "NicConfig",
    "STS12C_622",
    "STS3C_155",
    "Simulator",
    "TAXI_100",
    "VcAddress",
    "__version__",
    "aurora_oc12",
    "aurora_oc3",
    "connect",
    "taxi_lan",
]
