"""Declarative fault plans.

A plan is a frozen description of one fault episode -- *what* goes
wrong, *where*, and *when* -- with no simulator state of its own.  The
campaign materialises each plan against a concrete testbed via
:meth:`FaultPlan.apply`, handing it a :class:`random.Random` derived
from ``(campaign seed, plan index, plan label)``, so a campaign's whole
fault schedule replays bit-identically from its seed.

Plans plug into hooks the components already expose:

======================  =====================================================
plan                    hook
======================  =====================================================
:class:`UniformLossPlan`    :class:`~repro.atm.errors.ScheduledLoss` on the link
:class:`LinkFlapPlan`       total-loss windows on the link (outage + return)
:class:`BurstLossPlan`      Gilbert-Elliott chain, window-gated, on the link
:class:`TailLossPlan`       :class:`~repro.atm.errors.TailLoss` on the link
:class:`CorruptionPlan`     ``error_model`` hook on the link
:class:`EngineStallPlan`    :meth:`~repro.nic.engine.EngineClock.request_stall`
:class:`CamMissPlan`        ``fault_hook`` on :class:`~repro.nic.cam.Cam`
:class:`InterruptStormPlan` :meth:`~repro.host.interrupts.InterruptController.inject_spurious`
======================  =====================================================
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Tuple

from repro.atm.cell import AtmCell
from repro.atm.errors import (
    BitErrorModel,
    GilbertElliottLoss,
    ScheduledLoss,
    TailLoss,
    UniformLoss,
)


class PlanError(ValueError):
    """A plan cannot apply to the campaign's testbed."""


class FaultPlan:
    """Base protocol: a label plus an :meth:`apply` hook.

    Subclasses are frozen dataclasses; ``apply`` must only install
    hooks and schedule simulator work -- all randomness comes from the
    *rng* argument so runs are reproducible from the campaign seed.
    """

    label: str = "fault"

    def apply(self, campaign, rng: random.Random) -> None:
        raise NotImplementedError  # pragma: no cover


@dataclass(frozen=True)
class UniformLossPlan(FaultPlan):
    """Bernoulli cell loss at probability *p* during ``[start, stop)``."""

    p: float = 0.01
    start: float = 0.0
    stop: float = math.inf
    label: str = "uniform-loss"

    def apply(self, campaign, rng: random.Random) -> None:
        campaign.link_loss.add(
            ScheduledLoss(UniformLoss(self.p, rng=rng), self.start, self.stop)
        )


@dataclass(frozen=True)
class BurstLossPlan(FaultPlan):
    """Gilbert-Elliott bursty loss during ``[start, stop)``.

    Models a congested switch port upstream: drops cluster in bursts of
    mean length ``1 / p_bad_to_good`` cells.  The chain's state is
    frozen outside the window, so the episode is self-contained.
    """

    start: float = 0.0
    stop: float = math.inf
    p_good_to_bad: float = 0.005
    p_bad_to_good: float = 0.2
    loss_in_bad: float = 1.0
    loss_in_good: float = 0.0
    label: str = "burst-loss"

    def apply(self, campaign, rng: random.Random) -> None:
        chain = GilbertElliottLoss(
            p_good_to_bad=self.p_good_to_bad,
            p_bad_to_good=self.p_bad_to_good,
            loss_in_bad=self.loss_in_bad,
            loss_in_good=self.loss_in_good,
            rng=rng,
        )
        campaign.link_loss.add(ScheduledLoss(chain, self.start, self.stop))


@dataclass(frozen=True)
class LinkFlapPlan(FaultPlan):
    """Total forward-link outage for *down_for* seconds, optionally recurring.

    Each flap is a ``ScheduledLoss`` window around a loss model that
    drops *everything*, so the link goes administratively dark and
    comes back -- the cleanest stimulus for the recovery plane's
    continuity checks.  With *period* set, ``repeats`` flaps start
    every *period* seconds; the link must be up between flaps
    (``period > down_for``).
    """

    start: float = 0.005
    down_for: float = 0.004
    period: float = 0.0  #: spacing between flap starts; 0 = single flap
    repeats: int = 1
    label: str = "link-flap"

    def __post_init__(self) -> None:
        if self.down_for <= 0:
            raise ValueError("down_for must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.repeats > 1 and self.period <= self.down_for:
            raise ValueError(
                "recurring flaps need period > down_for (link must come up)"
            )

    def apply(self, campaign, rng: random.Random) -> None:
        for k in range(self.repeats):
            t0 = self.start + k * self.period
            campaign.link_loss.add(
                ScheduledLoss(UniformLoss(1.0, rng=rng), t0, t0 + self.down_for)
            )


@dataclass(frozen=True)
class TailLossPlan(FaultPlan):
    """Drop the EOF cell of selected PDUs on one campaign VC.

    The sharpest single-cell fault for an AAL5-class receiver: the
    context is left open and either merges with the next frame or
    strands until the reassembly timer fires.  *vc_index* selects among
    the campaign's opened VCs; *pdu_indices* counts the VC's frames
    from zero.
    """

    vc_index: int = 0
    pdu_indices: Tuple[int, ...] = (0,)
    label: str = "tail-loss"

    def apply(self, campaign, rng: random.Random) -> None:
        try:
            vc = campaign.vcs[self.vc_index]
        except IndexError:
            raise PlanError(
                f"{self.label}: vc_index {self.vc_index} outside the "
                f"campaign's {len(campaign.vcs)} VCs"
            ) from None
        campaign.link_loss.add(TailLoss(vc, self.pdu_indices))


class _HecMarker:
    """Marks cells with an uncorrectable header error at probability *p*.

    The simulation carries the verdict in ``cell.meta['hec_error']``
    (header bytes are not modelled bit-for-bit); the receive path's
    framer check discards marked cells before the FIFO.
    """

    def __init__(self, p: float, rng: random.Random) -> None:
        self.p = p
        self.rng = rng
        self.marked = 0

    def maybe_corrupt(self, cell: AtmCell) -> AtmCell:
        if self.p > 0.0 and self.rng.random() < self.p:
            cell.meta["hec_error"] = True
            self.marked += 1
        return cell


class _CorruptionChain:
    """Applies several ``maybe_corrupt`` stages in sequence."""

    def __init__(self, stages) -> None:
        self.stages = list(stages)

    def maybe_corrupt(self, cell: AtmCell) -> AtmCell:
        for stage in self.stages:
            cell = stage.maybe_corrupt(cell)
        return cell


@dataclass(frozen=True)
class CorruptionPlan(FaultPlan):
    """Wire corruption: payload bit flips and/or HEC header errors.

    *payload_p* flips one payload bit (caught by the AAL's CRC, so the
    PDU dies at reassembly); *hec_p* marks the header uncorrectable
    (the cell dies at the framer).  Both per-cell probabilities.
    """

    payload_p: float = 0.0
    hec_p: float = 0.0
    label: str = "corruption"

    def __post_init__(self) -> None:
        for name, p in (("payload_p", self.payload_p), ("hec_p", self.hec_p)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")

    def apply(self, campaign, rng: random.Random) -> None:
        stages = []
        if self.payload_p > 0.0:
            stages.append(BitErrorModel(self.payload_p, rng=rng))
        if self.hec_p > 0.0:
            stages.append(_HecMarker(self.hec_p, rng=rng))
        if not stages:
            return
        existing = campaign.link.error_model
        if existing is not None:
            stages.insert(0, existing)
        campaign.link.error_model = _CorruptionChain(stages)


@dataclass(frozen=True)
class EngineStallPlan(FaultPlan):
    """Freeze a protocol engine at scheduled instants.

    Each entry of *at* requests a stall of *duration* seconds absorbed
    by the engine's next unit of work; links and FIFOs keep running, so
    a receive-side stall is exactly scheduled FIFO-overflow pressure.
    Use :meth:`periodic` to build a square-wave pressure window.
    """

    at: Tuple[float, ...] = ()
    duration: float = 1e-4
    engine: str = "rx"
    label: str = "engine-stall"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")
        if self.engine not in ("rx", "tx"):
            raise ValueError(f"engine must be 'rx' or 'tx', not {self.engine!r}")

    @classmethod
    def periodic(
        cls,
        start: float,
        stop: float,
        period: float,
        duration: float,
        engine: str = "rx",
    ) -> "EngineStallPlan":
        """Stalls of *duration* every *period* across ``[start, stop)``."""
        if period <= 0:
            raise ValueError("period must be positive")
        times = []
        t = start
        while t < stop:
            times.append(t)
            t += period
        return cls(at=tuple(times), duration=duration, engine=engine)

    def apply(self, campaign, rng: random.Random) -> None:
        nic = campaign.receiver if self.engine == "rx" else campaign.sender
        clock = nic.rx_clock if self.engine == "rx" else nic.tx_clock
        for t in self.at:
            campaign.sim.schedule_call(t, clock.request_stall, self.duration)


@dataclass(frozen=True)
class CamMissPlan(FaultPlan):
    """Force CAM lookup misses at probability *p* during ``[start, stop)``.

    A forced miss makes a programmed VC's cell look like one for an
    unopened connection -- the engine counts and discards it.  Models a
    flaky comparand array or a parity-disabled entry.
    """

    p: float = 0.01
    start: float = 0.0
    stop: float = math.inf
    label: str = "cam-miss"

    def apply(self, campaign, rng: random.Random) -> None:
        cam = campaign.receiver.cam
        if cam is None:
            raise PlanError(
                f"{self.label}: the receiver has no CAM fitted "
                "(config.cam_entries is None)"
            )
        sim, start, stop, p = campaign.sim, self.start, self.stop, self.p

        def flaky(_key) -> bool:
            return start <= sim.now < stop and rng.random() < p

        cam.fault_hook = flaky


@dataclass(frozen=True)
class InterruptStormPlan(FaultPlan):
    """Spurious device interrupts at *rate_hz* during ``[start, stop)``.

    Each spurious assertion costs the host full entry/exit dispatch
    plus *handler_cycles* of status polling but moves no data -- the
    classic storm that starves the OS receive path.
    """

    start: float = 0.0
    stop: float = 0.01
    rate_hz: float = 10e3
    handler_cycles: float = 50.0
    label: str = "interrupt-storm"

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("storm rate must be positive")
        if not self.start <= self.stop:
            raise ValueError(f"window [{self.start}, {self.stop}) is inverted")

    def apply(self, campaign, rng: random.Random) -> None:
        campaign.sim.process(self._storm(campaign, rng))

    def _storm(self, campaign, rng: random.Random):
        sim = campaign.sim
        intc = campaign.receiver.interrupts
        if self.start > sim.now:
            yield sim.timeout(self.start - sim.now)
        while sim.now < self.stop:
            intc.inject_spurious(self.handler_cycles)
            yield sim.timeout(rng.expovariate(self.rate_hz))
