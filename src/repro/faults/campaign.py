"""Fault campaigns: seeded plans composed onto a live testbed.

A :class:`FaultCampaign` builds a complete sender/receiver pair
(:func:`~repro.workloads.scenarios.build_point_to_point`), drives it
with bounded greedy traffic, materialises every fault plan against it,
runs to the configured horizon plus a quiet *drain* long enough for
the reassembly timer wheel to reclaim stranded contexts, and closes
the books with the :class:`~repro.faults.audit.CellConservationAuditor`.

Determinism: each plan's randomness is a named
:class:`~repro.sim.random.RandomStreams` stream derived from the
campaign seed, the plan's index, and its label, so the same campaign
object replays the identical fault schedule -- the property the
regression tests pin -- and no plan's draws perturb another's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.atm.errors import CompositeLoss
from repro.faults.audit import CellConservationAuditor, ConservationLedger
from repro.faults.plan import FaultPlan
from repro.nic.config import NicConfig
from repro.nic.nic import NicStats
from repro.sim.core import Simulator
from repro.sim.random import RandomStreams
from repro.workloads.generators import GreedySource
from repro.workloads.scenarios import PointToPoint, build_point_to_point


@dataclass(frozen=True)
class CampaignSpec:
    """Traffic shape and timing for one campaign run."""

    #: Horizon for traffic and fault activity, seconds.
    duration: float = 0.02
    #: Concurrent VCs, each with its own greedy source.
    n_vcs: int = 4
    #: SDU size per PDU, bytes.
    sdu_size: int = 8192
    #: PDUs each source offers (bounded so the run can drain; a source
    #: that finishes early simply goes quiet).
    pdus_per_vc: int = 40
    #: Quiet time after *duration* for in-flight cells to land and the
    #: timer wheel to reclaim stranded contexts.  None derives it from
    #: the config's reassembly timeout.
    drain: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.n_vcs < 1:
            raise ValueError("need at least one VC")
        if self.sdu_size < 1:
            raise ValueError("SDU size must be positive")
        if self.pdus_per_vc < 1:
            raise ValueError("pdus_per_vc must be >= 1")
        if self.drain is not None and self.drain < 0:
            raise ValueError("drain must be >= 0")


@dataclass
class CampaignResult:
    """Everything a campaign run produced, books included."""

    ledger: ConservationLedger
    stats: NicStats
    spec: CampaignSpec
    seed: int
    #: PDUs the receiving host's OS handed to the application.
    pdus_received: int
    #: Delivered user bits over the traffic horizon, Mb/s.
    goodput_mbps: float
    #: Simulated end time (horizon + drain).
    ended_at: float

    @property
    def is_conserved(self) -> bool:
        return self.ledger.is_conserved

    def summary(self) -> str:
        return (
            f"campaign seed={self.seed}: {self.pdus_received} PDUs, "
            f"{self.goodput_mbps:.1f} Mb/s goodput, "
            f"{self.ledger.unaccounted} unaccounted cells\n"
            f"{self.ledger.format()}"
        )


class FaultCampaign:
    """Composes fault plans onto a point-to-point testbed and runs it."""

    def __init__(
        self,
        config: NicConfig,
        plans: Sequence[FaultPlan] = (),
        spec: Optional[CampaignSpec] = None,
        seed: int = 1,
    ) -> None:
        self.config = config
        self.plans = list(plans)
        self.spec = spec if spec is not None else CampaignSpec()
        self.seed = seed

        self.sim = Simulator()
        #: Plans stack their loss episodes onto this composite.
        self.link_loss = CompositeLoss()
        self.scenario: PointToPoint = build_point_to_point(
            self.sim,
            config,
            n_vcs=self.spec.n_vcs,
            loss_ab=self.link_loss,
        )
        self.sender = self.scenario.sender
        self.receiver = self.scenario.receiver
        self.vcs = self.scenario.vcs
        self.link = self.scenario.link_ab
        self.auditor = CellConservationAuditor(self.link, self.receiver)
        self.sources: List[GreedySource] = [
            GreedySource(
                self.sim,
                self.sender,
                vc,
                self.spec.sdu_size,
                total_pdus=self.spec.pdus_per_vc,
                name=f"campaign-src{i}",
            )
            for i, vc in enumerate(self.vcs)
        ]
        self._ran = False

    def rng_for(self, index: int, plan: FaultPlan) -> random.Random:
        """The plan's private, replayable randomness stream."""
        return RandomStreams(self.seed).stream(f"plan.{index}.{plan.label}")

    @property
    def drain_time(self) -> float:
        """Quiet time appended after the horizon."""
        if self.spec.drain is not None:
            return self.spec.drain
        # Long enough for wire/FIFO/DMA residues to land and for the
        # timer wheel to sweep every stranded context at least once.
        return self.config.reassembly_timeout + 3 * self.config.reassembly_tick

    def run(self) -> CampaignResult:
        """Apply plans, drive traffic to the horizon, drain, audit."""
        if self._ran:
            raise RuntimeError("a campaign runs once; build a new one")
        self._ran = True
        for index, plan in enumerate(self.plans):
            plan.apply(self, self.rng_for(index, plan))
        for source in self.sources:
            source.start()
        self.sim.run(until=self.spec.duration)
        goodput = self.scenario.goodput_mbps(self.spec.duration)
        self.sim.run(until=self.spec.duration + self.drain_time)
        ledger = self.auditor.snapshot()
        return CampaignResult(
            ledger=ledger,
            stats=self.receiver.stats(),
            spec=self.spec,
            seed=self.seed,
            pdus_received=len(self.scenario.received),
            goodput_mbps=goodput,
            ended_at=self.sim.now,
        )
