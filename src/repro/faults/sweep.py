"""Fault campaigns as deterministic seed sweeps over the runner.

A single :class:`~repro.faults.campaign.FaultCampaign` answers "what
happens under this fault schedule"; a *campaign sweep* answers the
robustness question that actually matters -- "does the interface
degrade gracefully across *many* fault schedules" -- by running the
same plan preset over an axis of campaign seeds through
:func:`repro.runner.run_sweep`.  Each seed is one sweep point, so the
sweep inherits everything the runner provides: process-pool sharding,
per-point crash isolation, the content-addressed result cache, and
byte-identical serial/parallel results.

Determinism note: the campaign's replay contract is keyed by its *own*
seed (plans draw from ``RandomStreams(seed)`` streams named by plan
index and label), so the seed is an explicit sweep axis -- part of the
point's content hash -- rather than something derived from the hash.
That keeps seed ``k`` meaning the same fault schedule across presets
and designs, which is the common-random-numbers pairing the robustness
comparisons rely on.  The hash-derived ``streams`` argument every
kernel receives is deliberately unused here.

Plan presets are *named* (and the names are part of the point hash)
because sweep parameters must be canonical JSON scalars -- a frozen
dataclass plan would not survive the hash/pickle boundary.

Usage::

    from repro.faults.sweep import run_campaign_sweep, sweep_summary

    run = run_campaign_sweep("burst-loss", seeds=range(8), workers=4)
    print(sweep_summary(run))           # aggregate goodput + conservation
    series = run.series(name="burst-loss campaigns")   # x axis: seed
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.faults.campaign import CampaignSpec, FaultCampaign
from repro.faults.plan import (
    BurstLossPlan,
    CamMissPlan,
    CorruptionPlan,
    EngineStallPlan,
    FaultPlan,
    InterruptStormPlan,
    LinkFlapPlan,
    TailLossPlan,
    UniformLossPlan,
)
from repro.nic.config import NicConfig, aurora_oc3, aurora_oc12
from repro.runner import ResultStore, RunLog, SweepRun, SweepSpec, run_sweep
from repro.sim.random import RandomStreams

#: Design points a campaign sweep can target, by name.
DESIGNS: Dict[str, Callable[[], NicConfig]] = {
    "oc3": aurora_oc3,
    "oc12": aurora_oc12,
}


def _preset_clean() -> Tuple[FaultPlan, ...]:
    """No faults at all -- the control arm every comparison needs."""
    return ()


def _preset_uniform_loss() -> Tuple[FaultPlan, ...]:
    """Memoryless 1% cell loss for the whole horizon."""
    return (UniformLossPlan(p=0.01),)


def _preset_burst_loss() -> Tuple[FaultPlan, ...]:
    """A Gilbert-Elliott burst episode mid-run."""
    return (BurstLossPlan(start=0.002, stop=0.012),)


def _preset_tail_loss() -> Tuple[FaultPlan, ...]:
    """EOF-cell drops on VC 0 -- the reassembly-timer stress case."""
    return (TailLossPlan(vc_index=0, pdu_indices=(0, 2, 4)),)


def _preset_corruption() -> Tuple[FaultPlan, ...]:
    """Payload bit flips plus uncorrectable HEC marks on the wire."""
    return (CorruptionPlan(payload_p=2e-5, hec_p=1e-5),)


def _preset_engine_stall() -> Tuple[FaultPlan, ...]:
    """Periodic receive-engine freezes: scheduled FIFO pressure."""
    return (EngineStallPlan.periodic(0.002, 0.012, 0.002, 2e-4),)


def _preset_cam_miss() -> Tuple[FaultPlan, ...]:
    """A flaky CAM dropping 2% of lookups for the first 12 ms."""
    return (CamMissPlan(p=0.02, stop=0.012),)


def _preset_interrupt_storm() -> Tuple[FaultPlan, ...]:
    """Spurious device interrupts starving the OS receive path."""
    return (InterruptStormPlan(start=0.002, stop=0.012, rate_hz=20e3),)


def _preset_link_flap() -> Tuple[FaultPlan, ...]:
    """One total outage mid-run: dark for 4 ms, then back."""
    return (LinkFlapPlan(start=0.005, down_for=0.004),)


def _preset_link_flap_recurring() -> Tuple[FaultPlan, ...]:
    """Three short outages, 4 ms apart: a bouncing physical layer."""
    return (LinkFlapPlan(start=0.003, down_for=0.0015, period=0.004, repeats=3),)


def _preset_degraded_link() -> Tuple[FaultPlan, ...]:
    """The kitchen sink: bursty loss + corruption + an interrupt storm."""
    return (
        BurstLossPlan(start=0.002, stop=0.012),
        CorruptionPlan(payload_p=1e-5, hec_p=5e-6),
        InterruptStormPlan(start=0.004, stop=0.010, rate_hz=10e3),
    )


#: Named fault-plan bundles; the name is what enters the point hash.
PLAN_PRESETS: Dict[str, Callable[[], Tuple[FaultPlan, ...]]] = {
    "clean": _preset_clean,
    "uniform-loss": _preset_uniform_loss,
    "burst-loss": _preset_burst_loss,
    "tail-loss": _preset_tail_loss,
    "link-flap": _preset_link_flap,
    "link-flap-recurring": _preset_link_flap_recurring,
    "corruption": _preset_corruption,
    "engine-stall": _preset_engine_stall,
    "cam-miss": _preset_cam_miss,
    "interrupt-storm": _preset_interrupt_storm,
    "degraded-link": _preset_degraded_link,
}


def _campaign_point(
    params: Mapping[str, Any], streams: RandomStreams
) -> Dict[str, Any]:
    """Sweep kernel: one full fault campaign at one seed.

    All randomness flows from ``params['seed']`` through the campaign's
    own replay machinery (see the module docstring for why the
    hash-derived *streams* stays unused).
    """
    del streams  # campaign replay is keyed by the explicit seed axis
    config = DESIGNS[params["design"]]()
    plans = PLAN_PRESETS[params["preset"]]()
    spec = CampaignSpec(
        duration=params["duration"],
        n_vcs=params["n_vcs"],
        sdu_size=params["sdu_size"],
        pdus_per_vc=params["pdus_per_vc"],
    )
    result = FaultCampaign(config, plans, spec, seed=params["seed"]).run()
    return {
        "goodput_mbps": result.goodput_mbps,
        "pdus_received": result.pdus_received,
        "unaccounted_cells": result.ledger.unaccounted,
        "conserved": int(result.is_conserved),
    }


def run_campaign_sweep(
    preset: str = "burst-loss",
    seeds: Iterable[int] = (1, 2, 3, 4),
    design: str = "oc3",
    duration: float = 0.02,
    n_vcs: int = 4,
    sdu_size: int = 8192,
    pdus_per_vc: int = 40,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    log: Optional[RunLog] = None,
) -> SweepRun:
    """Run *preset* once per seed and return the assembled sweep.

    The returned :class:`~repro.runner.SweepRun` has one point per
    seed, in the order given; ``run.series(name=...)`` yields the
    per-seed goodput/conservation curves with ``seed`` on the x axis.
    """
    if preset not in PLAN_PRESETS:
        raise ValueError(
            f"unknown preset {preset!r}; choose from "
            + ", ".join(sorted(PLAN_PRESETS))
        )
    if design not in DESIGNS:
        raise ValueError(
            f"unknown design {design!r}; choose from "
            + ", ".join(sorted(DESIGNS))
        )
    spec = SweepSpec.grid(
        "FAULTS",
        axes={"seed": tuple(int(s) for s in seeds)},
        fixed={
            "preset": preset,
            "design": design,
            "duration": duration,
            "n_vcs": n_vcs,
            "sdu_size": sdu_size,
            "pdus_per_vc": pdus_per_vc,
        },
        x_axis="seed",
    )
    return run_sweep(spec, _campaign_point, workers=workers, store=store, log=log)


def sweep_summary(run: SweepRun) -> Dict[str, float]:
    """Aggregate verdict over a campaign sweep's seeds.

    ``all_conserved`` is the robustness headline: 1.0 iff every seed's
    conservation ledger balanced.
    """
    values = [v for v in run.values if v is not None]
    if not values:
        raise ValueError("campaign sweep produced no values")
    return {
        "mean_goodput_mbps": sum(v["goodput_mbps"] for v in values) / len(values),
        "min_goodput_mbps": min(v["goodput_mbps"] for v in values),
        "total_pdus_received": float(sum(v["pdus_received"] for v in values)),
        "all_conserved": float(all(v["conserved"] for v in values)),
        "seeds": float(len(values)),
    }
