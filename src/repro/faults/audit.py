"""Cell conservation: offered == delivered + accounted drops.

The receive path has many places a cell can die -- the wire, the HEC
check, the EPD/PPD admission filter, the FIFO, the VC lookup, adaptor
buffer exhaustion, the reassembler's failure taxonomy -- and each one
keeps its own counter.  The auditor reconciles them all against the
sender's ledger: every cell the link ever carried must sit in exactly
one bucket.  A nonzero residue means a counter is missing or double
counted, which is precisely the class of accounting bug that makes
loss experiments quietly wrong.

The invariant holds at *any* instant, not just at quiescence: cells
still on the wire, queued in the FIFO, held by an open reassembly
context, in the engine's hands, or riding a posted DMA are themselves
buckets.  After a drained run those in-flight buckets read zero and
the ledger reduces to the steady-state identity::

    offered == delivered + sum(itemised drops)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.atm.link import PhysicalLink


class CellConservationError(AssertionError):
    """The books do not balance; the message itemises every bucket."""


@dataclass(frozen=True)
class ConservationLedger:
    """One instant's complete cell accounting for a receive path.

    All counts are cells.  *offered* is the sender-side truth (cells
    the link was asked to carry); every other field is a disposition
    bucket.  The buckets are mutually exclusive by construction -- each
    counter increments at a different point of a cell's one-way trip.
    """

    offered: int
    #: Dropped by the link's loss model (never delivered).
    link_lost: int
    #: Serialized or propagating, delivery still scheduled.
    wire_in_flight: int
    #: Rejected by the framer's HEC check at admission.
    hec_discarded: int
    #: Refused whole-frame at admission (Early Packet Discard).
    epd_discarded: int
    #: Dropped mid-frame after a loss (Partial Packet Discard).
    ppd_discarded: int
    #: Hard receive-FIFO overflow.
    fifo_overflow: int
    #: Sitting in the receive FIFO right now.
    fifo_queued: int
    #: Popped by the engine, verdict not yet booked (0 or 1).
    engine_in_flight: int
    #: Management cells consumed by the OAM unit.
    oam_cells: int
    #: Cells for VCs never opened (CAM/table miss).
    unknown_vc: int
    #: Dropped because adaptor buffer memory was exhausted.
    no_adaptor_buffer: int
    #: Held by reassembly contexts still open.
    reassembly_open: int
    #: Rode a PDU the reassembler delivered.
    delivered: int
    #: Never attributable to any context (SAR decode failures,
    #: continuation cells with no open PDU).
    orphaned: int
    #: Cells lost with their PDU, itemised by reassembly failure cause
    #: (crc, length, timeout, quota, sequence, ...).
    discarded_by: Mapping[str, int] = field(default_factory=dict)
    # -- disposition of *delivered* cells (partition, not new buckets) --
    #: Landed in a host buffer (DMA complete).
    to_host: int = 0
    #: PDU completed but no host buffer was available.
    no_host_buffer: int = 0
    #: PDU completed, DMA still in flight.
    dma_in_flight: int = 0
    # -- mid-network buckets (zero unless switches/ports sit on the path) --
    #: CLP=1 cells discarded first under output-port pressure.
    clp_discarded: int = 0
    #: Tail-dropped by a full output-port buffer.
    port_full_discarded: int = 0
    #: Sitting in output-port buffers right now.
    port_queued: int = 0
    #: Inside a switch fabric (fabric delay still pending).
    fabric_in_flight: int = 0
    #: Arrived at a switch with no routing entry.
    unroutable: int = 0

    @property
    def accounted(self) -> int:
        """Sum of every disposition bucket."""
        return (
            self.link_lost
            + self.wire_in_flight
            + self.hec_discarded
            + self.epd_discarded
            + self.ppd_discarded
            + self.fifo_overflow
            + self.fifo_queued
            + self.engine_in_flight
            + self.oam_cells
            + self.unknown_vc
            + self.no_adaptor_buffer
            + self.reassembly_open
            + self.delivered
            + self.orphaned
            + self.clp_discarded
            + self.port_full_discarded
            + self.port_queued
            + self.fabric_in_flight
            + self.unroutable
            + sum(self.discarded_by.values())
        )

    @property
    def unaccounted(self) -> int:
        """The residue; zero when every cell has a named fate."""
        return self.offered - self.accounted

    @property
    def is_conserved(self) -> bool:
        return self.unaccounted == 0 and self.dma_in_flight >= 0

    def breakdown(self) -> Dict[str, int]:
        """Flat bucket -> count map (itemised failures inlined)."""
        flat = {
            "link_lost": self.link_lost,
            "wire_in_flight": self.wire_in_flight,
            "hec_discarded": self.hec_discarded,
            "epd_discarded": self.epd_discarded,
            "ppd_discarded": self.ppd_discarded,
            "fifo_overflow": self.fifo_overflow,
            "fifo_queued": self.fifo_queued,
            "engine_in_flight": self.engine_in_flight,
            "oam_cells": self.oam_cells,
            "unknown_vc": self.unknown_vc,
            "no_adaptor_buffer": self.no_adaptor_buffer,
            "reassembly_open": self.reassembly_open,
            "delivered": self.delivered,
            "orphaned": self.orphaned,
            "clp_discarded": self.clp_discarded,
            "port_full_discarded": self.port_full_discarded,
            "port_queued": self.port_queued,
            "fabric_in_flight": self.fabric_in_flight,
            "unroutable": self.unroutable,
        }
        for why, cells in sorted(self.discarded_by.items()):
            flat[f"reassembly_{why}"] = cells
        return flat

    def format(self) -> str:
        """Human-readable ledger for failure messages and reports."""
        lines = [f"offered {self.offered}"]
        for bucket, count in self.breakdown().items():
            if count:
                lines.append(f"  {bucket:<24} {count}")
        lines.append(f"  {'accounted':<24} {self.accounted}")
        lines.append(f"  {'unaccounted':<24} {self.unaccounted}")
        return "\n".join(lines)


class CellConservationAuditor:
    """Reconciles a link/receiver pair's counters into a ledger.

    Wire it to the forward link and the receiving interface of any
    testbed; :meth:`snapshot` is pure observation (no state is
    modified), so it can be called mid-run as often as wanted.

    Multi-hop paths are audited by naming the intermediate stages:
    *switches* and their contended output *ports* contribute the
    fabric/port buckets, and *extra_links* are the downstream hops
    (the port-to-receiver wires), whose losses and in-flight cells
    aggregate with the entry link's.  The entry link stays the
    offered-side truth; a port's pop feeds its downstream link
    synchronously, so no cells hide between a port and its wire.

    A *bidirectional* fabric (both hosts inject through the same
    switches, so the switch-wide counters see both directions) is
    audited by closing the domain instead of picking one direction:
    *extra_injections* lists the other entry links (their cells add to
    the offered side) and *extra_receivers* the other terminating
    interfaces (their engine buckets merge with the primary
    receiver's).  Every port the named switches feed must then appear
    in *ports* or *extra_links*' upstream, or cells will legitimately
    escape the ledger.
    """

    def __init__(
        self,
        link: PhysicalLink,
        receiver,
        switches=(),
        ports=(),
        extra_links=(),
        extra_injections=(),
        extra_receivers=(),
    ) -> None:
        self.link = link
        self.receiver = receiver
        self.switches = tuple(switches)
        self.ports = tuple(ports)
        self.extra_links = tuple(extra_links)
        self.extra_injections = tuple(extra_injections)
        self.extra_receivers = tuple(extra_receivers)

    def snapshot(self) -> ConservationLedger:
        """Read every counter and assemble the instant's ledger."""
        link = self.link

        offered = link.cells_sent.count
        lost = link.cells_lost.count
        wire = offered - lost - link.cells_delivered.count
        for inj in self.extra_injections:
            inj_sent = inj.cells_sent.count
            inj_lost = inj.cells_lost.count
            offered += inj_sent
            lost += inj_lost
            wire += inj_sent - inj_lost - inj.cells_delivered.count
        for hop in self.extra_links:
            hop_lost = hop.cells_lost.count
            lost += hop_lost
            wire += hop.cells_sent.count - hop_lost - hop.cells_delivered.count

        unroutable = sum(
            sw.cells_unroutable.count for sw in self.switches
        )
        fabric = sum(sw.cells_switched.count for sw in self.switches) - sum(
            port.enqueued.count + port.dropped.count for port in self.ports
        )
        clp_discarded = sum(port.dropped_clp.count for port in self.ports)
        port_full = sum(port.dropped_full.count for port in self.ports)
        port_queued = sum(port.backlog for port in self.ports)

        engines = [self.receiver.rx_engine] + [
            r.rx_engine for r in self.extra_receivers
        ]
        engine_in_flight = 0
        delivered = 0
        to_host = 0
        no_host = 0
        hec = epd = ppd = 0
        fifo_overflow = fifo_queued = 0
        oam = unknown_vc = no_buffer = 0
        reassembly_open = 0
        orphaned = 0
        discarded_by: dict = {}
        for rx in engines:
            reasm = rx.reassembler.stats
            consumed_splits = (
                rx.oam_cells.count
                + rx.cells_unknown_vc.count
                + rx.cells_no_buffer.count
                + reasm.cells_consumed
            )
            engine_in_flight += rx.cells_received.count - consumed_splits
            delivered += reasm.cells_delivered
            to_host += rx.cells_delivered_to_host.count
            no_host += rx.cells_no_host_buffer.count
            hec += rx.cells_hec_discarded.count
            epd += rx.cells_epd_discarded.count
            ppd += rx.cells_ppd_discarded.count
            fifo_overflow += rx.fifo.overflows.count
            fifo_queued += len(rx.fifo)
            oam += rx.oam_cells.count
            unknown_vc += rx.cells_unknown_vc.count
            no_buffer += rx.cells_no_buffer.count
            reassembly_open += rx.reassembler.open_cells()
            orphaned += reasm.cells_orphaned
            for why, cells in reasm.cells_discarded_by.items():
                discarded_by[why.value] = discarded_by.get(why.value, 0) + cells

        return ConservationLedger(
            offered=offered,
            link_lost=lost,
            wire_in_flight=wire,
            hec_discarded=hec,
            epd_discarded=epd,
            ppd_discarded=ppd,
            fifo_overflow=fifo_overflow,
            fifo_queued=fifo_queued,
            engine_in_flight=engine_in_flight,
            oam_cells=oam,
            unknown_vc=unknown_vc,
            no_adaptor_buffer=no_buffer,
            reassembly_open=reassembly_open,
            delivered=delivered,
            orphaned=orphaned,
            discarded_by=discarded_by,
            to_host=to_host,
            no_host_buffer=no_host,
            dma_in_flight=delivered - to_host - no_host,
            clp_discarded=clp_discarded,
            port_full_discarded=port_full,
            port_queued=port_queued,
            fabric_in_flight=fabric,
            unroutable=unroutable,
        )

    def assert_conserved(self) -> ConservationLedger:
        """Snapshot and raise :class:`CellConservationError` on a residue."""
        ledger = self.snapshot()
        if not ledger.is_conserved:
            raise CellConservationError(
                f"cell conservation violated "
                f"({ledger.unaccounted} unaccounted):\n{ledger.format()}"
            )
        return ledger
