"""Fault-injection campaigns and conservation auditing.

Robustness work needs three things the happy-path experiments do not
provide: a way to *cause* trouble deterministically, a receive path
that degrades gracefully instead of collapsing, and an accountant that
proves no cell was lost without a named cause.  This package supplies
the first and the third (the second lives in the NIC's
:class:`~repro.nic.rx.FrameDiscardPolicy` machinery):

- :mod:`repro.faults.plan` -- declarative, seeded fault plans (bursty
  link loss, engine stall windows, reassembly-tail loss, CAM miss
  injection, interrupt storms, payload/HEC corruption);
- :mod:`repro.faults.campaign` -- :class:`FaultCampaign` composes plans
  onto a complete sender/receiver testbed and runs it to a drained,
  auditable end state;
- :mod:`repro.faults.audit` -- :class:`CellConservationAuditor` checks
  the books: cells offered equals cells delivered plus cells dropped,
  itemised by cause, at any instant of the run;
- :mod:`repro.faults.sweep` -- campaign *sweeps*: the same plan preset
  across an axis of seeds via :mod:`repro.runner`, inheriting its
  process-pool sharding, result cache, and crash isolation.

Usage -- run a seeded lossy campaign and prove the books balance::

    from repro.faults import BurstLossPlan, CampaignSpec, FaultCampaign
    from repro.nic.config import aurora_oc3

    campaign = FaultCampaign(
        aurora_oc3(),
        plans=[BurstLossPlan(p_good_to_bad=0.01, p_bad_to_good=0.25)],
        spec=CampaignSpec(duration=0.02, sdu_size=8192),
        seed=11,
    )
    result = campaign.run()
    print(result.ledger.format())   # itemised per-cause drop table
    assert result.ledger.is_conserved

Or audit any hand-built testbed directly::

    from repro.faults import CellConservationAuditor

    auditor = CellConservationAuditor(link, receiver_nic)
    sim.run(until=0.02)
    auditor.assert_conserved()      # raises CellConservationError if not

The drop-cause names in the ledger are the same strings the tracing
layer emits as ``cell.drop`` / ``pdu.drop`` reasons (see
:data:`repro.obs.DROP_REASONS`), so a trace and an audit of the same
run cross-check each other.
"""

from repro.faults.audit import (
    CellConservationAuditor,
    CellConservationError,
    ConservationLedger,
)
from repro.faults.campaign import CampaignResult, CampaignSpec, FaultCampaign
from repro.faults.plan import (
    BurstLossPlan,
    CamMissPlan,
    CorruptionPlan,
    EngineStallPlan,
    FaultPlan,
    InterruptStormPlan,
    LinkFlapPlan,
    TailLossPlan,
    UniformLossPlan,
)
from repro.faults.sweep import (
    PLAN_PRESETS,
    run_campaign_sweep,
    sweep_summary,
)

__all__ = [
    "BurstLossPlan",
    "CamMissPlan",
    "CampaignResult",
    "CampaignSpec",
    "CellConservationAuditor",
    "CellConservationError",
    "ConservationLedger",
    "CorruptionPlan",
    "EngineStallPlan",
    "FaultCampaign",
    "FaultPlan",
    "InterruptStormPlan",
    "LinkFlapPlan",
    "PLAN_PRESETS",
    "TailLossPlan",
    "UniformLossPlan",
    "run_campaign_sweep",
    "sweep_summary",
]
