"""Fault-injection campaigns and conservation auditing.

Robustness work needs three things the happy-path experiments do not
provide: a way to *cause* trouble deterministically, a receive path
that degrades gracefully instead of collapsing, and an accountant that
proves no cell was lost without a named cause.  This package supplies
the first and the third (the second lives in the NIC's
:class:`~repro.nic.rx.FrameDiscardPolicy` machinery):

- :mod:`repro.faults.plan` -- declarative, seeded fault plans (bursty
  link loss, engine stall windows, reassembly-tail loss, CAM miss
  injection, interrupt storms, payload/HEC corruption);
- :mod:`repro.faults.campaign` -- :class:`FaultCampaign` composes plans
  onto a complete sender/receiver testbed and runs it to a drained,
  auditable end state;
- :mod:`repro.faults.audit` -- :class:`CellConservationAuditor` checks
  the books: cells offered equals cells delivered plus cells dropped,
  itemised by cause, at any instant of the run.
"""

from repro.faults.audit import (
    CellConservationAuditor,
    CellConservationError,
    ConservationLedger,
)
from repro.faults.campaign import CampaignResult, CampaignSpec, FaultCampaign
from repro.faults.plan import (
    BurstLossPlan,
    CamMissPlan,
    CorruptionPlan,
    EngineStallPlan,
    FaultPlan,
    InterruptStormPlan,
    TailLossPlan,
    UniformLossPlan,
)

__all__ = [
    "BurstLossPlan",
    "CamMissPlan",
    "CampaignResult",
    "CampaignSpec",
    "CellConservationAuditor",
    "CellConservationError",
    "ConservationLedger",
    "CorruptionPlan",
    "EngineStallPlan",
    "FaultCampaign",
    "FaultPlan",
    "InterruptStormPlan",
    "TailLossPlan",
    "UniformLossPlan",
]
