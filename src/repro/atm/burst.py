"""The fast path's unit of work: a run of back-to-back cells.

A :class:`CellBurst` carries a list of cells plus one *arrival time* per
cell.  Producers on the fast path (TX engine, interleaved sources, the
F3 feeder) pre-announce a burst: they hand the whole run downstream as
ONE simulator event at the burst's formation time, with each cell's
embedded arrival stamped at the simulation time the scalar reference
path would have delivered that cell individually.

Burst-aware consumers (:meth:`repro.nic.fifo.CellFifo.put_burst`,
:meth:`repro.atm.link.PhysicalLink.send_burst`,
:meth:`repro.nic.rx.RxEngine.receive_burst`) replay the cells
arithmetically against those arrivals, charging the exact same per-cell
cycle costs and statistics the scalar path charges -- see
``docs/PERFORMANCE.md`` for the equivalence argument and its limits.

Arrival times must be non-decreasing and must never lie in the past at
the moment the burst is handed over, so that consumers can schedule
derived events (PDU completions, deliveries) with non-negative delays.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.atm.cell import AtmCell


class CellBurst:
    """A batch of cells with per-cell virtual arrival times."""

    __slots__ = ("cells", "arrivals")

    def __init__(
        self, cells: Sequence[AtmCell], arrivals: Sequence[float]
    ) -> None:
        if len(cells) == 0:
            raise ValueError("a CellBurst must carry at least one cell")
        if len(cells) != len(arrivals):
            raise ValueError(
                f"{len(cells)} cells but {len(arrivals)} arrival times"
            )
        previous = arrivals[0]
        for arrival in arrivals:
            if arrival < previous:
                raise ValueError("burst arrival times must be non-decreasing")
            previous = arrival
        self.cells: List[AtmCell] = list(cells)
        self.arrivals: List[float] = list(arrivals)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[AtmCell]:
        return iter(self.cells)

    @property
    def first_arrival(self) -> float:
        return self.arrivals[0]

    @property
    def last_arrival(self) -> float:
        return self.arrivals[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CellBurst n={len(self.cells)} "
            f"t=[{self.arrivals[0]:.9f}..{self.arrivals[-1]:.9f}]>"
        )
