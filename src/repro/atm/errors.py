"""Cell loss and corruption models.

Loss in ATM networks is bursty: congestion drops cluster because a full
switch buffer stays full for many slot times.  Besides the uniform
(Bernoulli) model, the two-state Gilbert-Elliott model captures that
correlation and is the standard way to synthesise it.

Models are deliberately stateless with respect to the simulator: they are
fed the cell and the current time and answer drop/keep, so the same model
type plugs into links, switch ports and test fixtures.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Protocol, Sequence

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.sim.random import RandomStreams


def _default_rng(component: str) -> random.Random:
    """A deterministic, component-named stream for callers that pass none.

    Deriving the default through :class:`RandomStreams` keeps the
    common-random-numbers discipline even for ad-hoc models: each model
    class owns a named stream, so adding one model never perturbs the
    draws of another.
    """
    return RandomStreams(0).stream(f"atm.errors.{component}")


class LossModel(Protocol):
    """Anything that can decide a cell's fate at a given instant."""

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        """Return True to drop *cell*."""
        ...  # pragma: no cover


class NoLoss:
    """The ideal channel; drops nothing."""

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        return False


class UniformLoss:
    """Independent Bernoulli loss with probability *p* per cell."""

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p
        self.rng = rng if rng is not None else _default_rng("UniformLoss")
        self.offered = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        self.offered += 1
        if self.p > 0.0 and self.rng.random() < self.p:
            self.dropped += 1
            return True
        return False

    @property
    def observed_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


class GilbertElliottLoss:
    """Two-state Markov loss: a GOOD state and a lossy BAD state.

    Transitions are evaluated per cell.  With ``p_good_to_bad`` small and
    ``p_bad_to_good`` moderate, losses arrive in bursts whose mean length
    is ``1 / p_bad_to_good`` cells -- the signature of congestion drops.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_in_bad: float = 1.0,
        loss_in_good: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_in_bad", loss_in_bad),
            ("loss_in_good", loss_in_good),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_in_bad = loss_in_bad
        self.loss_in_good = loss_in_good
        self.rng = rng if rng is not None else _default_rng("GilbertElliottLoss")
        self.in_bad = False
        self.offered = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        self.offered += 1
        if self.in_bad:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad = True
        loss_p = self.loss_in_bad if self.in_bad else self.loss_in_good
        if loss_p > 0.0 and self.rng.random() < loss_p:
            self.dropped += 1
            return True
        return False

    @property
    def steady_state_loss(self) -> float:
        """Analytic long-run loss rate of the chain (for test oracles)."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_in_bad if self.in_bad else self.loss_in_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.loss_in_bad + (1 - pi_bad) * self.loss_in_good


class ScheduledLoss:
    """A loss model gated to a time window: ``[start, stop)``.

    Outside the window every cell passes and the inner model's state is
    frozen (a Gilbert-Elliott chain does not advance), so a window
    models a discrete fault episode -- a congested switch, a flapping
    line card -- rather than a permanently degraded link.
    """

    def __init__(self, inner: LossModel, start: float, stop: float) -> None:
        if stop < start:
            raise ValueError(f"window [{start}, {stop}) is inverted")
        self.inner = inner
        self.start = start
        self.stop = stop
        self.offered = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        self.offered += 1
        if not self.start <= now < self.stop:
            return False
        if self.inner.should_drop(cell, now):
            self.dropped += 1
            return True
        return False


class CompositeLoss:
    """Chain-of-responsibility over several loss models.

    A cell is dropped by the *first* model that claims it; later models
    are not consulted for that cell, so each constituent's counters
    reflect the cells it actually saw.  Fault campaigns use this to pile
    scheduled fault episodes on top of a link's baseline loss.
    """

    def __init__(self, models: Optional[Iterable[LossModel]] = None) -> None:
        self.models: list[LossModel] = list(models) if models is not None else []

    def add(self, model: LossModel) -> "CompositeLoss":
        self.models.append(model)
        return self

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        for model in self.models:
            if model.should_drop(cell, now):
                return True
        return False


class TailLoss:
    """Drops the EOF cell of selected PDUs on one VC.

    Losing a frame's tail is the nastiest single-cell loss an AAL5-class
    receiver can suffer: the reassembly context is left open, and either
    the next frame merges into it (both fail the CRC/length check) or --
    if the stream goes quiet -- the context is stranded until the
    reassembly timer reclaims it.  *pdu_indices* counts EOF cells seen
    on the VC from zero.
    """

    def __init__(self, vc: VcAddress, pdu_indices: Sequence[int]) -> None:
        self.vc = VcAddress(*vc)
        self.targets = frozenset(pdu_indices)
        self._eof_seen = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        if (cell.vpi, cell.vci) != self.vc or not cell.end_of_frame:
            return False
        index = self._eof_seen
        self._eof_seen += 1
        if index in self.targets:
            self.dropped += 1
            return True
        return False


class BitErrorModel:
    """Payload corruption: flips one random bit with probability *p*.

    Returns new cell objects (cells are immutable); used to exercise the
    adaptation layers' CRC machinery end to end.
    """

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"corruption probability {p} outside [0, 1]")
        self.p = p
        self.rng = rng if rng is not None else _default_rng("BitErrorModel")
        self.corrupted = 0

    def maybe_corrupt(self, cell: AtmCell) -> AtmCell:
        """Return *cell* or a copy with one payload bit flipped."""
        if self.p == 0.0 or self.rng.random() >= self.p:
            return cell
        self.corrupted += 1
        payload = bytearray(cell.payload)
        bit = self.rng.randrange(len(payload) * 8)
        payload[bit // 8] ^= 0x80 >> (bit % 8)
        corrupted = AtmCell(
            vpi=cell.vpi,
            vci=cell.vci,
            payload=bytes(payload),
            pti=cell.pti,
            clp=cell.clp,
            gfc=cell.gfc,
        )
        corrupted.meta.update(cell.meta)
        corrupted.meta["corrupted"] = True
        return corrupted
