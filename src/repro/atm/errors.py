"""Cell loss and corruption models.

Loss in ATM networks is bursty: congestion drops cluster because a full
switch buffer stays full for many slot times.  Besides the uniform
(Bernoulli) model, the two-state Gilbert-Elliott model captures that
correlation and is the standard way to synthesise it.

Models are deliberately stateless with respect to the simulator: they are
fed the cell and the current time and answer drop/keep, so the same model
type plugs into links, switch ports and test fixtures.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

from repro.atm.cell import AtmCell


class LossModel(Protocol):
    """Anything that can decide a cell's fate at a given instant."""

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        """Return True to drop *cell*."""
        ...  # pragma: no cover


class NoLoss:
    """The ideal channel; drops nothing."""

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        return False


class UniformLoss:
    """Independent Bernoulli loss with probability *p* per cell."""

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability {p} outside [0, 1]")
        self.p = p
        self.rng = rng if rng is not None else random.Random(0)
        self.offered = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        self.offered += 1
        if self.p > 0.0 and self.rng.random() < self.p:
            self.dropped += 1
            return True
        return False

    @property
    def observed_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0


class GilbertElliottLoss:
    """Two-state Markov loss: a GOOD state and a lossy BAD state.

    Transitions are evaluated per cell.  With ``p_good_to_bad`` small and
    ``p_bad_to_good`` moderate, losses arrive in bursts whose mean length
    is ``1 / p_bad_to_good`` cells -- the signature of congestion drops.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_in_bad: float = 1.0,
        loss_in_good: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_in_bad", loss_in_bad),
            ("loss_in_good", loss_in_good),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_in_bad = loss_in_bad
        self.loss_in_good = loss_in_good
        self.rng = rng if rng is not None else random.Random(0)
        self.in_bad = False
        self.offered = 0
        self.dropped = 0

    def should_drop(self, cell: AtmCell, now: float) -> bool:
        self.offered += 1
        if self.in_bad:
            if self.rng.random() < self.p_bad_to_good:
                self.in_bad = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.in_bad = True
        loss_p = self.loss_in_bad if self.in_bad else self.loss_in_good
        if loss_p > 0.0 and self.rng.random() < loss_p:
            self.dropped += 1
            return True
        return False

    @property
    def steady_state_loss(self) -> float:
        """Analytic long-run loss rate of the chain (for test oracles)."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0:
            return self.loss_in_bad if self.in_bad else self.loss_in_good
        pi_bad = self.p_good_to_bad / denom
        return pi_bad * self.loss_in_bad + (1 - pi_bad) * self.loss_in_good


class BitErrorModel:
    """Payload corruption: flips one random bit with probability *p*.

    Returns new cell objects (cells are immutable); used to exercise the
    adaptation layers' CRC machinery end to end.
    """

    def __init__(self, p: float, rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"corruption probability {p} outside [0, 1]")
        self.p = p
        self.rng = rng if rng is not None else random.Random(0)
        self.corrupted = 0

    def maybe_corrupt(self, cell: AtmCell) -> AtmCell:
        """Return *cell* or a copy with one payload bit flipped."""
        if self.p == 0.0 or self.rng.random() >= self.p:
            return cell
        self.corrupted += 1
        payload = bytearray(cell.payload)
        bit = self.rng.randrange(len(payload) * 8)
        payload[bit // 8] ^= 0x80 >> (bit % 8)
        corrupted = AtmCell(
            vpi=cell.vpi,
            vci=cell.vci,
            payload=bytes(payload),
            pti=cell.pti,
            clp=cell.clp,
            gfc=cell.gfc,
        )
        corrupted.meta.update(cell.meta)
        corrupted.meta["corrupted"] = True
        return corrupted
