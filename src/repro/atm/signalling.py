"""Signalling-lite: out-of-band call control on the well-known VCI 5.

ATM signalling (the lineage that became Q.93B/Q.2931) is *out of band*:
connection-control messages travel on their own reserved channel, and
user VCs exist only after a SETUP/CONNECT handshake installed them at
both ends.  This module implements a deliberately small but complete
version of that discipline:

- four messages -- SETUP, CONNECT, RELEASE, RELEASE_COMPLETE -- with a
  fixed binary encoding carried as AAL5 SDUs on VPI 0 / VCI 5;
- a per-endpoint :class:`SignallingAgent` with call-reference
  allocation and a caller/callee state machine
  (IDLE -> CALL_INITIATED -> ACTIVE -> RELEASING -> RELEASED);
- callee-side admission policy via a callback, and automatic VC
  allocation out of the callee's table (the address travels back in
  the CONNECT);
- optional retransmission timers (:class:`SignallingTimers`) in the
  spirit of Q.2931's T303/T308: a lost SETUP or RELEASE is resent on
  a capped exponential backoff, and after ``max_retries``
  retransmissions the call fails *terminally* -- the caller's
  ``connected`` event raises :class:`CallTimeout` (a
  :class:`CallRefused`) instead of hanging forever.

The agents run over the same data path as user traffic, so a SETUP
really is segmented into cells, crosses the link, and pays the engine
budgets -- call-setup latency is therefore a measurable quantity.
Backoff jitter is drawn from a named :class:`~repro.sim.random.RandomStreams`
stream, so retransmission schedules are a pure function of the seed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.atm.addressing import VCI_SIGNALLING, VcAddress
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter
from repro.sim.random import RandomStreams

SIGNALLING_VC = VcAddress(0, VCI_SIGNALLING)

_MESSAGE_SIZE = 18
_MAGIC = 0x5A


class MessageType(enum.IntEnum):
    SETUP = 1
    CONNECT = 2
    RELEASE = 3
    RELEASE_COMPLETE = 4


class CallState(enum.Enum):
    IDLE = "idle"
    CALL_INITIATED = "call-initiated"  #: caller sent SETUP
    ACTIVE = "active"  #: CONNECT exchanged, user VC open
    RELEASING = "releasing"  #: RELEASE sent, awaiting completion
    RELEASED = "released"  #: release handshake (or forced clear) done
    REFUSED = "refused"  #: far end rejected the SETUP
    FAILED = "failed"  #: retry budget exhausted, call abandoned

    @property
    def terminal(self) -> bool:
        """True for states a finished call may legitimately rest in."""
        return self in (CallState.RELEASED, CallState.REFUSED, CallState.FAILED)


@dataclass(frozen=True)
class SignallingTimers:
    """Retransmission policy for SETUP (T303-style) and RELEASE (T308-style).

    The n-th retransmission waits ``min(base * backoff**n, cap)``
    seconds, scaled by a jitter factor in ``[1-jitter, 1+jitter]``
    drawn from the agent's random stream.  After ``max_retries``
    retransmissions plus one final wait, the call is abandoned.
    """

    t303: float = 1e-3  #: initial SETUP retransmission interval (s)
    t308: float = 1e-3  #: initial RELEASE retransmission interval (s)
    backoff: float = 2.0  #: exponential growth factor per attempt
    cap: float = 8e-3  #: ceiling on any single interval (s)
    max_retries: int = 4  #: retransmissions before giving up
    jitter: float = 0.1  #: fractional schedule jitter, 0 disables

    def __post_init__(self) -> None:
        if self.t303 <= 0 or self.t308 <= 0:
            raise ValueError("timer bases must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")

    def worst_case_total(self) -> float:
        """Upper bound on the life of a timer chain (for sim drain sizing)."""
        total = sum(
            min(self.t303 * self.backoff**n, self.cap)
            for n in range(self.max_retries + 1)
        )
        return total * (1.0 + self.jitter)


def backoff_schedule(timers: SignallingTimers, base: float, rng=None) -> Tuple[float, ...]:
    """The waits before retransmissions 1..max_retries plus the give-up wait."""
    delays = []
    for attempt in range(timers.max_retries + 1):
        delay = min(base * timers.backoff**attempt, timers.cap)
        if timers.jitter and rng is not None:
            delay *= 1.0 + timers.jitter * (2.0 * rng.random() - 1.0)
        delays.append(delay)
    return tuple(delays)


@dataclass(frozen=True)
class SignallingMessage:
    """One call-control message.

    Wire format (18 bytes)::

        | magic (1) | type (1) | call_ref (4) | vpi (2) | vci (2) |
        | peak_rate_bps (8)                                        |
    """

    message_type: MessageType
    call_ref: int
    vpi: int = 0
    vci: int = 0
    peak_rate_bps: int = 0

    def encode(self) -> bytes:
        return (
            bytes((_MAGIC, int(self.message_type)))
            + self.call_ref.to_bytes(4, "big")
            + self.vpi.to_bytes(2, "big")
            + self.vci.to_bytes(2, "big")
            + self.peak_rate_bps.to_bytes(8, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "SignallingMessage":
        if len(data) != _MESSAGE_SIZE:
            raise ValueError(f"signalling message is {_MESSAGE_SIZE} bytes")
        if data[0] != _MAGIC:
            raise ValueError("bad signalling magic byte")
        return cls(
            message_type=MessageType(data[1]),
            call_ref=int.from_bytes(data[2:6], "big"),
            vpi=int.from_bytes(data[6:8], "big"),
            vci=int.from_bytes(data[8:10], "big"),
            peak_rate_bps=int.from_bytes(data[10:18], "big"),
        )


@dataclass
class Call:
    """One call's local state."""

    call_ref: int
    state: CallState
    is_caller: bool
    address: Optional[VcAddress] = None
    peak_rate_bps: Optional[float] = None
    #: Fires with the user VcAddress on CONNECT (caller side).
    connected: Optional[Event] = None
    #: Fires when the release handshake completes.
    released: Optional[Event] = None
    #: Retransmissions spent on this call so far.
    retries: int = 0


class SignallingAgent:
    """Call control for one interface endpoint.

    Construction opens the signalling channel on the interface and
    hooks its receive path.  Typical use::

        agent_a = SignallingAgent(sim, nic_a)
        agent_b = SignallingAgent(sim, nic_b)

        def caller():
            call = agent_a.place_call(peak_rate_bps=20e6)
            address = yield call.connected     # VC now open on both ends
            yield nic_a.send(address, b"data on a signalled VC")

    The callee accepts by default; install ``on_setup`` to apply
    admission control (return False to refuse -- the caller's
    ``connected`` event then fails with :class:`CallRefused`).

    Pass ``timers=SignallingTimers()`` to arm retransmission: lost
    SETUP/RELEASE messages are resent on a capped exponential backoff
    and exhausted calls end in a *terminal* state instead of hanging.
    Without timers the agent behaves exactly as the lossless-path
    original (no background processes, no extra traffic).
    """

    def __init__(
        self,
        sim: Simulator,
        interface,
        on_setup: Optional[Callable[[SignallingMessage], bool]] = None,
        name: str = "",
        timers: Optional[SignallingTimers] = None,
        streams: Optional[RandomStreams] = None,
        shape_data_vcs: bool = True,
    ) -> None:
        self.sim = sim
        self.interface = interface
        self.on_setup = on_setup
        self.name = name or f"{interface.name}.sig"
        self.timers = timers
        #: When True (the default) a call's VC is opened shaped to its
        #: contract peak, so the transmit engine paces it (CBR-style).
        #: When False the contract still rides the SETUP -- admission
        #: control books it -- but the VC is opened unshaped: the
        #: best-effort data service a host offering thousands of
        #: low-rate sessions needs, since the single-engine pacer would
        #: otherwise head-of-line block the interface (docs/SCALE.md).
        self.shape_data_vcs = shape_data_vcs
        self._rng = (streams or RandomStreams(0)).stream(f"{self.name}.backoff")
        self._calls: Dict[int, Call] = {}
        self._call_refs = itertools.count(1)
        #: Every call object this agent ever created (caller or callee
        #: side), terminal or not -- the basis for "no call left in a
        #: non-terminal state" audits.
        self.call_log: List[Call] = []
        self.messages_sent = Counter(f"{self.name}.sent")
        self.messages_received = Counter(f"{self.name}.received")
        self.calls_refused = Counter(f"{self.name}.refused")
        self.setup_retransmits = Counter(f"{self.name}.setup_retransmits")
        self.release_retransmits = Counter(f"{self.name}.release_retransmits")
        self.calls_timed_out = Counter(f"{self.name}.timed_out")
        self.calls_restored = Counter(f"{self.name}.restored")
        self.setup_duplicates = Counter(f"{self.name}.setup_duplicates")
        #: Optional TraceRecorder for retry/timeout taxonomy events.
        self.trace = None
        #: Fired with the Call whenever one becomes ACTIVE (either
        #: side) -- the recovery plane uses it to protect the VC.
        self.on_call_active: Optional[Callable[[Call], None]] = None
        #: Fired with the Call whenever one clears (graceful handshake
        #: or timer-forced) -- admission control uses it to drain the
        #: booked budgets (see repro.tm.cac).
        self.on_call_released: Optional[Callable[[Call], None]] = None

        self._open_signalling_channel()

    # -- wiring ------------------------------------------------------------

    def _open_signalling_channel(self) -> None:
        nic = self.interface
        if SIGNALLING_VC not in nic.vc_table:
            nic.vc_table.open_reserved(SIGNALLING_VC, name="signalling")
            if nic.cam is not None:
                nic.cam.install(
                    SIGNALLING_VC, nic.vc_table.lookup(SIGNALLING_VC)
                )
                # Losing this entry to LRU pressure would sever the
                # control plane, so exempt it from displacement.
                nic.cam.pin(SIGNALLING_VC)
        #: Non-signalling PDUs are forwarded here; assign this (not
        #: ``interface.on_pdu``, which the agent now owns) to receive
        #: user traffic.  Pre-existing handlers are preserved.
        self.on_user_pdu: Optional[Callable] = nic.on_pdu
        nic.on_pdu = self._demux

    def _demux(self, completion) -> None:
        if completion.vc == SIGNALLING_VC:
            self._handle(SignallingMessage.decode(completion.sdu))
        elif self.on_user_pdu is not None:
            self.on_user_pdu(completion)

    def _send(self, message: SignallingMessage) -> None:
        self.messages_sent.increment()
        self.interface.send(SIGNALLING_VC, message.encode())

    def _emit(self, name: str, **args) -> None:
        if self.trace is not None:
            self.trace.emit(name, actor=self.name, **args)

    # -- caller side ---------------------------------------------------------

    def place_call(self, peak_rate_bps: Optional[float] = None) -> Call:
        """Initiate a call; yield ``call.connected`` for the VC address."""
        call_ref = next(self._call_refs)
        call = Call(
            call_ref=call_ref,
            state=CallState.CALL_INITIATED,
            is_caller=True,
            peak_rate_bps=peak_rate_bps,
            connected=self.sim.event(),
            released=self.sim.event(),
        )
        self._calls[call_ref] = call
        self.call_log.append(call)
        self._send(
            SignallingMessage(
                MessageType.SETUP,
                call_ref,
                peak_rate_bps=int(peak_rate_bps or 0),
            )
        )
        if self.timers is not None:
            self.sim.process(self._setup_timer(call))
        return call

    def release_call(self, call: Call) -> Event:
        """Tear the call down; yield the returned event for completion."""
        if call.state is not CallState.ACTIVE:
            raise ValueError(f"call {call.call_ref} is not active")
        call.state = CallState.RELEASING
        self._send(SignallingMessage(MessageType.RELEASE, call.call_ref))
        if self.timers is not None:
            self.sim.process(self._release_timer(call))
        return call.released

    def reestablish(self, call: Call) -> Call:
        """Place a replacement call carrying the same traffic contract.

        Used by the recovery plane to restore alarmed or timed-out
        calls once their link supervisor returns to UP.
        """
        replacement = self.place_call(peak_rate_bps=call.peak_rate_bps)
        self.calls_restored.increment()
        self._emit(
            "sig.call.restored",
            old_call_ref=call.call_ref,
            new_call_ref=replacement.call_ref,
        )
        return replacement

    def call_for(self, call_ref: int) -> Optional[Call]:
        return self._calls.get(call_ref)

    @property
    def active_calls(self) -> int:
        return sum(
            1 for c in self._calls.values() if c.state is CallState.ACTIVE
        )

    @property
    def unresolved_calls(self) -> List[Call]:
        """Calls stuck mid-handshake: neither ACTIVE nor terminal."""
        pending = (CallState.IDLE, CallState.CALL_INITIATED, CallState.RELEASING)
        return [c for c in self.call_log if c.state in pending]

    # -- retransmission timers ----------------------------------------------

    def _setup_timer(self, call: Call):
        schedule = backoff_schedule(self.timers, self.timers.t303, self._rng)
        for attempt, delay in enumerate(schedule, start=1):
            yield self.sim.timeout(delay)
            if call.state is not CallState.CALL_INITIATED:
                return  # resolved (connected, refused, or released)
            if attempt > self.timers.max_retries:
                break
            call.retries = attempt
            self.setup_retransmits.increment()
            self._emit(
                "sig.retransmit",
                message="SETUP",
                call_ref=call.call_ref,
                attempt=attempt,
            )
            self._send(
                SignallingMessage(
                    MessageType.SETUP,
                    call.call_ref,
                    peak_rate_bps=int(call.peak_rate_bps or 0),
                )
            )
        if call.state is not CallState.CALL_INITIATED:
            return
        self._calls.pop(call.call_ref, None)
        call.state = CallState.FAILED
        self.calls_timed_out.increment()
        self._emit("sig.call.timeout", message="SETUP", call_ref=call.call_ref)
        if call.connected is not None and not call.connected.triggered:
            call.connected.fail(CallTimeout(call.call_ref))

    def _release_timer(self, call: Call):
        schedule = backoff_schedule(self.timers, self.timers.t308, self._rng)
        for attempt, delay in enumerate(schedule, start=1):
            yield self.sim.timeout(delay)
            if call.state is not CallState.RELEASING:
                return
            if attempt > self.timers.max_retries:
                break
            call.retries = attempt
            self.release_retransmits.increment()
            self._emit(
                "sig.retransmit",
                message="RELEASE",
                call_ref=call.call_ref,
                attempt=attempt,
            )
            self._send(SignallingMessage(MessageType.RELEASE, call.call_ref))
        if call.state is not CallState.RELEASING:
            return
        # Forced local clear: the peer never confirmed, release anyway.
        self._calls.pop(call.call_ref, None)
        call.state = CallState.RELEASED
        self.calls_timed_out.increment()
        self._emit("sig.call.timeout", message="RELEASE", call_ref=call.call_ref)
        if call.address is not None and call.address in self.interface.vc_table:
            self.interface.close_vc(call.address)
        if self.on_call_released is not None:
            self.on_call_released(call)
        if call.released is not None and not call.released.triggered:
            call.released.trigger(None)

    # -- message handling ---------------------------------------------------------

    def _handle(self, message: SignallingMessage) -> None:
        self.messages_received.increment()
        handler = {
            MessageType.SETUP: self._on_setup,
            MessageType.CONNECT: self._on_connect,
            MessageType.RELEASE: self._on_release,
            MessageType.RELEASE_COMPLETE: self._on_release_complete,
        }[message.message_type]
        handler(message)

    def _on_setup(self, message: SignallingMessage) -> None:
        existing = self._calls.get(message.call_ref)
        if existing is not None and not existing.is_caller:
            # Retransmitted SETUP for a call we already accepted: the
            # CONNECT was lost, so repeat it for the same VC.
            if existing.state is CallState.ACTIVE:
                self.setup_duplicates.increment()
                self._send(
                    SignallingMessage(
                        MessageType.CONNECT,
                        message.call_ref,
                        vpi=existing.address.vpi,
                        vci=existing.address.vci,
                    )
                )
            return
        if self.on_setup is not None and not self.on_setup(message):
            self.calls_refused.increment()
            self._send(
                SignallingMessage(MessageType.RELEASE_COMPLETE, message.call_ref)
            )
            return
        peak = float(message.peak_rate_bps) or None
        vc = self.interface.open_vc(
            peak_rate_bps=peak if self.shape_data_vcs else None
        )
        call = Call(
            call_ref=message.call_ref,
            state=CallState.ACTIVE,
            is_caller=False,
            address=vc.address,
            peak_rate_bps=peak,
            released=self.sim.event(),
        )
        self._calls[message.call_ref] = call
        self.call_log.append(call)
        if self.on_call_active is not None:
            self.on_call_active(call)
        self._send(
            SignallingMessage(
                MessageType.CONNECT,
                message.call_ref,
                vpi=vc.address.vpi,
                vci=vc.address.vci,
            )
        )

    def _on_connect(self, message: SignallingMessage) -> None:
        call = self._calls.get(message.call_ref)
        if call is None or call.state is not CallState.CALL_INITIATED:
            return
        address = VcAddress(message.vpi, message.vci)
        self.interface.open_vc(
            address=address,
            peak_rate_bps=(
                call.peak_rate_bps if self.shape_data_vcs else None
            ),
        )
        call.address = address
        call.state = CallState.ACTIVE
        if self.on_call_active is not None:
            self.on_call_active(call)
        call.connected.trigger(address)

    def _on_release(self, message: SignallingMessage) -> None:
        call = self._calls.pop(message.call_ref, None)
        if call is not None:
            call.state = CallState.RELEASED
            if call.address is not None and call.address in self.interface.vc_table:
                self.interface.close_vc(call.address)
            if self.on_call_released is not None:
                self.on_call_released(call)
            if call.released is not None and not call.released.triggered:
                call.released.trigger(None)
        self._send(
            SignallingMessage(MessageType.RELEASE_COMPLETE, message.call_ref)
        )

    def _on_release_complete(self, message: SignallingMessage) -> None:
        call = self._calls.pop(message.call_ref, None)
        if call is None:
            return
        if call.state is CallState.CALL_INITIATED:
            # Refusal: the far end answered SETUP with RELEASE_COMPLETE.
            call.state = CallState.REFUSED
            call.connected.fail(CallRefused(call.call_ref))
            return
        call.state = CallState.RELEASED
        if call.address is not None and call.address in self.interface.vc_table:
            self.interface.close_vc(call.address)
        if self.on_call_released is not None:
            self.on_call_released(call)
        if call.released is not None and not call.released.triggered:
            call.released.trigger(None)


class CallRefused(Exception):
    """The callee's admission policy rejected the SETUP."""


class CallTimeout(CallRefused):
    """The retry budget ran out before the far end answered."""
