"""Signalling-lite: out-of-band call control on the well-known VCI 5.

ATM signalling (the lineage that became Q.93B/Q.2931) is *out of band*:
connection-control messages travel on their own reserved channel, and
user VCs exist only after a SETUP/CONNECT handshake installed them at
both ends.  This module implements a deliberately small but complete
version of that discipline:

- four messages -- SETUP, CONNECT, RELEASE, RELEASE_COMPLETE -- with a
  fixed binary encoding carried as AAL5 SDUs on VPI 0 / VCI 5;
- a per-endpoint :class:`SignallingAgent` with call-reference
  allocation and a caller/callee state machine
  (IDLE -> CALL_INITIATED -> ACTIVE -> RELEASING -> released);
- callee-side admission policy via a callback, and automatic VC
  allocation out of the callee's table (the address travels back in
  the CONNECT).

The agents run over the same data path as user traffic, so a SETUP
really is segmented into cells, crosses the link, and pays the engine
budgets -- call-setup latency is therefore a measurable quantity.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.atm.addressing import VCI_SIGNALLING, VcAddress
from repro.sim.core import Event, Simulator
from repro.sim.monitor import Counter

SIGNALLING_VC = VcAddress(0, VCI_SIGNALLING)

_MESSAGE_SIZE = 18
_MAGIC = 0x5A


class MessageType(enum.IntEnum):
    SETUP = 1
    CONNECT = 2
    RELEASE = 3
    RELEASE_COMPLETE = 4


class CallState(enum.Enum):
    IDLE = "idle"
    CALL_INITIATED = "call-initiated"  #: caller sent SETUP
    ACTIVE = "active"  #: CONNECT exchanged, user VC open
    RELEASING = "releasing"  #: RELEASE sent, awaiting completion


@dataclass(frozen=True)
class SignallingMessage:
    """One call-control message.

    Wire format (18 bytes)::

        | magic (1) | type (1) | call_ref (4) | vpi (2) | vci (2) |
        | peak_rate_bps (8)                                        |
    """

    message_type: MessageType
    call_ref: int
    vpi: int = 0
    vci: int = 0
    peak_rate_bps: int = 0

    def encode(self) -> bytes:
        return (
            bytes((_MAGIC, int(self.message_type)))
            + self.call_ref.to_bytes(4, "big")
            + self.vpi.to_bytes(2, "big")
            + self.vci.to_bytes(2, "big")
            + self.peak_rate_bps.to_bytes(8, "big")
        )

    @classmethod
    def decode(cls, data: bytes) -> "SignallingMessage":
        if len(data) != _MESSAGE_SIZE:
            raise ValueError(f"signalling message is {_MESSAGE_SIZE} bytes")
        if data[0] != _MAGIC:
            raise ValueError("bad signalling magic byte")
        return cls(
            message_type=MessageType(data[1]),
            call_ref=int.from_bytes(data[2:6], "big"),
            vpi=int.from_bytes(data[6:8], "big"),
            vci=int.from_bytes(data[8:10], "big"),
            peak_rate_bps=int.from_bytes(data[10:18], "big"),
        )


@dataclass
class Call:
    """One call's local state."""

    call_ref: int
    state: CallState
    is_caller: bool
    address: Optional[VcAddress] = None
    peak_rate_bps: Optional[float] = None
    #: Fires with the user VcAddress on CONNECT (caller side).
    connected: Optional[Event] = None
    #: Fires when the release handshake completes.
    released: Optional[Event] = None


class SignallingAgent:
    """Call control for one interface endpoint.

    Construction opens the signalling channel on the interface and
    hooks its receive path.  Typical use::

        agent_a = SignallingAgent(sim, nic_a)
        agent_b = SignallingAgent(sim, nic_b)

        def caller():
            call = agent_a.place_call(peak_rate_bps=20e6)
            address = yield call.connected     # VC now open on both ends
            yield nic_a.send(address, b"data on a signalled VC")

    The callee accepts by default; install ``on_setup`` to apply
    admission control (return False to refuse -- the caller's
    ``connected`` event then fails with :class:`CallRefused`).
    """

    def __init__(
        self,
        sim: Simulator,
        interface,
        on_setup: Optional[Callable[[SignallingMessage], bool]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.interface = interface
        self.on_setup = on_setup
        self.name = name or f"{interface.name}.sig"
        self._calls: Dict[int, Call] = {}
        self._call_refs = itertools.count(1)
        self.messages_sent = Counter(f"{self.name}.sent")
        self.messages_received = Counter(f"{self.name}.received")
        self.calls_refused = Counter(f"{self.name}.refused")

        self._open_signalling_channel()

    # -- wiring ------------------------------------------------------------

    def _open_signalling_channel(self) -> None:
        nic = self.interface
        if SIGNALLING_VC not in nic.vc_table:
            nic.vc_table.open_reserved(SIGNALLING_VC, name="signalling")
            if nic.cam is not None:
                nic.cam.install(
                    SIGNALLING_VC, nic.vc_table.lookup(SIGNALLING_VC)
                )
        #: Non-signalling PDUs are forwarded here; assign this (not
        #: ``interface.on_pdu``, which the agent now owns) to receive
        #: user traffic.  Pre-existing handlers are preserved.
        self.on_user_pdu: Optional[Callable] = nic.on_pdu
        nic.on_pdu = self._demux

    def _demux(self, completion) -> None:
        if completion.vc == SIGNALLING_VC:
            self._handle(SignallingMessage.decode(completion.sdu))
        elif self.on_user_pdu is not None:
            self.on_user_pdu(completion)

    def _send(self, message: SignallingMessage) -> None:
        self.messages_sent.increment()
        self.interface.send(SIGNALLING_VC, message.encode())

    # -- caller side ---------------------------------------------------------

    def place_call(self, peak_rate_bps: Optional[float] = None) -> Call:
        """Initiate a call; yield ``call.connected`` for the VC address."""
        call_ref = next(self._call_refs)
        call = Call(
            call_ref=call_ref,
            state=CallState.CALL_INITIATED,
            is_caller=True,
            peak_rate_bps=peak_rate_bps,
            connected=self.sim.event(),
            released=self.sim.event(),
        )
        self._calls[call_ref] = call
        self._send(
            SignallingMessage(
                MessageType.SETUP,
                call_ref,
                peak_rate_bps=int(peak_rate_bps or 0),
            )
        )
        return call

    def release_call(self, call: Call) -> Event:
        """Tear the call down; yield the returned event for completion."""
        if call.state is not CallState.ACTIVE:
            raise ValueError(f"call {call.call_ref} is not active")
        call.state = CallState.RELEASING
        self._send(SignallingMessage(MessageType.RELEASE, call.call_ref))
        return call.released

    def call_for(self, call_ref: int) -> Optional[Call]:
        return self._calls.get(call_ref)

    @property
    def active_calls(self) -> int:
        return sum(
            1 for c in self._calls.values() if c.state is CallState.ACTIVE
        )

    # -- message handling ---------------------------------------------------------

    def _handle(self, message: SignallingMessage) -> None:
        self.messages_received.increment()
        handler = {
            MessageType.SETUP: self._on_setup,
            MessageType.CONNECT: self._on_connect,
            MessageType.RELEASE: self._on_release,
            MessageType.RELEASE_COMPLETE: self._on_release_complete,
        }[message.message_type]
        handler(message)

    def _on_setup(self, message: SignallingMessage) -> None:
        if self.on_setup is not None and not self.on_setup(message):
            self.calls_refused.increment()
            self._send(
                SignallingMessage(MessageType.RELEASE_COMPLETE, message.call_ref)
            )
            return
        peak = float(message.peak_rate_bps) or None
        vc = self.interface.open_vc(peak_rate_bps=peak)
        call = Call(
            call_ref=message.call_ref,
            state=CallState.ACTIVE,
            is_caller=False,
            address=vc.address,
            peak_rate_bps=peak,
            released=self.sim.event(),
        )
        self._calls[message.call_ref] = call
        self._send(
            SignallingMessage(
                MessageType.CONNECT,
                message.call_ref,
                vpi=vc.address.vpi,
                vci=vc.address.vci,
            )
        )

    def _on_connect(self, message: SignallingMessage) -> None:
        call = self._calls.get(message.call_ref)
        if call is None or call.state is not CallState.CALL_INITIATED:
            return
        address = VcAddress(message.vpi, message.vci)
        self.interface.open_vc(
            address=address, peak_rate_bps=call.peak_rate_bps
        )
        call.address = address
        call.state = CallState.ACTIVE
        call.connected.trigger(address)

    def _on_release(self, message: SignallingMessage) -> None:
        call = self._calls.pop(message.call_ref, None)
        if call is not None and call.address is not None:
            self.interface.close_vc(call.address)
        self._send(
            SignallingMessage(MessageType.RELEASE_COMPLETE, message.call_ref)
        )

    def _on_release_complete(self, message: SignallingMessage) -> None:
        call = self._calls.pop(message.call_ref, None)
        if call is None:
            return
        if call.state is CallState.CALL_INITIATED:
            # Refusal: the far end answered SETUP with RELEASE_COMPLETE.
            call.connected.fail(CallRefused(call.call_ref))
            return
        if call.address is not None:
            self.interface.close_vc(call.address)
        if call.released is not None and not call.released.triggered:
            call.released.trigger(None)


class CallRefused(Exception):
    """The callee's admission policy rejected the SETUP."""
