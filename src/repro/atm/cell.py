"""The ATM cell: a 53-byte unit with a 5-byte header and 48-byte payload.

The header layout modelled here is the UNI format of I.361::

    bit   7    6    5    4    3    2    1    0
    byte0 [   GFC (4)        ][   VPI high (4)  ]
    byte1 [   VPI low (4)    ][   VCI 15..12    ]
    byte2 [              VCI 11..4              ]
    byte3 [   VCI 3..0       ][ PTI (3) ][ CLP ]
    byte4 [              HEC (CRC-8)            ]

The NNI format replaces the GFC with four more VPI bits; both are
supported via the ``nni`` flag of :meth:`AtmCell.to_bytes`.

Payload-type indicator (PTI) encoding relevant to this reproduction:

- bit 2 (MSB): 0 = user data, 1 = OAM/management,
- bit 1: congestion experienced (EFCI),
- bit 0: ATM-user-to-ATM-user indication -- the adaptation layer's
  end-of-frame marker ("SDU type"), the bit AAL5-class SAR rides on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.atm.hec import check_hec, compute_hec, correct_header

CELL_SIZE = 53
HEADER_SIZE = 5
PAYLOAD_SIZE = 48

PTI_USER_SDU0 = 0b000  #: user cell, not end of frame, no congestion
PTI_USER_SDU1 = 0b001  #: user cell, end of frame (AAL5-class last cell)
PTI_USER_SDU0_EFCI = 0b010
PTI_USER_SDU1_EFCI = 0b011
PTI_OAM_SEGMENT = 0b100
PTI_OAM_END_TO_END = 0b101
PTI_RESOURCE_MGMT = 0b110

_MAX_GFC = 0xF
_MAX_VPI_UNI = 0xFF
_MAX_VPI_NNI = 0xFFF
_MAX_VCI = 0xFFFF
_MAX_PTI = 0b111


class CellFormatError(ValueError):
    """Raised when encoding/decoding a malformed cell."""


@dataclass(frozen=True)
class AtmCell:
    """One ATM cell.  Immutable; header rewrites produce new cells.

    The ``meta`` dict carries simulation-only annotations (timestamps,
    originating PDU ids) that would not exist on the wire; it never
    affects the encoded bytes, equality, or hashing.
    """

    vpi: int
    vci: int
    payload: bytes
    pti: int = PTI_USER_SDU0
    clp: int = 0
    gfc: int = 0
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not 0 <= self.gfc <= _MAX_GFC:
            raise CellFormatError(f"GFC {self.gfc} out of range")
        if not 0 <= self.vpi <= _MAX_VPI_NNI:
            raise CellFormatError(f"VPI {self.vpi} out of range")
        if not 0 <= self.vci <= _MAX_VCI:
            raise CellFormatError(f"VCI {self.vci} out of range")
        if not 0 <= self.pti <= _MAX_PTI:
            raise CellFormatError(f"PTI {self.pti} out of range")
        if self.clp not in (0, 1):
            raise CellFormatError(f"CLP {self.clp} must be 0 or 1")
        if len(self.payload) != PAYLOAD_SIZE:
            raise CellFormatError(
                f"payload must be exactly {PAYLOAD_SIZE} bytes, "
                f"got {len(self.payload)}"
            )

    # -- wire format -------------------------------------------------------

    def header_bytes(self, nni: bool = False) -> bytes:
        """The first four header bytes (HEC excluded)."""
        if nni:
            if self.gfc:
                raise CellFormatError("NNI cells have no GFC field")
            b0 = (self.vpi >> 4) & 0xFF
        else:
            if self.vpi > _MAX_VPI_UNI:
                raise CellFormatError(
                    f"VPI {self.vpi} exceeds UNI maximum {_MAX_VPI_UNI}"
                )
            b0 = (self.gfc << 4) | ((self.vpi >> 4) & 0xF)
        b1 = ((self.vpi & 0xF) << 4) | ((self.vci >> 12) & 0xF)
        b2 = (self.vci >> 4) & 0xFF
        b3 = ((self.vci & 0xF) << 4) | (self.pti << 1) | self.clp
        return bytes((b0, b1, b2, b3))

    def to_bytes(self, nni: bool = False) -> bytes:
        """Full 53-byte encoding, HEC computed over the header."""
        header = self.header_bytes(nni)
        return header + bytes((compute_hec(header),)) + self.payload

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        nni: bool = False,
        correct_single_bit: bool = False,
    ) -> "AtmCell":
        """Decode 53 bytes; verifies (and optionally corrects) the HEC.

        Raises :class:`CellFormatError` on length or HEC failure.  With
        *correct_single_bit* a single-bit header error is repaired the way
        the HEC correction mode of a real receiver would.
        """
        if len(data) != CELL_SIZE:
            raise CellFormatError(
                f"cell must be {CELL_SIZE} bytes, got {len(data)}"
            )
        header5 = data[:HEADER_SIZE]
        if not check_hec(header5):
            if correct_single_bit:
                corrected = correct_header(header5)
                if corrected is None:
                    raise CellFormatError("uncorrectable header (HEC)")
                header5 = corrected
            else:
                raise CellFormatError("HEC check failed")
        b0, b1, b2, b3 = header5[0], header5[1], header5[2], header5[3]
        if nni:
            gfc = 0
            vpi = (b0 << 4) | (b1 >> 4)
        else:
            gfc = b0 >> 4
            vpi = ((b0 & 0xF) << 4) | (b1 >> 4)
        vci = ((b1 & 0xF) << 12) | (b2 << 4) | (b3 >> 4)
        pti = (b3 >> 1) & 0b111
        clp = b3 & 1
        return cls(
            vpi=vpi,
            vci=vci,
            payload=data[HEADER_SIZE:],
            pti=pti,
            clp=clp,
            gfc=gfc,
        )

    # -- semantics ----------------------------------------------------------

    @property
    def is_user_cell(self) -> bool:
        """True for user-data cells (PTI MSB clear)."""
        return (self.pti & 0b100) == 0

    @property
    def end_of_frame(self) -> bool:
        """The AAL5-class last-cell marker (PTI SDU-type bit)."""
        return self.is_user_cell and bool(self.pti & 0b001)

    @property
    def congestion_experienced(self) -> bool:
        return self.is_user_cell and bool(self.pti & 0b010)

    def with_header(
        self,
        vpi: Optional[int] = None,
        vci: Optional[int] = None,
        pti: Optional[int] = None,
        clp: Optional[int] = None,
    ) -> "AtmCell":
        """Header translation (what a switch does); payload untouched."""
        return replace(
            self,
            vpi=self.vpi if vpi is None else vpi,
            vci=self.vci if vci is None else vci,
            pti=self.pti if pti is None else pti,
            clp=self.clp if clp is None else clp,
        )

    def __repr__(self) -> str:
        eof = " EOF" if self.end_of_frame else ""
        return (
            f"AtmCell(vpi={self.vpi}, vci={self.vci}, pti={self.pti}{eof}, "
            f"clp={self.clp})"
        )


def pad_payload(data: bytes, fill: int = 0x00) -> bytes:
    """Right-pad *data* to exactly one cell payload (48 bytes)."""
    if len(data) > PAYLOAD_SIZE:
        raise CellFormatError(
            f"payload fragment of {len(data)} bytes exceeds {PAYLOAD_SIZE}"
        )
    return data + bytes([fill]) * (PAYLOAD_SIZE - len(data))
