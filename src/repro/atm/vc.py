"""Virtual connections and the per-link VC table.

A :class:`VirtualConnection` carries the contract a connection was opened
with (service class, AAL type, peak rate); the :class:`VcTable` is the
lookup structure every ATM component keys cells against.  The host
interface's receive path consults an equivalent table through its CAM
model (:mod:`repro.nic.cam`); this pure-Python table is the functional
ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.atm.addressing import MAX_VCI, RESERVED_VCI_LIMIT, VcAddress


class ServiceClass(enum.Enum):
    """1991-era service classes (I.362 classes A-D, pre-ATM-Forum names)."""

    CBR = "cbr"  #: class A: constant bit rate, circuit emulation
    VBR = "vbr"  #: class B/C: variable bit rate
    DATA = "data"  #: class C/D: connection-oriented / connectionless data
    BEST_EFFORT = "best-effort"  #: what later became UBR


class AalType(enum.Enum):
    """Adaptation layer carried on the VC."""

    AAL0 = "aal0"  #: raw cells, no adaptation
    AAL1 = "aal1"  #: circuit emulation (not exercised by the NIC paths)
    AAL34 = "aal3/4"
    AAL5 = "aal5"


class VcState(enum.Enum):
    OPENING = "opening"
    OPEN = "open"
    CLOSING = "closing"
    CLOSED = "closed"


@dataclass
class VcStats:
    """Per-VC cell accounting."""

    cells_sent: int = 0
    cells_received: int = 0
    cells_dropped: int = 0
    pdus_sent: int = 0
    pdus_received: int = 0
    pdus_errored: int = 0


@dataclass
class VirtualConnection:
    """One open virtual channel and its traffic contract."""

    address: VcAddress
    service_class: ServiceClass = ServiceClass.DATA
    aal: AalType = AalType.AAL5
    peak_rate_bps: Optional[float] = None
    name: str = ""
    state: VcState = VcState.OPEN
    stats: VcStats = field(default_factory=VcStats)

    def __post_init__(self) -> None:
        if self.peak_rate_bps is not None and self.peak_rate_bps <= 0:
            raise ValueError("peak rate must be positive when given")
        if not self.name:
            self.name = f"vc-{self.address}"

    @property
    def is_open(self) -> bool:
        return self.state is VcState.OPEN


class VcTable:
    """The set of open VCs on one link endpoint.

    Supports explicit addressing (``open(address=...)``) and automatic
    VCI allocation from the non-reserved space, which is what host
    software normally wants.
    """

    def __init__(self, nni: bool = False) -> None:
        self.nni = nni
        self._table: Dict[VcAddress, VirtualConnection] = {}
        self._next_vci = RESERVED_VCI_LIMIT

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, address: VcAddress) -> bool:
        return address in self._table

    def __iter__(self) -> Iterator[VirtualConnection]:
        return iter(self._table.values())

    def open(
        self,
        address: Optional[VcAddress] = None,
        service_class: ServiceClass = ServiceClass.DATA,
        aal: AalType = AalType.AAL5,
        peak_rate_bps: Optional[float] = None,
        name: str = "",
    ) -> VirtualConnection:
        """Open a VC, allocating a VCI on VPI 0 when *address* is None."""
        if address is None:
            address = self._allocate_address()
        else:
            address = VcAddress.validated(*address, nni=self.nni)
            if address.is_reserved:
                raise ValueError(f"address {address} is in the reserved range")
        if address in self._table:
            raise ValueError(f"VC {address} already open")
        vc = VirtualConnection(
            address=address,
            service_class=service_class,
            aal=aal,
            peak_rate_bps=peak_rate_bps,
            name=name,
        )
        self._table[address] = vc
        return vc

    def open_reserved(
        self,
        address: VcAddress,
        service_class: ServiceClass = ServiceClass.DATA,
        name: str = "",
    ) -> VirtualConnection:
        """Open a system channel in the reserved range (signalling, OAM).

        User code should use :meth:`open`; this entry point exists for
        the well-known channels the reserved range is reserved *for*.
        """
        if not address.is_reserved:
            raise ValueError(f"{address} is not in the reserved range")
        if address in self._table:
            raise ValueError(f"VC {address} already open")
        vc = VirtualConnection(
            address=address, service_class=service_class, name=name
        )
        self._table[address] = vc
        return vc

    def close(self, address: VcAddress) -> VirtualConnection:
        """Close and remove the VC at *address*."""
        vc = self._table.pop(address, None)
        if vc is None:
            raise KeyError(f"VC {address} is not open")
        vc.state = VcState.CLOSED
        return vc

    def lookup(self, address: VcAddress) -> Optional[VirtualConnection]:
        """The open VC at *address*, or None (misdelivered cell)."""
        return self._table.get(address)

    def _allocate_address(self) -> VcAddress:
        """Next free VCI on VPI 0, wrapping around the allocatable space.

        The cursor keeps moving forward (so freshly closed VCIs are not
        reused immediately -- stale cells in flight would misdeliver)
        but wraps at :data:`MAX_VCI`, which a session churning thousands
        of connections needs: the space is finite, the churn is not.
        """
        span = MAX_VCI - RESERVED_VCI_LIMIT + 1
        for _ in range(span):
            vci = self._next_vci
            self._next_vci += 1
            if self._next_vci > MAX_VCI:
                self._next_vci = RESERVED_VCI_LIMIT
            candidate = VcAddress(0, vci)
            if candidate not in self._table:
                return candidate
        raise RuntimeError("VCI space exhausted")
