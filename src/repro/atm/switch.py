"""A small output-queued ATM switch.

Enough switch to build multi-hop test networks for the host interface:
per-(input port, VPI/VCI) routing entries with header translation, a
fixed fabric transit delay, and output ports with finite buffers (loss
under congestion).  Cell copying for point-to-multipoint entries is
supported because the era's host-interface experiments frequently ran
over multicast switch fabrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.atm.mux import OutputPort
from repro.sim.core import Simulator
from repro.sim.monitor import Counter


@dataclass(frozen=True)
class RoutingEntry:
    """Forwarding instruction: where a VC's cells leave, with new labels."""

    out_port: int
    out_vpi: int
    out_vci: int


class _InputAdapter:
    """Binds a physical input port number to the switch's receive path."""

    def __init__(self, switch: "AtmSwitch", port: int) -> None:
        self._switch = switch
        self._port = port

    def receive_cell(self, cell: AtmCell) -> None:
        self._switch.receive(self._port, cell)

    __call__ = receive_cell


class AtmSwitch:
    """Output-queued switch with VPI/VCI translation.

    Construction wires output ports; input ports are implicit -- attach
    ``switch.input(port_no)`` as the sink of an upstream link.  Routing is
    per (input port, VPI, VCI); unknown cells are counted and discarded,
    which is precisely what real fabrics do with misrouted cells.
    """

    def __init__(
        self,
        sim: Simulator,
        output_ports: List[OutputPort],
        fabric_delay: float = 0.0,
        name: str = "switch",
    ) -> None:
        if fabric_delay < 0:
            raise ValueError("fabric delay must be >= 0")
        self.sim = sim
        self.output_ports = output_ports
        self.fabric_delay = fabric_delay
        self.name = name
        self._routes: Dict[Tuple[int, VcAddress], List[RoutingEntry]] = {}
        self.cells_switched = Counter(f"{name}.switched")
        self.cells_unroutable = Counter(f"{name}.unroutable")
        #: Traffic-management hook (repro.tm.erica): an object with an
        #: ``on_cell(port, cell) -> cell`` method sees every transiting
        #: cell after translation and may substitute it (ER stamping).
        self.tm = None

    def input(self, port: int) -> _InputAdapter:
        """A cell sink representing input port *port*."""
        if port < 0:
            raise ValueError("port numbers are non-negative")
        return _InputAdapter(self, port)

    def add_route(
        self,
        in_port: int,
        in_address: VcAddress,
        entry: RoutingEntry,
    ) -> None:
        """Install a forwarding entry; repeated adds build multicast sets."""
        if not 0 <= entry.out_port < len(self.output_ports):
            raise ValueError(
                f"out_port {entry.out_port} outside 0..{len(self.output_ports) - 1}"
            )
        self._routes.setdefault((in_port, in_address), []).append(entry)

    def remove_routes(self, in_port: int, in_address: VcAddress) -> int:
        """Drop every entry for the given input VC; returns how many."""
        entries = self._routes.pop((in_port, in_address), [])
        return len(entries)

    def route_for(
        self, in_port: int, in_address: VcAddress
    ) -> Optional[List[RoutingEntry]]:
        return self._routes.get((in_port, in_address))

    def receive(self, in_port: int, cell: AtmCell) -> None:
        """Cell arrival on *in_port*: translate, transit fabric, enqueue."""
        entries = self._routes.get((in_port, VcAddress(cell.vpi, cell.vci)))
        if not entries:
            self.cells_unroutable.increment()
            return
        for entry in entries:
            translated = cell.with_header(vpi=entry.out_vpi, vci=entry.out_vci)
            translated.meta.update(cell.meta)
            self.cells_switched.increment()
            if self.tm is not None:
                translated = self.tm.on_cell(
                    self.output_ports[entry.out_port], translated
                )
            if self.fabric_delay > 0:
                self.sim.schedule_call(
                    self.fabric_delay,
                    self.output_ports[entry.out_port].offer,
                    translated,
                )
            else:
                self.output_ports[entry.out_port].offer(translated)

    @property
    def total_dropped(self) -> int:
        return sum(port.dropped.count for port in self.output_ports)
