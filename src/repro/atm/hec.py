"""Header error control: the ATM CRC-8 and cell delineation.

The HEC is a CRC-8 over the first four header bytes with generator
polynomial x^8 + x^2 + x + 1 (0x07), XORed with the coset leader 0x55
(I.432).  The coset improves delineation robustness against bit slips;
it cancels in the syndrome, so error checking/correcting is unaffected.

Single-bit correction: the receiver can repair any single-bit error in
the 40 header bits because CRC-8 syndromes of single-bit errors are
distinct.  Real receivers alternate between *correction mode* and
*detection mode*; :class:`CellDelineation` models the HUNT / PRESYNC /
SYNC framing automaton of I.432 with the standard ALPHA/DELTA values.
"""

from __future__ import annotations

import enum
from typing import Optional

_POLY = 0x07
_COSET = 0x55

_HEADER_BITS = 40  # 4 covered bytes + the HEC byte itself


def _build_table() -> list[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = ((crc << 1) ^ _POLY) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
        table.append(crc)
    return table


_TABLE = _build_table()


def compute_hec(header4: bytes) -> int:
    """HEC byte for the four-byte header prefix."""
    if len(header4) != 4:
        raise ValueError(f"HEC covers exactly 4 bytes, got {len(header4)}")
    crc = 0
    for byte in header4:
        crc = _TABLE[crc ^ byte]
    return crc ^ _COSET


def check_hec(header5: bytes) -> bool:
    """True when the five-byte header is HEC-consistent."""
    if len(header5) != 5:
        raise ValueError(f"header is 5 bytes, got {len(header5)}")
    return compute_hec(header5[:4]) == header5[4]


def _syndrome(header5: bytes) -> int:
    """CRC syndrome of the full 5-byte header (0 means consistent)."""
    return compute_hec(header5[:4]) ^ header5[4]


def _build_single_bit_map() -> dict[int, int]:
    """Map syndrome -> flipped bit index (0 = MSB of byte 0)."""
    mapping: dict[int, int] = {}
    base = bytes(5)
    base_fixed = bytearray(base)
    base_fixed[4] = compute_hec(base[:4])
    for bit in range(_HEADER_BITS):
        corrupted = bytearray(base_fixed)
        corrupted[bit // 8] ^= 0x80 >> (bit % 8)
        syn = _syndrome(bytes(corrupted))
        # CRC linearity: the syndrome of a single flipped bit is unique and
        # independent of header contents.
        mapping[syn] = bit
    return mapping


_SINGLE_BIT = _build_single_bit_map()


def correct_header(header5: bytes) -> Optional[bytes]:
    """Repair a single-bit error; None if not single-bit correctable."""
    if len(header5) != 5:
        raise ValueError(f"header is 5 bytes, got {len(header5)}")
    syn = _syndrome(header5)
    if syn == 0:
        return bytes(header5)
    bit = _SINGLE_BIT.get(syn)
    if bit is None:
        return None
    repaired = bytearray(header5)
    repaired[bit // 8] ^= 0x80 >> (bit % 8)
    return bytes(repaired)


class DelineationState(enum.Enum):
    """Cell-delineation framing states of I.432."""

    HUNT = "hunt"
    PRESYNC = "presync"
    SYNC = "sync"


class CellDelineation:
    """The HUNT/PRESYNC/SYNC automaton that finds cell boundaries.

    - HUNT: examine headers bit-by-bit until one passes the HEC.
    - PRESYNC: require DELTA consecutive good headers before declaring SYNC.
    - SYNC: tolerate up to ALPHA-1 consecutive bad headers; the ALPHA-th
      drops back to HUNT.

    This reproduction feeds the automaton whole candidate headers (the
    byte-alignment search of a real framer is below the abstraction level
    that matters for the host interface).
    """

    ALPHA = 7  # consecutive bad headers in SYNC before losing delineation
    DELTA = 6  # consecutive good headers in PRESYNC before declaring SYNC

    def __init__(self) -> None:
        self.state = DelineationState.HUNT
        self._good_run = 0
        self._bad_run = 0
        self.sync_losses = 0
        self.sync_acquisitions = 0

    @property
    def in_sync(self) -> bool:
        return self.state is DelineationState.SYNC

    def observe(self, header5: bytes) -> DelineationState:
        """Advance the automaton with one candidate header."""
        good = check_hec(header5)
        if self.state is DelineationState.HUNT:
            if good:
                self.state = DelineationState.PRESYNC
                self._good_run = 1
        elif self.state is DelineationState.PRESYNC:
            if good:
                self._good_run += 1
                if self._good_run >= self.DELTA:
                    self.state = DelineationState.SYNC
                    self._bad_run = 0
                    self.sync_acquisitions += 1
            else:
                self.state = DelineationState.HUNT
                self._good_run = 0
        else:  # SYNC
            if good:
                self._bad_run = 0
            else:
                self._bad_run += 1
                if self._bad_run >= self.ALPHA:
                    self.state = DelineationState.HUNT
                    self._bad_run = 0
                    self._good_run = 0
                    self.sync_losses += 1
        return self.state
