"""Usage parameter control: GCRA policing and leaky-bucket shaping.

The Generic Cell Rate Algorithm (I.371) in its virtual-scheduling form:
a cell conforms if it arrives no earlier than ``TAT - tau`` where TAT is
the theoretical arrival time advanced by the increment ``T = 1/rate`` per
conforming cell, and ``tau`` is the tolerance.

The era's host interfaces had to *shape* transmit traffic to the VC's
contract so the network's policer would not mark/drop -- the paper's
transmit engine paces cell emission, and :class:`LeakyBucketShaper` is
the reference implementation the NIC's pacing is tested against.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.atm.cell import AtmCell
from repro.atm.link import CellSink
from repro.sim.core import Simulator
from repro.sim.monitor import Counter


class Gcra:
    """Virtual-scheduling GCRA(T, tau) conformance checker.

    Two UPC actions are supported for violating cells (I.371 gives the
    operator the choice): *drop* (the default -- :meth:`police` returns
    None) or *tag* (``tag_nonconforming=True`` -- the cell survives with
    CLP set to 1, so a downstream output port under pressure discards it
    first; see :class:`repro.atm.mux.OutputPort`).
    """

    def __init__(
        self,
        increment: float,
        tolerance: float = 0.0,
        tag_nonconforming: bool = False,
    ) -> None:
        if increment <= 0:
            raise ValueError("GCRA increment T must be positive")
        if tolerance < 0:
            raise ValueError("GCRA tolerance tau must be >= 0")
        self.increment = increment
        self.tolerance = tolerance
        self.tag_nonconforming = tag_nonconforming
        self._tat: Optional[float] = None
        self.conforming = 0
        self.violating = 0
        #: Violating cells passed on with CLP=1 (tag mode only).
        self.tagged = 0

    @classmethod
    def for_rate(
        cls,
        cells_per_second: float,
        tolerance: float = 0.0,
        tag_nonconforming: bool = False,
    ) -> "Gcra":
        """GCRA policing a peak cell rate."""
        if cells_per_second <= 0:
            raise ValueError("cell rate must be positive")
        return cls(1.0 / cells_per_second, tolerance, tag_nonconforming)

    def conforms(self, arrival_time: float) -> bool:
        """Check one arrival, updating state only for conforming cells."""
        if self._tat is None or arrival_time >= self._tat:
            # Early TAT (link idle): restart from this arrival.
            self._tat = arrival_time + self.increment
            self.conforming += 1
            return True
        if arrival_time >= self._tat - self.tolerance:
            self._tat += self.increment
            self.conforming += 1
            return True
        self.violating += 1
        return False

    def police(self, cell: AtmCell, arrival_time: float) -> Optional[AtmCell]:
        """Apply the UPC action to one arriving cell.

        Conforming cells come back unchanged.  Violating cells come
        back CLP-tagged in tag mode, or as None (drop) otherwise.
        """
        if self.conforms(arrival_time):
            return cell
        if not self.tag_nonconforming:
            return None
        self.tagged += 1
        if cell.clp:
            return cell
        tagged = cell.with_header(clp=1)
        tagged.meta.update(cell.meta)
        return tagged

    @property
    def violation_ratio(self) -> float:
        total = self.conforming + self.violating
        return self.violating / total if total else 0.0


class LeakyBucketShaper:
    """Shapes a cell stream to a peak cell rate before a downstream sink.

    Cells offered faster than the contract are queued (up to
    *queue_cells*, then dropped) and released one per increment.  Unlike
    the policer, the shaper *delays* rather than discards -- it is what a
    transmit path does to stay conforming.
    """

    def __init__(
        self,
        sim: Simulator,
        cells_per_second: float,
        sink: CellSink,
        queue_cells: Optional[int] = None,
        name: str = "shaper",
    ) -> None:
        if cells_per_second <= 0:
            raise ValueError("cell rate must be positive")
        if queue_cells is not None and queue_cells < 1:
            raise ValueError("queue_cells must be >= 1 or None")
        self.sim = sim
        self.increment = 1.0 / cells_per_second
        self.sink = sink
        self.queue_cells = queue_cells
        self.name = name
        self._queue: Deque[AtmCell] = deque()
        self._next_release = 0.0
        self._release_pending = False
        self.shaped = Counter(f"{name}.shaped")
        self.dropped = Counter(f"{name}.dropped")

    def offer(self, cell: AtmCell) -> bool:
        """Submit a cell for shaping; False if the shaper queue overflowed."""
        if self.queue_cells is not None and len(self._queue) >= self.queue_cells:
            self.dropped.increment()
            return False
        self._queue.append(cell)
        if not self._release_pending:
            self._schedule_release()
        return True

    receive_cell = offer

    def _schedule_release(self) -> None:
        now = self.sim.now
        release_at = max(now, self._next_release)
        self._release_pending = True
        self.sim.schedule_call(release_at - now, self._release_one)

    def _release_one(self) -> None:
        self._release_pending = False
        if not self._queue:
            return
        cell = self._queue.popleft()
        self._next_release = max(self.sim.now, self._next_release) + self.increment
        self.shaped.increment()
        receive = getattr(self.sink, "receive_cell", None)
        if receive is not None:
            receive(cell)
        else:
            self.sink(cell)
        if self._queue:
            self._schedule_release()

    @property
    def backlog(self) -> int:
        return len(self._queue)
