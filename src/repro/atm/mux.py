"""Cell multiplexing onto an output link with finite buffering.

An :class:`OutputPort` is the canonical ATM congestion point: a FIFO of
cells draining at link rate.  When the FIFO is full, arriving cells are
dropped (drop-tail) -- this is where correlated loss comes from in real
switches.  A :class:`CellMultiplexer` funnels several upstream sources
into one port.

Two traffic-management behaviours hang off the queue depth (both off
by default; see docs/TRAFFIC.md):

- **EFCI marking** (*efci_threshold*): user cells admitted while the
  queue sits at or above the threshold get their EFCI PTI bit set, the
  forward-congestion signal ABR destinations fold into returned RM
  cells;
- **CLP-first discard** (*clp_threshold*, partial buffer sharing):
  CLP=1 cells -- the ones a tagging UPC marked as outside contract --
  are refused once the queue reaches the threshold, so under pressure
  the tagged traffic dies first and committed traffic keeps the whole
  buffer.  Both drop classes are itemised (``dropped_clp`` /
  ``dropped_full``) so the conservation ledger stays balanced.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.atm.addressing import VcAddress
from repro.atm.cell import AtmCell
from repro.atm.link import PhysicalLink
from repro.sim.core import Simulator
from repro.sim.monitor import Counter, TimeWeightedStat

#: PTI bit 1: EFCI, "congestion experienced", on user cells.
_EFCI_BIT = 0b010


class OutputPort:
    """A bounded cell FIFO drained onto a physical link.

    The drain process is event-driven: whenever the queue becomes
    non-empty a serialization is started, and each serialization's
    completion pulls the next cell.  Occupancy is tracked time-weighted
    so buffer-sizing experiments read the mean/max directly, and
    per-VC tallies expose who is queueing (and who is losing) for
    fairness analysis.
    """

    def __init__(
        self,
        sim: Simulator,
        link: PhysicalLink,
        buffer_cells: Optional[int] = None,
        name: str = "port",
        efci_threshold: Optional[int] = None,
        clp_threshold: Optional[int] = None,
    ) -> None:
        if buffer_cells is not None and buffer_cells < 1:
            raise ValueError("buffer_cells must be >= 1 or None (unbounded)")
        if efci_threshold is not None and efci_threshold < 0:
            raise ValueError("efci_threshold must be >= 0")
        if clp_threshold is not None and clp_threshold < 1:
            raise ValueError("clp_threshold must be >= 1")
        self.sim = sim
        self.link = link
        self.buffer_cells = buffer_cells
        self.name = name
        self.efci_threshold = efci_threshold
        self.clp_threshold = clp_threshold
        self._queue: Deque[AtmCell] = deque()
        self._draining = False
        self.enqueued = Counter(f"{name}.enqueued")
        self.dropped = Counter(f"{name}.dropped")
        #: CLP=1 cells refused at/above the CLP threshold (or when full).
        self.dropped_clp = Counter(f"{name}.dropped-clp")
        #: CLP=0 cells tail-dropped by a full buffer.
        self.dropped_full = Counter(f"{name}.dropped-full")
        self.efci_marked = Counter(f"{name}.efci")
        self.occupancy = TimeWeightedStat(sim.now, 0)
        self._vc_enqueued: Dict[VcAddress, int] = {}
        self._vc_dropped: Dict[VcAddress, int] = {}
        self._vc_queued: Dict[VcAddress, int] = {}
        #: Observability hook (repro.obs): a TraceRecorder, or None.
        self.trace = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def backlog(self) -> int:
        """Cells sitting in the buffer right now."""
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return (
            self.buffer_cells is not None
            and len(self._queue) >= self.buffer_cells
        )

    def _clp_pressure(self) -> bool:
        """True when CLP=1 arrivals must be refused (partial buffer
        sharing: tagged cells only get the buffer below the threshold)."""
        if self.clp_threshold is not None:
            return len(self._queue) >= self.clp_threshold
        return self.is_full

    def _drop(self, cell: AtmCell, vc: VcAddress, reason: str) -> bool:
        self.dropped.increment()
        self._vc_dropped[vc] = self._vc_dropped.get(vc, 0) + 1
        if reason == "clp":
            self.dropped_clp.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell, reason="clp"
                )
        else:
            self.dropped_full.increment()
            if self.trace is not None:
                self.trace.emit(
                    "cell.drop", actor=self.name, cell=cell, reason="port_full"
                )
        return False

    def offer(self, cell: AtmCell) -> bool:
        """Accept *cell* into the FIFO, or drop it if full.

        Drop order under pressure: CLP=1 cells go first (at the CLP
        threshold), then everything tail-drops at the hard limit.
        """
        vc = VcAddress(cell.vpi, cell.vci)
        if cell.clp and self._clp_pressure():
            return self._drop(cell, vc, "clp")
        if self.is_full:
            return self._drop(cell, vc, "port_full")
        if (
            self.efci_threshold is not None
            and cell.is_user_cell
            and not cell.congestion_experienced
            and len(self._queue) >= self.efci_threshold
        ):
            marked = cell.with_header(pti=cell.pti | _EFCI_BIT)
            marked.meta.update(cell.meta)
            self.efci_marked.increment()
            if self.trace is not None:
                self.trace.emit("port.efci", actor=self.name, cell=marked)
            cell = marked
        self._queue.append(cell)
        self.enqueued.increment()
        self._vc_enqueued[vc] = self._vc_enqueued.get(vc, 0) + 1
        self._vc_queued[vc] = self._vc_queued.get(vc, 0) + 1
        self.occupancy.record(self.sim.now, len(self._queue))
        if not self._draining:
            self._drain_next()
        return True

    # Alias so a port can terminate a PhysicalLink directly.
    receive_cell = offer

    def _drain_next(self) -> None:
        if not self._queue:
            self._draining = False
            return
        self._draining = True
        cell = self._queue.popleft()
        vc = VcAddress(cell.vpi, cell.vci)
        queued = self._vc_queued.get(vc, 0)
        if queued > 1:
            self._vc_queued[vc] = queued - 1
        else:
            self._vc_queued.pop(vc, None)
        self.occupancy.record(self.sim.now, len(self._queue))
        done = self.link.send(cell)
        done.add_callback(lambda _ev: self._drain_next())

    # -- observability ---------------------------------------------------------

    @property
    def loss_ratio(self) -> float:
        offered = self.enqueued.count + self.dropped.count
        return self.dropped.count / offered if offered else 0.0

    def occupancy_of(self, vc: VcAddress) -> int:
        """Cells of *vc* sitting in the buffer right now."""
        return self._vc_queued.get(vc, 0)

    def occupancy_by_vc(self) -> Dict[VcAddress, int]:
        """Current buffer occupancy itemised by VC."""
        return dict(self._vc_queued)

    def loss_ratio_by_vc(self) -> Dict[VcAddress, float]:
        """Per-VC drop fraction, for fairness analysis."""
        ratios: Dict[VcAddress, float] = {}
        for vc in set(self._vc_enqueued) | set(self._vc_dropped):
            accepted = self._vc_enqueued.get(vc, 0)
            lost = self._vc_dropped.get(vc, 0)
            offered = accepted + lost
            ratios[vc] = lost / offered if offered else 0.0
        return ratios


class CellMultiplexer:
    """N-to-1 cell funnel: many sources feed one :class:`OutputPort`.

    Sources call :meth:`input` (or use the object as a cell sink).  The
    multiplexer itself adds no delay -- contention shows up as queueing
    in the port, exactly as in an output-buffered switch element.
    """

    def __init__(self, sim: Simulator, port: OutputPort, name: str = "mux"):
        self.sim = sim
        self.port = port
        self.name = name
        self.cells_in = Counter(f"{name}.in")

    def input(self, cell: AtmCell) -> bool:
        """Feed one cell through the mux; False if the port dropped it."""
        self.cells_in.increment()
        return self.port.offer(cell)

    receive_cell = input
